"""The public API surface: everything README documents must exist."""

import importlib

import pytest

import repro


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module", [
    "repro.cluster", "repro.trace", "repro.dataflow", "repro.core",
    "repro.core.compiler", "repro.core.runtime", "repro.engines",
    "repro.workloads", "repro.bench", "repro.metrics", "repro.obs",
    "repro.predict",
])
def test_subpackage_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_every_public_item_documented():
    """Every exported class/function carries a docstring."""
    import inspect
    for module_name in ("repro.cluster", "repro.trace", "repro.dataflow",
                        "repro.core.compiler", "repro.core.runtime",
                        "repro.engines", "repro.workloads", "repro.bench",
                        "repro.metrics", "repro.obs", "repro.predict"):
        mod = importlib.import_module(module_name)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


def test_errors_hierarchy():
    from repro.errors import (CompilerError, DagError, ExecutionError,
                              ReproError, ResourceError, SchedulingError,
                              SimulationError, WorkloadError)
    for exc in (CompilerError, DagError, ExecutionError, ResourceError,
                SchedulingError, SimulationError, WorkloadError):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)
