"""White-box tests of the Spark-checkpoint engine's mechanisms."""

import pytest

from repro import ClusterConfig, SparkCheckpointEngine
from repro.engines.spark_checkpoint import CheckpointMaster
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import mlr_synthetic_program, mr_synthetic_program


class _Instrumented(SparkCheckpointEngine):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.master = None

    def _make_master(self, ctx, program):
        self.master = CheckpointMaster(ctx, program, self)
        return self.master


def test_store_has_one_server_per_reserved_container():
    engine = _Instrumented()
    engine.run(mr_synthetic_program(scale=0.02),
               ClusterConfig(num_reserved=3, num_transient=3), seed=0)
    assert engine.master.stable_store.num_servers == 3


def test_wide_producers_identified():
    engine = _Instrumented()
    engine.run(mlr_synthetic_program(iterations=1, scale=0.05),
               ClusterConfig(num_reserved=2, num_transient=3), seed=0)
    # Gradient outputs cross the many-to-one boundary -> checkpointed.
    assert any(name.endswith("grad_1")
               for name in engine.master._wide_producers)
    # Narrow/broadcast-only producers are not.
    assert "model_0" not in engine.master._wide_producers


def test_every_wide_output_checkpointed_without_evictions():
    engine = _Instrumented()
    result = engine.run(mr_synthetic_program(scale=0.02),
                        ClusterConfig(num_reserved=2, num_transient=3),
                        seed=0)
    assert result.completed
    program = mr_synthetic_program(scale=0.02)
    num_maps = program.dag.operator("read").parallelism
    map_out = program.dag.operator("map").cost.output_bytes(
        program.dag.operator("read").partition_bytes[0])
    assert result.bytes_checkpointed == pytest.approx(num_maps * map_out,
                                                      rel=0.01)


def test_store_bandwidth_factor_validated():
    with pytest.raises(ValueError):
        SparkCheckpointEngine(store_bandwidth_factor=0.0)


def test_slower_store_slows_job():
    program = lambda: mr_synthetic_program(scale=0.05)
    cluster = ClusterConfig(num_reserved=2, num_transient=3)
    fast = SparkCheckpointEngine(store_bandwidth_factor=1.0).run(
        program(), cluster, seed=0)
    slow = SparkCheckpointEngine(store_bandwidth_factor=0.2).run(
        program(), cluster, seed=0)
    assert slow.jct_seconds > fast.jct_seconds


def test_reduce_fetches_come_from_the_store():
    """Shuffle reads are served by the stable store, not peer executors —
    the bandwidth funnel of §5.2.1."""
    engine = _Instrumented()
    result = engine.run(mr_synthetic_program(scale=0.02),
                        ClusterConfig(num_reserved=2, num_transient=3),
                        seed=0)
    assert result.completed
    store = engine.master.stable_store
    assert store.bytes_read > 0
    # Every shuffled byte was read back from the store (within rounding).
    assert store.bytes_read == pytest.approx(result.bytes_shuffled, rel=0.05)


def test_checkpoint_failures_do_not_lose_data():
    """Evictions mid-checkpoint leave the output non-durable; the engine
    recomputes and still finishes under sustained churn."""
    result = SparkCheckpointEngine().run(
        mr_synthetic_program(scale=0.05),
        ClusterConfig(num_reserved=2, num_transient=3,
                      eviction=ExponentialLifetimeModel(25.0)),
        seed=5, time_limit=48 * 3600)
    assert result.completed
    assert result.relaunched_tasks > 0
