"""Integration: the paper's qualitative claims hold at tiny test scales.

These duplicate (at much smaller scale and runtime) the shape assertions
the benchmark suite makes, so plain ``pytest tests/`` already guards the
headline behaviour.
"""

import pytest

from repro import (ClusterConfig, EvictionRate, PadoEngine,
                   SparkCheckpointEngine, SparkEngine)
from repro.workloads import (als_synthetic_program, mlr_synthetic_program,
                             mr_synthetic_program)

CLUSTER_HIGH = ClusterConfig(eviction=EvictionRate.HIGH)
CLUSTER_NONE = ClusterConfig()
LIMIT = 150 * 60.0


@pytest.fixture(scope="module")
def als_high():
    return {
        engine.name: engine.run(als_synthetic_program(scale=0.15),
                                CLUSTER_HIGH, seed=11, time_limit=LIMIT)
        for engine in (SparkEngine(), SparkCheckpointEngine(), PadoEngine())}


def test_als_high_ordering(als_high):
    """Figure 5 at high eviction: pado <= checkpoint <= spark."""
    assert als_high["pado"].jct_seconds <= \
        als_high["spark-checkpoint"].jct_seconds
    assert als_high["spark-checkpoint"].jct_seconds < \
        als_high["spark"].jct_seconds


def test_als_high_relaunch_ordering(als_high):
    """Relaunch ratios mirror the bottom panels of Figure 5."""
    assert als_high["pado"].relaunched_ratio < \
        als_high["spark-checkpoint"].relaunched_ratio
    assert als_high["spark-checkpoint"].relaunched_ratio < \
        als_high["spark"].relaunched_ratio


def test_pado_als_barely_degrades():
    none = PadoEngine().run(als_synthetic_program(scale=0.15), CLUSTER_NONE,
                            seed=11, time_limit=LIMIT)
    high = PadoEngine().run(als_synthetic_program(scale=0.15), CLUSTER_HIGH,
                            seed=11, time_limit=LIMIT)
    assert high.jct_seconds < 1.8 * none.jct_seconds


def test_mlr_pado_beats_checkpoint_at_high():
    """Figure 6: partial aggregation widens Pado's margin on MLR."""
    results = {}
    for engine in (SparkCheckpointEngine(), PadoEngine()):
        results[engine.name] = engine.run(
            mlr_synthetic_program(scale=0.1, iterations=2), CLUSTER_HIGH,
            seed=11, time_limit=LIMIT)
    assert results["pado"].jct_seconds < \
        results["spark-checkpoint"].jct_seconds


def test_mr_spark_fastest_without_evictions():
    """Figure 7: with no evictions Spark's 45-executor reduce wins."""
    spark = SparkEngine().run(mr_synthetic_program(scale=0.1), CLUSTER_NONE,
                              seed=11, time_limit=LIMIT)
    pado = PadoEngine().run(mr_synthetic_program(scale=0.1), CLUSTER_NONE,
                            seed=11, time_limit=LIMIT)
    assert spark.jct_seconds <= pado.jct_seconds


def test_mr_spark_collapses_at_high():
    spark = SparkEngine().run(mr_synthetic_program(scale=0.1), CLUSTER_HIGH,
                              seed=11, time_limit=LIMIT)
    pado = PadoEngine().run(mr_synthetic_program(scale=0.1), CLUSTER_HIGH,
                            seed=11, time_limit=LIMIT)
    assert spark.jct_seconds > 1.3 * pado.jct_seconds
    assert spark.relaunched_ratio > 3 * pado.relaunched_ratio


def test_pado_scales_with_cluster_size():
    """Figure 9: more containers at 8:1 never hurt."""
    small = PadoEngine().run(
        mr_synthetic_program(scale=0.1),
        ClusterConfig(num_reserved=3, num_transient=24,
                      eviction=EvictionRate.HIGH), seed=11,
        time_limit=LIMIT)
    large = PadoEngine().run(
        mr_synthetic_program(scale=0.1),
        ClusterConfig(num_reserved=7, num_transient=56,
                      eviction=EvictionRate.HIGH), seed=11,
        time_limit=LIMIT)
    assert large.jct_seconds <= small.jct_seconds * 1.05
