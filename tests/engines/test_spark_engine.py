"""Unit/behaviour tests for the Spark baseline (§2.2, §5.1.2)."""

from repro import ClusterConfig, EvictionRate, LocalRunner, SparkEngine
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import (als_synthetic_program, mlr_synthetic_program,
                             mr_real_program, mr_synthetic_program)
from tests.conftest import records_equal


def small_cluster(eviction=EvictionRate.NONE, reserved=2, transient=4):
    return ClusterConfig(num_reserved=reserved, num_transient=transient,
                         eviction=eviction)


def test_runs_synthetic_program():
    result = SparkEngine().run(mr_synthetic_program(scale=0.02),
                               small_cluster(), seed=0)
    assert result.completed
    assert result.bytes_shuffled > 0
    assert result.bytes_pushed == 0  # Spark is pull-based


def test_parallelism_one_operators_run_on_driver():
    """MLlib-style: model creation/update happens at the never-evicted
    driver, so MLR's critical chain never crosses an iteration (§5.2.2)."""
    result = SparkEngine().run(
        mlr_synthetic_program(iterations=2, scale=0.05),
        small_cluster(eviction=ExponentialLifetimeModel(200.0)), seed=4,
        time_limit=48 * 3600)
    assert result.completed


def test_cascading_recomputation_under_eviction():
    """Evictions destroy local map outputs, forcing recomputation —
    the relaunch ratio grows well past Pado's under identical churn."""
    from repro import PadoEngine
    program = lambda: als_synthetic_program(iterations=3, scale=0.15)
    cluster = small_cluster(eviction=ExponentialLifetimeModel(120.0),
                            reserved=2, transient=6)
    spark = SparkEngine().run(program(), cluster, seed=7,
                              time_limit=48 * 3600)
    pado = PadoEngine().run(program(), cluster, seed=7,
                            time_limit=48 * 3600)
    assert spark.completed and pado.completed
    assert spark.relaunched_tasks > pado.relaunched_tasks
    assert spark.jct_seconds > pado.jct_seconds


def test_eviction_during_map_phase_resubmits_lost_outputs():
    result = SparkEngine().run(
        mr_synthetic_program(scale=0.1),
        small_cluster(eviction=ExponentialLifetimeModel(60.0),
                      reserved=2, transient=6),
        seed=3, time_limit=48 * 3600)
    assert result.completed
    assert result.evictions > 0
    assert result.relaunched_tasks > 0


def test_real_output_matches_local_runner_under_churn():
    expected = LocalRunner().run(mr_real_program().dag).collect("reduce")
    result = SparkEngine().run(
        mr_real_program(),
        small_cluster(eviction=ExponentialLifetimeModel(3.0)), seed=13,
        time_limit=4 * 3600)
    assert result.completed
    assert records_equal(result.collected("reduce"), expected)


def test_optimistic_fetch_variant_completes():
    engine = SparkEngine(abort_on_fetch_failure=False)
    result = engine.run(
        mr_synthetic_program(scale=0.1),
        small_cluster(eviction=ExponentialLifetimeModel(60.0),
                      reserved=2, transient=6),
        seed=3, time_limit=48 * 3600)
    assert result.completed


def test_abort_and_optimistic_semantics_both_complete():
    """The two fetch-failure semantics differ in relaunch behaviour but both
    must terminate correctly under churn (the ablation of §5's baselines)."""
    cluster = small_cluster(eviction=ExponentialLifetimeModel(60.0),
                            reserved=2, transient=6)
    abort = SparkEngine(abort_on_fetch_failure=True).run(
        mr_synthetic_program(scale=0.1), cluster, seed=3,
        time_limit=48 * 3600)
    optimistic = SparkEngine(abort_on_fetch_failure=False).run(
        mr_synthetic_program(scale=0.1), cluster, seed=3,
        time_limit=48 * 3600)
    assert abort.completed and optimistic.completed
    # Optimistic fetches never abort attempts, so they re-pull less data.
    assert optimistic.bytes_shuffled <= abort.bytes_shuffled


def test_broadcast_fetched_once_per_executor():
    """TorrentBroadcast-style caching + coalescing: a broadcast value moves
    to each executor once, not once per task."""
    from repro.dataflow.dag import (DependencyType, LogicalDAG, OpCost,
                                    Operator, SourceKind)
    from repro.engines.base import Program
    model_bytes = 100 * 1024 * 1024
    dag = LogicalDAG()
    model = dag.add_operator(Operator(
        "model", parallelism=1, source_kind=SourceKind.CREATED,
        cost=OpCost(fixed_output_bytes=model_bytes)))
    work = dag.add_operator(Operator("work", parallelism=12,
                                     cost=OpCost(fixed_output_bytes=1)))
    dag.connect(model, work, DependencyType.ONE_TO_MANY)
    result = SparkEngine().run(
        Program(dag, "broadcast"),
        ClusterConfig(num_reserved=0, num_transient=3), seed=0)
    assert result.completed
    # 3 executors -> ~3 broadcast fetches, far below the 12 naive ones.
    assert result.bytes_shuffled <= 4 * model_bytes


def test_no_driver_work_costs_counted_twice():
    result = SparkEngine().run(mr_synthetic_program(scale=0.02),
                               small_cluster(), seed=0)
    original = result.original_tasks
    # read+map fused chain plus reduce chain.
    program = mr_synthetic_program(scale=0.02)
    expected = (program.dag.operator("read").parallelism
                + program.dag.operator("reduce").parallelism)
    assert original == expected
