"""Integration tests on unusual DAG topologies.

The paper's three workloads never exercise some legal structures — e.g.
branching transient chains within one stage (intra-stage local pulls in
Pado), one-to-one edges into a reserved root, or multiple wide consumers of
one operator. These tests run such programs on all engines under churn and
check outputs against the local runner.
"""

import pytest

from repro import (ClusterConfig, LocalRunner, PadoEngine,
                   SparkCheckpointEngine, SparkEngine)
from repro.dataflow import DependencyType, Pipeline, SumCombiner
from repro.engines.base import Program
from repro.trace.models import ExponentialLifetimeModel
from tests.conftest import records_equal

ENGINES = [PadoEngine, SparkEngine, SparkCheckpointEngine]


def branching_program() -> Program:
    """read -> map -> {evens, odds} -> join (many-to-one).

    After fusion the stage holds three transient chains feeding one
    reserved root; evens/odds pull map outputs from peer executors.
    """
    p = Pipeline("branching")
    data = p.read("read", partitions=[[1, 2, 3], [4, 5], [6, 7, 8, 9]])
    mapped = data.map("map", lambda x: x * 10)
    evens = mapped.filter("evens", lambda x: (x // 10) % 2 == 0)
    odds = mapped.filter("odds", lambda x: (x // 10) % 2 == 1)
    p.apply_multi(
        "join",
        lambda inputs: [sorted(inputs["evens"]), sorted(inputs["odds"])],
        inputs=[(evens, DependencyType.MANY_TO_ONE),
                (odds, DependencyType.MANY_TO_ONE)],
        parallelism=1)
    return Program(p.to_dag(), "branching")


def narrow_into_root_program() -> Program:
    """A reserved root with an additional one-to-one transient producer:
    the shuffle forces 'group' onto reserved containers, and 'tag' (o-o,
    same parallelism) pushes into it with static routing."""
    p = Pipeline("narrow-root")
    data = p.read("read", partitions=[[("a", 1), ("b", 2)], [("a", 3)]])
    data.reduce_by_key("group", SumCombiner(), parallelism=2)
    return Program(p.to_dag(), "narrow-root")


def multi_consumer_program() -> Program:
    """One transient operator consumed by two different shuffles (the ALS
    Read pattern) plus a downstream join of both aggregates."""
    p = Pipeline("multi")
    data = p.read("read", partitions=[[("x", 1), ("y", 2)],
                                      [("x", 3), ("z", 4)]])
    data.reduce_by_key("by_key", SumCombiner(), parallelism=2)
    data.aggregate("total", _ValueSum(), parallelism=1)
    return Program(p.to_dag(), "multi")


class _ValueSum(SumCombiner):
    """Sums the values of (key, value) records."""

    def add(self, accumulator, value):
        return accumulator + value[1]

    def merge(self, left, right):
        if isinstance(left, tuple):
            left = left[1]
        if isinstance(right, tuple):
            right = right[1]
        return left + right


PROGRAMS = {
    "branching": (branching_program, "join"),
    "narrow_root": (narrow_into_root_program, "group"),
}


@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_topology_without_evictions(engine_cls, name):
    make, sink = PROGRAMS[name]
    expected = LocalRunner().run(make().dag).collect(sink)
    result = engine_cls().run(make(),
                              ClusterConfig(num_reserved=2, num_transient=4),
                              seed=0, time_limit=3600)
    assert result.completed
    assert records_equal(result.collected(sink), expected)


@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_topology_under_churn(engine_cls, name, seed):
    make, sink = PROGRAMS[name]
    expected = LocalRunner().run(make().dag).collect(sink)
    result = engine_cls().run(
        make(),
        ClusterConfig(num_reserved=2, num_transient=4,
                      eviction=ExponentialLifetimeModel(3.0)),
        seed=seed, time_limit=6 * 3600)
    assert result.completed, (engine_cls.name, name, seed)
    assert records_equal(result.collected(sink), expected), \
        (engine_cls.name, name, seed)


def test_branching_stage_uses_local_pulls():
    """The branching program must produce intra-stage transient-to-
    transient edges in Pado's physical plan (local pulls, §3.2)."""
    from repro.core.compiler import compile_program
    from repro.core.runtime.plan import build_execution_plan
    plan = build_execution_plan(compile_program(branching_program().dag))
    stage = plan.stages[0]
    transient_to_transient = [
        ice for ice in stage.inter_chain_edges
        if ice.consumer is not stage.root_chain]
    assert len(transient_to_transient) == 2  # map -> evens, map -> odds


@pytest.mark.parametrize("seed", [5, 6])
def test_deep_narrow_pipeline_under_churn(seed):
    """A long narrow chain fuses into a single task pipeline; evictions
    relaunch whole fused tasks."""
    p = Pipeline("deep")
    data = p.read("read", partitions=[[i] for i in range(8)])
    for i in range(6):
        data = data.map(f"m{i}", lambda x, inc=i: x + inc)
    data.aggregate("sum", SumCombiner(), parallelism=1)
    program = Program(p.to_dag(), "deep")
    expected = LocalRunner().run(program.dag).collect("sum")
    result = PadoEngine().run(
        Program(p.to_dag(), "deep"),
        ClusterConfig(num_reserved=2, num_transient=3,
                      eviction=ExponentialLifetimeModel(2.0)),
        seed=seed, time_limit=6 * 3600)
    assert result.completed
    assert result.collected("sum") == expected
