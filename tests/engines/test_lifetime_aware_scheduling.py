"""§6 extension end-to-end: heterogeneous transient pools and
lifetime-aware task placement."""

import math

import pytest

from repro import ClusterConfig, PadoEngine, PadoRuntimeConfig
from repro.cluster.manager import TransientPool
from repro.core.runtime.scheduler import LifetimeAwarePolicy
from repro.errors import ResourceError
from repro.trace.models import ExponentialLifetimeModel, NoEvictionModel
from repro.workloads import mlr_synthetic_program


def mixed_pools(short_mean=90.0, long_mean=3600.0):
    return (
        TransientPool("short", 20, ExponentialLifetimeModel(short_mean),
                      expected_lifetime=short_mean),
        TransientPool("long", 20, ExponentialLifetimeModel(long_mean),
                      expected_lifetime=long_mean),
    )


def test_pool_validation():
    with pytest.raises(ResourceError):
        TransientPool("bad", -1, NoEvictionModel(), 10.0)
    with pytest.raises(ResourceError):
        TransientPool("bad", 1, NoEvictionModel(), 0.0)


def test_pools_allocate_and_tag_containers():
    from repro.cluster.events import Simulator
    from repro.cluster.manager import ResourceManager
    import numpy as np
    sim = Simulator()
    rm = ResourceManager(sim, NoEvictionModel(), np.random.default_rng(0))
    rm.allocate_pools(2, list(mixed_pools()))
    transient = rm.transient_containers()
    assert len(transient) == 40
    pools = {c.pool for c in transient}
    assert pools == {"short", "long"}
    for container in transient:
        assert math.isfinite(container.expected_lifetime)


def test_replacements_stay_in_pool():
    from repro.cluster.events import Simulator
    from repro.cluster.manager import ResourceManager
    import numpy as np
    sim = Simulator()
    rm = ResourceManager(sim, NoEvictionModel(), np.random.default_rng(0))
    rm.allocate_pools(0, [TransientPool(
        "short", 3, ExponentialLifetimeModel(5.0), 5.0)])
    sim.run(until=100.0)
    assert rm.evictions > 0
    assert all(c.pool == "short" for c in rm.transient_containers())


def test_cluster_config_effective_transient_count():
    cluster = ClusterConfig(transient_pools=mixed_pools())
    assert cluster.effective_num_transient == 40


def test_policy_places_heavy_tasks_on_long_lived():
    from repro.cluster.events import Simulator
    from repro.cluster.resources import transient_container
    from repro.engines.base import SimExecutor

    sim = Simulator()
    short = SimExecutor(transient_container(1e9), sim)
    short.container.expected_lifetime = 60.0
    long = SimExecutor(transient_container(1e9), sim)
    long.container.expected_lifetime = 3600.0

    class FakeTask:
        cache_keys = set()

        def __init__(self, weight):
            self.weight = weight

    policy = LifetimeAwarePolicy(heavy_threshold=2.0)
    assert policy.pick(FakeTask(9.0), [short, long]) is long
    assert policy.pick(FakeTask(1.0), [short, long]) is short


def test_lifetime_aware_reduces_relaunches_on_mixed_pools():
    """With mixed pools, routing heavy gradient tasks to the long-lived
    class must not hurt — and should reduce wasted relaunches of the
    expensive tasks compared to round-robin placement."""
    cluster = ClusterConfig(num_reserved=5, transient_pools=mixed_pools())
    program = lambda: mlr_synthetic_program(iterations=2, scale=0.2)
    default = PadoEngine().run(program(), cluster, seed=11,
                               time_limit=150 * 60)
    aware = PadoEngine(PadoRuntimeConfig(
        scheduling_policy=LifetimeAwarePolicy())).run(
            program(), cluster, seed=11, time_limit=150 * 60)
    assert default.completed and aware.completed
    assert aware.relaunched_tasks <= default.relaunched_tasks
    assert aware.jct_seconds <= 1.1 * default.jct_seconds


def test_all_engines_run_on_pools():
    from repro import SparkCheckpointEngine, SparkEngine
    cluster = ClusterConfig(num_reserved=2, transient_pools=(
        TransientPool("only", 4, ExponentialLifetimeModel(600.0), 600.0),))
    from repro.workloads import mr_synthetic_program
    for engine in (PadoEngine(), SparkEngine(), SparkCheckpointEngine()):
        result = engine.run(mr_synthetic_program(scale=0.02), cluster,
                            seed=1, time_limit=48 * 3600)
        assert result.completed, engine.name
