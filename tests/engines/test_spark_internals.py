"""White-box tests of the Spark baseline's mechanisms."""

from repro import ClusterConfig, SparkEngine
from repro.engines.spark import SparkMaster, transfer_share
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import (als_synthetic_program, mlr_synthetic_program,
                             mr_synthetic_program)


class _Instrumented(SparkEngine):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.master = None

    def _make_master(self, ctx, program):
        self.master = SparkMaster(ctx, program, self)
        return self.master


def test_stage_cut_at_shuffles_only():
    """Narrow operators pipeline into one Spark stage; wide edges cut."""
    engine = _Instrumented()
    engine.run(mr_synthetic_program(scale=0.02),
               ClusterConfig(num_reserved=1, num_transient=2), seed=0)
    chains = sorted(c.name for c in engine.master.chains)
    assert chains == ["read+map", "reduce"]


def test_driver_hosts_parallelism_one_chains():
    engine = _Instrumented()
    engine.run(mlr_synthetic_program(iterations=1, scale=0.05),
               ClusterConfig(num_reserved=1, num_transient=2), seed=0)
    driver_chains = {name for name, run in engine.master.runs.items()
                     if run.on_driver}
    assert "model_0" in driver_chains
    assert "model_1" in driver_chains
    assert not any(name.startswith("read") for name in driver_chains)


def test_driver_outputs_survive_every_eviction():
    """Driver-resident model outputs anchor MLR recovery: the job finishes
    even when every executor is transient and churning."""
    result = SparkEngine().run(
        mlr_synthetic_program(iterations=1, scale=0.05),
        ClusterConfig(num_reserved=0, num_transient=4,
                      eviction=ExponentialLifetimeModel(300.0)),
        seed=1, time_limit=48 * 3600)
    assert result.completed


def test_transfer_share_shapes():
    from repro.dataflow.dag import (DependencyType, LogicalDAG, Operator,
                                    SourceKind)
    dag = LogicalDAG()
    src = dag.add_operator(Operator(
        "s", parallelism=4, source_kind=SourceKind.READ, input_ref="s",
        partition_bytes=[1] * 4))
    dst = dag.add_operator(Operator("d", parallelism=8))
    mm = dag.connect(src, dst, DependencyType.MANY_TO_MANY)
    assert transfer_share(mm, 80.0) == 10.0
    dag2 = LogicalDAG()
    src2 = dag2.add_operator(Operator(
        "s", parallelism=1, source_kind=SourceKind.CREATED))
    dst2 = dag2.add_operator(Operator("d", parallelism=8))
    om = dag2.connect(src2, dst2, DependencyType.ONE_TO_MANY)
    assert transfer_share(om, 80.0) == 80.0


def test_map_outputs_on_reserved_survive():
    """Spark executors on reserved containers keep their map outputs
    through any eviction schedule (the 5/45 anchoring effect)."""
    engine = _Instrumented()
    engine.run(mr_synthetic_program(scale=0.02),
               ClusterConfig(num_reserved=2, num_transient=3,
                             eviction=ExponentialLifetimeModel(30.0)),
               seed=2, time_limit=48 * 3600)
    master = engine.master
    for output in master.outputs.values():
        if output.executor is not None and output.executor.is_reserved:
            assert output.available


def test_proactive_resubmission_counts_relaunches():
    result = SparkEngine().run(
        mr_synthetic_program(scale=0.1),
        ClusterConfig(num_reserved=2, num_transient=6,
                      eviction=ExponentialLifetimeModel(45.0)),
        seed=4, time_limit=48 * 3600)
    assert result.completed
    assert result.relaunched_tasks > 0


def test_deep_lineage_recovers_transitively():
    """ALS's chained stages force multi-level recomputation; the engine
    must still converge without checkpoints."""
    result = SparkEngine().run(
        als_synthetic_program(iterations=2, scale=0.1),
        ClusterConfig(num_reserved=2, num_transient=4,
                      eviction=ExponentialLifetimeModel(150.0)),
        seed=3, time_limit=48 * 3600)
    assert result.completed
    assert result.relaunched_tasks > 0
