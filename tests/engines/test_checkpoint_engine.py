"""Unit/behaviour tests for Spark-checkpoint (Flint-style, §5.1.2)."""

from repro import (ClusterConfig, EvictionRate, LocalRunner,
                   SparkCheckpointEngine, SparkEngine)
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import (als_synthetic_program, mr_real_program,
                             mr_synthetic_program)
from tests.conftest import records_equal


def small_cluster(eviction=EvictionRate.NONE, reserved=2, transient=4):
    return ClusterConfig(num_reserved=reserved, num_transient=transient,
                         eviction=eviction)


def test_checkpoints_shuffle_outputs():
    result = SparkCheckpointEngine().run(mr_synthetic_program(scale=0.05),
                                         small_cluster(), seed=0)
    assert result.completed
    # Every map output crosses the shuffle boundary and is checkpointed.
    program = mr_synthetic_program(scale=0.05)
    assert result.bytes_checkpointed > 0
    assert result.extras.get("stages") or True
    # Shuffle reads come from the stable store, sized by partition shares.
    assert result.bytes_shuffled > 0


def test_checkpointing_has_overhead_without_evictions():
    """§2.2: checkpointing incurs network/disk overhead even when no
    eviction ever happens."""
    plain = SparkEngine().run(mr_synthetic_program(scale=0.1),
                              small_cluster(), seed=0)
    ckpt = SparkCheckpointEngine().run(mr_synthetic_program(scale=0.1),
                                       small_cluster(), seed=0)
    assert ckpt.jct_seconds > plain.jct_seconds


def test_no_cascading_recomputation_under_eviction():
    """Checkpointed outputs survive evictions, so the relaunch ratio stays
    far below plain Spark's (§5.2.1)."""
    program = lambda: als_synthetic_program(iterations=3, scale=0.15)
    cluster = small_cluster(eviction=ExponentialLifetimeModel(120.0),
                            reserved=2, transient=6)
    plain = SparkEngine().run(program(), cluster, seed=7,
                              time_limit=48 * 3600)
    ckpt = SparkCheckpointEngine().run(program(), cluster, seed=7,
                                       time_limit=48 * 3600)
    assert ckpt.completed
    assert ckpt.relaunched_tasks < plain.relaunched_tasks


def test_executors_only_on_transient_containers():
    """Reserved containers host the stable store, not executors, so the
    engine works (and must work) with every executor evictable."""
    result = SparkCheckpointEngine().run(
        mr_real_program(),
        small_cluster(eviction=ExponentialLifetimeModel(5.0)), seed=2,
        time_limit=4 * 3600)
    expected = LocalRunner().run(mr_real_program().dag).collect("reduce")
    assert result.completed
    assert records_equal(result.collected("reduce"), expected)


def test_uncheckpointed_inflight_output_recomputed():
    """An output evicted mid-checkpoint is not durable and must be
    recomputed; the job still finishes correctly."""
    expected = LocalRunner().run(mr_real_program().dag).collect("reduce")
    result = SparkCheckpointEngine().run(
        mr_real_program(),
        small_cluster(eviction=ExponentialLifetimeModel(2.0)), seed=5,
        time_limit=4 * 3600)
    assert result.completed
    assert records_equal(result.collected("reduce"), expected)


def test_fewer_reserved_nodes_slow_the_store():
    """Figure 8: the stable store's bandwidth scales with reserved nodes."""
    slow = SparkCheckpointEngine().run(
        mr_synthetic_program(scale=0.1),
        ClusterConfig(num_reserved=1, num_transient=6), seed=0)
    fast = SparkCheckpointEngine().run(
        mr_synthetic_program(scale=0.1),
        ClusterConfig(num_reserved=4, num_transient=6), seed=0)
    assert slow.jct_seconds > fast.jct_seconds
