"""Integration: exactly-once output equivalence across engines (§3.2.5).

For every engine and workload, the job output must equal the local
reference runner's output — with no evictions, under the paper's eviction
regimes, and under brutal synthetic churn. This is the strongest end-to-end
correctness property of the reproduction.
"""

import pytest

from repro import (ClusterConfig, EvictionRate, LocalRunner, PadoEngine,
                   SparkCheckpointEngine, SparkEngine)
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import (als_real_program, mlr_real_program,
                             mr_real_program)
from tests.conftest import records_equal

ENGINES = [PadoEngine, SparkEngine, SparkCheckpointEngine]
WORKLOADS = {
    "mr": (mr_real_program, "reduce"),
    "mlr": (mlr_real_program, "model_3"),
    "als": (als_real_program, "item_factor_2"),
}
EVICTION_REGIMES = {
    "none": EvictionRate.NONE,
    "harsh": ExponentialLifetimeModel(6.0),
    "brutal": ExponentialLifetimeModel(2.5),
}


def expected_output(workload):
    make, sink = WORKLOADS[workload]
    return LocalRunner().run(make().dag).collect(sink), sink


@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("regime", sorted(EVICTION_REGIMES))
def test_engine_matches_local_runner(engine_cls, workload, regime):
    make, sink = WORKLOADS[workload]
    expected, _ = expected_output(workload)
    engine = engine_cls()
    result = engine.run(make(),
                        ClusterConfig(num_reserved=2, num_transient=5,
                                      eviction=EVICTION_REGIMES[regime]),
                        seed=42, time_limit=4 * 3600)
    assert result.completed, (engine.name, workload, regime)
    assert records_equal(result.collected(sink), expected), \
        (engine.name, workload, regime)


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_no_relaunches_without_evictions(engine_cls):
    make, sink = WORKLOADS["mr"]
    result = engine_cls().run(
        make(), ClusterConfig(num_reserved=2, num_transient=4), seed=0)
    assert result.completed
    assert result.relaunched_tasks == 0
    assert result.evictions == 0


@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_mr_exactly_once_across_eviction_schedules(engine_cls, seed):
    """Different seeds produce different eviction schedules; the output
    must never change."""
    make, sink = WORKLOADS["mr"]
    expected, _ = expected_output("mr")
    result = engine_cls().run(
        make(), ClusterConfig(num_reserved=2, num_transient=4,
                              eviction=ExponentialLifetimeModel(3.0)),
        seed=seed, time_limit=4 * 3600)
    assert result.completed
    assert records_equal(result.collected(sink), expected), seed


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_deterministic_given_seed(engine_cls):
    make, sink = WORKLOADS["mr"]
    runs = []
    for _ in range(2):
        result = engine_cls().run(
            make(), ClusterConfig(num_reserved=2, num_transient=4,
                                  eviction=ExponentialLifetimeModel(5.0)),
            seed=9, time_limit=4 * 3600)
        runs.append((result.jct_seconds, result.launched_tasks,
                     result.evictions))
    assert runs[0] == runs[1]
