"""Unit/behaviour tests for the Pado engine and runtime (§3.2)."""

import pytest

from repro import (ClusterConfig, EvictionRate, LocalRunner, PadoEngine,
                   PadoRuntimeConfig)
from repro.engines.base import Program
from repro.dataflow import Pipeline
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import (mlr_real_program, mlr_synthetic_program,
                             mr_real_program, mr_synthetic_program)
from tests.conftest import records_equal


def small_cluster(eviction=EvictionRate.NONE, reserved=2, transient=4):
    return ClusterConfig(num_reserved=reserved, num_transient=transient,
                         eviction=eviction)


def test_runs_synthetic_program():
    result = PadoEngine().run(mr_synthetic_program(scale=0.02),
                              small_cluster(), seed=0)
    assert result.completed
    assert result.outputs is None  # synthetic runs carry no payloads
    assert result.jct_seconds > 0
    assert result.original_tasks == result.launched_tasks


def test_eviction_relaunches_only_uncommitted_tasks():
    """§3.2.5: evictions never trigger parent-stage recomputation, so the
    relaunch ratio stays small compared to Spark under identical churn."""
    result = PadoEngine().run(
        mlr_synthetic_program(iterations=2, scale=0.05),
        small_cluster(eviction=ExponentialLifetimeModel(240.0)), seed=3,
        time_limit=48 * 3600)
    assert result.completed
    assert result.evictions > 0
    assert result.relaunched_ratio < 2.0


def test_commit_counter_tracks_transient_tasks():
    result = PadoEngine().run(mr_synthetic_program(scale=0.02),
                              small_cluster(), seed=0)
    assert result.extras["commits"] >= 1


def test_transient_only_cluster_rejected():
    from repro.errors import ExecutionError
    with pytest.raises(ExecutionError):
        PadoEngine().run(mr_synthetic_program(scale=0.02),
                         ClusterConfig(num_reserved=0, num_transient=4),
                         seed=0)


def test_transient_sink_program():
    """A DAG ending on transient operators writes results to the sink and
    still completes (outputs escape via the sink store)."""
    p = Pipeline()
    data = p.read("r", partitions=[[1, 2], [3]])
    data.map("m", lambda x: x * 10)
    result = PadoEngine().run(Program(p.to_dag(), "maponly"),
                              small_cluster(), seed=0)
    assert result.completed
    assert sorted(result.collected("m")) == [10, 20, 30]


def test_transient_sink_survives_evictions():
    p = Pipeline()
    data = p.read("r", partitions=[[i] for i in range(12)])
    data.map("m", lambda x: x * 10)
    result = PadoEngine().run(
        Program(p.to_dag(), "maponly"),
        small_cluster(eviction=ExponentialLifetimeModel(2.0)), seed=5,
        time_limit=3600)
    assert result.completed
    assert sorted(result.collected("m")) == sorted(i * 10 for i in range(12))


def test_caching_reduces_boundary_traffic():
    """With input caching on, repeated iterations fetch the training data
    and model far less (§3.2.7)."""
    program = mlr_synthetic_program(iterations=4, scale=0.05)
    cluster = small_cluster(reserved=2, transient=4)
    cached = PadoEngine(PadoRuntimeConfig(enable_caching=True)).run(
        program, cluster, seed=1)
    uncached = PadoEngine(PadoRuntimeConfig(enable_caching=False)).run(
        mlr_synthetic_program(iterations=4, scale=0.05), cluster, seed=1)
    assert cached.completed and uncached.completed
    assert cached.bytes_input_read < uncached.bytes_input_read
    assert cached.bytes_shuffled < uncached.bytes_shuffled
    assert cached.jct_seconds <= uncached.jct_seconds


def test_partial_aggregation_reduces_pushed_bytes():
    """Partial aggregation shrinks what reserved executors receive
    (§3.2.7 / §5.2.2)."""
    cluster = small_cluster(reserved=2, transient=6)
    on = PadoEngine(PadoRuntimeConfig(enable_partial_aggregation=True)).run(
        mlr_synthetic_program(iterations=2, scale=0.1), cluster, seed=1)
    off = PadoEngine(PadoRuntimeConfig(enable_partial_aggregation=False)).run(
        mlr_synthetic_program(iterations=2, scale=0.1), cluster, seed=1)
    assert on.completed and off.completed
    assert on.bytes_pushed < 0.7 * off.bytes_pushed


def test_partial_aggregation_preserves_results():
    expected = LocalRunner().run(mlr_real_program().dag).collect("model_3")
    for enabled in (True, False):
        config = PadoRuntimeConfig(enable_partial_aggregation=enabled,
                                   aggregation_max_tasks=2)
        result = PadoEngine(config).run(
            mlr_real_program(),
            small_cluster(eviction=ExponentialLifetimeModel(5.0)),
            seed=2, time_limit=4 * 3600)
        assert result.completed
        assert records_equal(result.collected("model_3"), expected)


def test_result_metrics_consistency():
    result = PadoEngine().run(
        mr_real_program(),
        small_cluster(eviction=ExponentialLifetimeModel(4.0)), seed=8,
        time_limit=3600)
    assert result.completed
    assert result.launched_tasks >= result.original_tasks
    assert result.relaunched_tasks == \
        result.launched_tasks - result.original_tasks
    assert result.jct_minutes == pytest.approx(result.jct_seconds / 60.0)


def test_time_limit_reports_incomplete():
    result = PadoEngine().run(mr_synthetic_program(scale=0.05),
                              small_cluster(), seed=0, time_limit=1.0)
    assert not result.completed
    assert result.jct_seconds == 1.0
