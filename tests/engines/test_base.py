"""Unit tests for the shared engine substrate."""

import pytest

from repro.cluster.events import Simulator
from repro.cluster.resources import (NodeSpec, reserved_container,
                                     transient_container)
from repro.engines.base import (ClusterConfig, JobResult, Program,
                                SimContext, SimExecutor)
from repro.errors import ExecutionError
from repro.trace.models import (EvictionRate, ExponentialLifetimeModel,
                                NoEvictionModel)
from repro.workloads import mr_real_program, mr_synthetic_program


class TestClusterConfig:
    def test_defaults_match_paper_setup(self):
        config = ClusterConfig()
        assert config.num_reserved == 5
        assert config.num_transient == 40

    def test_eviction_rate_resolves_to_model(self):
        assert isinstance(ClusterConfig().lifetime_model(), NoEvictionModel)
        model = ClusterConfig(eviction=EvictionRate.HIGH).lifetime_model()
        assert not isinstance(model, NoEvictionModel)

    def test_explicit_model_passthrough(self):
        model = ExponentialLifetimeModel(10.0)
        assert ClusterConfig(eviction=model).lifetime_model() is model


class TestProgram:
    def test_validates_dag_on_construction(self):
        from repro.dataflow.dag import LogicalDAG, Operator
        dag = LogicalDAG()
        dag.add_operator(Operator("orphan", parallelism=1))
        with pytest.raises(Exception):
            Program(dag)

    def test_is_real(self):
        assert mr_real_program().is_real()
        assert not mr_synthetic_program(scale=0.02).is_real()


class TestJobResult:
    def make(self, **overrides):
        defaults = dict(engine="e", workload="w", completed=True,
                        jct_seconds=120.0, original_tasks=10,
                        launched_tasks=13, evictions=2)
        defaults.update(overrides)
        return JobResult(**defaults)

    def test_relaunch_accounting(self):
        result = self.make()
        assert result.relaunched_tasks == 3
        assert result.relaunched_ratio == pytest.approx(0.3)
        assert result.jct_minutes == pytest.approx(2.0)

    def test_relaunch_never_negative(self):
        result = self.make(launched_tasks=8)
        assert result.relaunched_tasks == 0

    def test_zero_original_tasks(self):
        assert self.make(original_tasks=0).relaunched_ratio == 0.0

    def test_collected_requires_outputs(self):
        with pytest.raises(ExecutionError):
            self.make().collected("sink")
        result = self.make(outputs={"sink": {1: ["b"], 0: ["a"]}})
        assert result.collected("sink") == ["a", "b"]


class TestSimExecutor:
    def test_slots_default_to_cores(self):
        sim = Simulator()
        executor = SimExecutor(reserved_container(), sim)
        assert executor.slots == 4

    def test_cpu_port_aggregates_cores(self):
        sim = Simulator()
        spec = NodeSpec(cores=4, cpu_throughput=10.0)
        executor = SimExecutor(reserved_container(spec), sim)
        assert executor.cpu.bandwidth == 40.0

    def test_alive_tracks_container(self):
        sim = Simulator()
        container = transient_container(5.0)
        executor = SimExecutor(container, sim)
        assert executor.alive
        container.evict(1.0)
        assert not executor.alive


class TestSimContext:
    def test_registers_real_partitions(self):
        ctx = SimContext(ClusterConfig(), seed=0)
        ctx.register_inputs(mr_real_program(num_partitions=3))
        assert ctx.input_store.has(("read", 0))
        assert ctx.input_store.has(("read", 2))
        assert ctx.input_store.payload_of(("read", 0))

    def test_registers_synthetic_sizes(self):
        ctx = SimContext(ClusterConfig(), seed=0)
        program = mr_synthetic_program(scale=0.02)
        ctx.register_inputs(program)
        read = program.dag.operator("read")
        assert ctx.input_store.size_of((read.input_ref, 0)) == \
            read.partition_bytes[0]

    def test_rejects_read_without_data(self):
        from repro.dataflow.dag import LogicalDAG, Operator, SourceKind
        dag = LogicalDAG()
        op = Operator("read", parallelism=1, source_kind=SourceKind.READ,
                      input_ref="x", fn=lambda i: [])
        dag.add_operator(op)
        ctx = SimContext(ClusterConfig(), seed=0)
        with pytest.raises(ExecutionError):
            ctx.register_inputs(Program(dag))

    def test_seeded_rng_deterministic(self):
        a = SimContext(ClusterConfig(), seed=5).rng.random()
        b = SimContext(ClusterConfig(), seed=5).rng.random()
        assert a == b
