"""Integration tests for predictor-driven proactive re-replication.

The fan-out pipeline is the workload whose retained local outputs the
§3.2.4 push path cannot protect on its own (fan-out breaks fusion, so
producer outputs sit on transient disks until every branch has pulled
them). Under correlated eviction waves the predictive configuration must
copy those outputs to reserved homes *before* the waves land and swap
the replicas in afterwards — measurably fewer relaunches and a faster
job than the paper's static engine under the identical schedule.
"""

import numpy as np
import pytest

from repro import ClusterConfig, PadoEngine, PadoRuntimeConfig
from repro.cluster.events import Simulator
from repro.cluster.manager import ResourceManager
from repro.obs import Tracer
from repro.obs.events import PredictedEviction, ProactivePush
from repro.obs.lineage import analyze_eviction_lineage
from repro.predict import HazardPredictor
from repro.trace.models import (ExponentialLifetimeModel, WaveLifetimeModel)
from repro.workloads import fanout_synthetic_program

PREDICTIVE = PadoRuntimeConfig(placement="lifetime", predictor="static",
                               proactive_push=True, push_threshold=0.55,
                               push_horizon=40.0, push_check_interval=5.0)


def wave_cluster(severity=0.7):
    waves = WaveLifetimeModel([(60.0 * (i + 1), severity)
                               for i in range(20)])
    return ClusterConfig(num_reserved=2, num_transient=8, eviction=waves)


def run_fanout(config=None, tracer=None):
    engine = PadoEngine(config) if config is not None else PadoEngine()
    return engine.run(fanout_synthetic_program(scale=0.1), wave_cluster(),
                      seed=7, time_limit=3600.0, tracer=tracer)


@pytest.fixture(scope="module")
def predictive_run():
    tracer = Tracer()
    result = run_fanout(PREDICTIVE, tracer=tracer)
    return result, tracer


@pytest.fixture(scope="module")
def static_run():
    tracer = Tracer()
    result = run_fanout(tracer=tracer)
    return result, tracer


def test_predictive_beats_static_under_waves(predictive_run, static_run):
    predictive, _ = predictive_run
    static, _ = static_run
    assert predictive.completed and static.completed
    assert predictive.extras["proactive_pushes"] > 0
    assert predictive.extras["recomputes_avoided"] > 0
    assert predictive.relaunched_tasks < static.relaunched_tasks
    assert predictive.jct_seconds < static.jct_seconds


def test_push_events_precede_their_evictions(predictive_run):
    result, tracer = predictive_run
    predictions = [e for e in tracer.events
                   if isinstance(e, PredictedEviction)]
    pushes = [e for e in tracer.events if isinstance(e, ProactivePush)]
    assert len(predictions) == result.extras["predicted_evictions"]
    assert [e for e in pushes if not e.restored]
    assert [e for e in pushes if e.restored]
    for event in predictions:
        # Flagged strictly before any wave could have taken the
        # container: probability crossed the threshold while alive.
        assert event.probability >= PREDICTIVE.push_threshold
        assert event.age >= 0.0


def test_lineage_counts_avoided_recomputes(predictive_run):
    result, tracer = predictive_run
    report = analyze_eviction_lineage(tracer.events)
    assert report.proactive_pushes == result.extras["proactive_pushes"]
    assert report.recomputes_avoided == \
        result.extras["recomputes_avoided"]
    avoided = report.by_category["recompute_avoided"]
    assert avoided.relaunched_tasks == result.extras["recomputes_avoided"]
    assert avoided.recompute_seconds == 0.0


def test_default_config_has_no_prediction_surface(static_run):
    """The paper's engine untouched: no prediction extras, no predictor
    events, bit-identical to pre-prediction behavior."""
    result, tracer = static_run
    assert "proactive_pushes" not in result.extras
    assert "predicted_evictions" not in result.extras
    assert not [e for e in tracer.events
                if isinstance(e, (PredictedEviction, ProactivePush))]


def test_resource_manager_feeds_the_predictor():
    """Every witnessed eviction reaches the attached predictor — the
    online learning stream the hazard model fits from."""
    sim = Simulator()
    rm = ResourceManager(sim, ExponentialLifetimeModel(30.0),
                         np.random.default_rng(5))
    predictor = HazardPredictor(min_observations=4)
    rm.attach_predictor(predictor)
    rm.allocate(1, 6)
    sim.run(until=600.0)
    assert rm.evictions > 0
    assert predictor.observation_count == rm.evictions
    assert predictor.fitted is (rm.evictions >= 4)
