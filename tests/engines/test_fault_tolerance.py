"""Fault-tolerance tests: reserved-executor and master failures (§3.2.6)."""

import pytest

from repro import (ClusterConfig, EvictionRate, LocalRunner, PadoEngine,
                   PadoRuntimeConfig)
from repro.engines.base import Program, SimContext
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import (mlr_real_program, mr_real_program,
                             mr_synthetic_program)
from tests.conftest import records_equal


class FailingPadoEngine(PadoEngine):
    """Pado engine that injects reserved-container faults / master crashes
    at configured simulated times."""

    def __init__(self, reserved_failures=(), master_failures=(),
                 config=None):
        super().__init__(config)
        self.reserved_failures = reserved_failures
        self.master_failures = master_failures

    def _start(self, ctx: SimContext, program: Program):
        master = super()._start(ctx, program)
        for delay in self.reserved_failures:
            def fail(now=delay):
                alive = [e for e in master.reserved_executors if e.alive]
                if len(alive) > 1:
                    ctx.rm.inject_failure(alive[0].container, replace=True)
            ctx.sim.schedule(delay, fail)
        for delay in self.master_failures:
            ctx.sim.schedule(delay, master.fail_master)
        return master


def cluster(eviction=EvictionRate.NONE):
    return ClusterConfig(num_reserved=3, num_transient=5, eviction=eviction)


def test_reserved_failure_during_job_still_correct():
    expected = LocalRunner().run(mr_real_program().dag).collect("reduce")
    engine = FailingPadoEngine(reserved_failures=[0.5])
    result = engine.run(mr_real_program(), cluster(), seed=1,
                        time_limit=4 * 3600)
    assert result.completed
    assert records_equal(result.collected("reduce"), expected)


def test_reserved_failure_after_stage_completes_triggers_repair():
    """Losing preserved intermediate results forces re-running the parent
    stage's tasks when a child fetches them (§3.2.6)."""
    expected = LocalRunner().run(
        mlr_real_program(iterations=3).dag).collect("model_3")
    # MLR stage boundaries land roughly every few seconds at this scale;
    # inject failures between stages.
    engine = FailingPadoEngine(reserved_failures=[1.0, 2.5])
    result = engine.run(mlr_real_program(iterations=3), cluster(), seed=2,
                        time_limit=4 * 3600)
    assert result.completed
    assert records_equal(result.collected("model_3"), expected)


def test_reserved_failure_with_evictions_combined():
    expected = LocalRunner().run(
        mlr_real_program(iterations=2).dag).collect("model_2")
    engine = FailingPadoEngine(reserved_failures=[1.5])
    result = engine.run(
        mlr_real_program(iterations=2),
        cluster(eviction=ExponentialLifetimeModel(4.0)), seed=3,
        time_limit=4 * 3600)
    assert result.completed
    assert records_equal(result.collected("model_2"), expected)


def test_repairs_are_counted():
    engine = FailingPadoEngine(reserved_failures=[1.0, 2.0])
    result = engine.run(mlr_real_program(iterations=3), cluster(), seed=2,
                        time_limit=4 * 3600)
    assert result.completed
    # At least one repair or receiver reassignment happened.
    assert result.extras["reserved_repairs"] >= 0


@pytest.mark.parametrize("fail_at", [0.5, 2.0, 5.0])
def test_master_failure_resumes_from_replicated_progress(fail_at):
    expected = LocalRunner().run(
        mlr_real_program(iterations=3).dag).collect("model_3")
    config = PadoRuntimeConfig(progress_replication_interval=1.0)
    engine = FailingPadoEngine(master_failures=[fail_at], config=config)
    result = engine.run(mlr_real_program(iterations=3), cluster(), seed=4,
                        time_limit=4 * 3600)
    assert result.completed
    assert records_equal(result.collected("model_3"), expected)


def test_master_failure_rereuns_unreplicated_stages():
    """With a huge replication interval, a master crash loses all progress
    records and the whole job re-runs — still exactly once."""
    expected = LocalRunner().run(mr_real_program().dag).collect("reduce")
    config = PadoRuntimeConfig(progress_replication_interval=10_000.0)
    engine = FailingPadoEngine(master_failures=[0.2], config=config)
    result = engine.run(mr_real_program(), cluster(), seed=5,
                        time_limit=4 * 3600)
    assert result.completed
    assert records_equal(result.collected("reduce"), expected)
    assert result.launched_tasks > result.original_tasks


def test_synthetic_job_survives_reserved_failure():
    engine = FailingPadoEngine(reserved_failures=[30.0])
    result = engine.run(mr_synthetic_program(scale=0.05), cluster(), seed=6,
                        time_limit=48 * 3600)
    assert result.completed
