"""Unit tests for the input and stable storage services."""

import pytest

from repro.cluster.events import Simulator
from repro.cluster.network import ContainerEndpoint, NetworkModel
from repro.cluster.resources import NodeSpec, reserved_container
from repro.cluster.storage import InputStore, StableStore
from repro.errors import ExecutionError

MB = 1024 * 1024


@pytest.fixture
def env():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    return sim, net


def endpoint(bandwidth=100 * MB):
    return ContainerEndpoint(
        reserved_container(NodeSpec(network_bandwidth=bandwidth)))


def test_input_store_put_and_read(env):
    sim, net = env
    store = InputStore(sim, net)
    store.put("f", 100 * MB, payload=[1, 2, 3])
    assert store.has("f")
    assert store.size_of("f") == 100 * MB
    assert store.payload_of("f") == [1, 2, 3]
    done = []
    store.read("f", endpoint(), lambda r: done.append((r.ok, sim.now)))
    sim.run()
    assert done == [(True, pytest.approx(1.0))]
    assert store.bytes_read == 100 * MB


def test_input_store_read_limited_by_reader_nic(env):
    sim, net = env
    store = InputStore(sim, net)
    store.put("f", 100 * MB)
    done = []
    store.read("f", endpoint(bandwidth=10 * MB),
               lambda r: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(10.0)]


def test_input_store_missing_file(env):
    sim, net = env
    store = InputStore(sim, net)
    with pytest.raises(ExecutionError):
        store.read("nope", endpoint(), lambda r: None)


def test_stable_store_round_robin_placement(env):
    sim, net = env
    store = StableStore(sim, net, num_servers=2, server_bandwidth=100 * MB)
    src = endpoint(bandwidth=1000 * MB)
    done = []
    # Two writes to different servers proceed in parallel; a third queues
    # behind the first server.
    for name in ("a", "b", "c"):
        store.write(name, 100 * MB, src, lambda r: done.append(sim.now))
    sim.run()
    assert sorted(done) == pytest.approx([1.0, 1.0, 2.0])
    assert store.bytes_written == 300 * MB


def test_stable_store_write_then_read(env):
    sim, net = env
    store = StableStore(sim, net, num_servers=1, server_bandwidth=100 * MB)
    store.write("x", 50 * MB, endpoint(), lambda r: None, payload=[1])
    sim.run()
    assert store.has("x")
    assert store.payload_of("x") == [1]
    done = []
    store.read("x", endpoint(), lambda r: done.append(r.ok))
    sim.run()
    assert done == [True]
    assert store.bytes_read == 50 * MB


def test_stable_store_failed_write_not_durable(env):
    from repro.cluster.resources import transient_container
    sim, net = env
    store = StableStore(sim, net, num_servers=1, server_bandwidth=10 * MB)
    container = transient_container(lifetime=1.0)
    src = ContainerEndpoint(container)
    outcomes = []
    store.write("x", 100 * MB, src, lambda r: outcomes.append(r.ok))
    sim.schedule(1.0, lambda: container.evict(sim.now))
    sim.run()
    assert outcomes == [False]
    assert not store.has("x")


def test_stable_store_read_share_moves_partial_bytes(env):
    sim, net = env
    store = StableStore(sim, net, num_servers=1, server_bandwidth=100 * MB)
    store.write("x", 100 * MB, endpoint(), lambda r: None)
    sim.run()
    done = []
    store.read_share("x", 10 * MB, endpoint(), lambda r: done.append(sim.now))
    start = sim.now
    sim.run()
    assert done[0] - start == pytest.approx(0.1)


def test_stable_store_read_missing(env):
    sim, net = env
    store = StableStore(sim, net, num_servers=1, server_bandwidth=1.0)
    with pytest.raises(ExecutionError):
        store.read("nope", endpoint(), lambda r: None)


def test_stable_store_delete(env):
    sim, net = env
    store = StableStore(sim, net, num_servers=1, server_bandwidth=100 * MB)
    store.write("x", 1 * MB, endpoint(), lambda r: None)
    sim.run()
    store.delete("x")
    assert not store.has("x")


def test_stable_store_needs_servers(env):
    sim, net = env
    with pytest.raises(ValueError):
        StableStore(sim, net, num_servers=0, server_bandwidth=1.0)
