"""Unit tests for the bandwidth/network model."""

import pytest

from repro.cluster.events import Simulator
from repro.cluster.network import (ContainerEndpoint, DiskModel, FifoPort,
                                   InfiniteEndpoint, NetworkModel)
from repro.cluster.resources import (NodeSpec, reserved_container,
                                     transient_container)

MB = 1024 * 1024


def make_endpoint(bandwidth=100 * MB, transient=False, lifetime=1e9):
    spec = NodeSpec(network_bandwidth=bandwidth)
    container = (transient_container(lifetime, spec=spec) if transient
                 else reserved_container(spec))
    return ContainerEndpoint(container)


def test_fifo_port_serializes_requests():
    port = FifoPort(bandwidth=10.0)
    assert port.reserve(0.0, 100.0) == (0.0, 10.0)
    assert port.reserve(0.0, 50.0) == (10.0, 15.0)
    # A request arriving after the port frees starts immediately.
    assert port.reserve(20.0, 10.0) == (20.0, 21.0)


def test_fifo_port_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        FifoPort(0.0)


def test_transfer_time_is_size_over_bandwidth():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src, dst = make_endpoint(), make_endpoint()
    results = []
    net.transfer(src, dst, 100 * MB, results.append)
    sim.run()
    assert len(results) == 1
    assert results[0].ok
    assert results[0].finished_at == pytest.approx(1.0)


def test_transfer_bottlenecked_by_slower_endpoint():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src = make_endpoint(bandwidth=100 * MB)
    dst = make_endpoint(bandwidth=10 * MB)
    results = []
    net.transfer(src, dst, 100 * MB, results.append)
    sim.run()
    assert results[0].finished_at == pytest.approx(10.0)


def test_concurrent_transfers_queue_on_shared_source():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src = make_endpoint(bandwidth=100 * MB)
    done = []
    for _ in range(3):
        net.transfer(src, make_endpoint(), 100 * MB,
                     lambda r: done.append(r.finished_at))
    sim.run()
    assert done == pytest.approx([1.0, 2.0, 3.0])


def test_transfer_fails_if_source_evicted_midway():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src = make_endpoint(transient=True)
    dst = make_endpoint()
    results = []
    net.transfer(src, dst, 100 * MB, results.append)  # takes 1 s
    sim.schedule(0.5, lambda: src.container.evict(sim.now))
    sim.run()
    assert not results[0].ok
    assert net.transfers_failed == 1


def test_transfer_to_dead_endpoint_fails_immediately():
    sim = Simulator()
    net = NetworkModel(sim)
    src = make_endpoint(transient=True)
    src.container.evict(0.0)
    results = []
    net.transfer(src, make_endpoint(), 10.0, results.append)
    sim.run()
    assert results and not results[0].ok


def test_zero_byte_transfer_pays_latency_only():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.01)
    results = []
    net.transfer(make_endpoint(), make_endpoint(), 0.0, results.append)
    sim.run()
    assert results[0].ok
    assert results[0].finished_at == pytest.approx(0.01)


def test_negative_size_rejected():
    sim = Simulator()
    net = NetworkModel(sim)
    with pytest.raises(ValueError):
        net.transfer(make_endpoint(), make_endpoint(), -1.0, lambda r: None)


def test_bytes_transferred_accounting():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    net.transfer(make_endpoint(), make_endpoint(), 1000.0, lambda r: None)
    sim.run()
    assert net.bytes_transferred == 1000


def test_infinite_endpoint_never_bottlenecks():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    dst = make_endpoint(bandwidth=100 * MB)
    done = []
    net.transfer(InfiniteEndpoint(), dst, 100 * MB,
                 lambda r: done.append(r.finished_at))
    sim.run()
    assert done == pytest.approx([1.0])


def test_disk_write_and_read_share_bandwidth():
    sim = Simulator()
    spec = NodeSpec(disk_bandwidth=100 * MB)
    container = reserved_container(spec)
    disk = DiskModel(sim, container)
    times = []
    disk.write(100 * MB, lambda ok: times.append(sim.now))
    disk.read(100 * MB, lambda ok: times.append(sim.now))
    sim.run()
    assert times == pytest.approx([1.0, 2.0])
    assert disk.bytes_written == 100 * MB
    assert disk.bytes_read == 100 * MB


def test_disk_io_on_dead_container_reports_failure():
    sim = Simulator()
    container = transient_container(lifetime=10.0)
    disk = DiskModel(sim, container)
    outcomes = []
    disk.write(100 * MB, outcomes.append)
    container.evict(0.1)
    sim.run()
    assert outcomes == [False]
