"""Unit tests for the bandwidth/network model."""

import pytest

from repro.cluster.events import Simulator
from repro.cluster.network import (ContainerEndpoint, DiskModel, FifoPort,
                                   InfiniteEndpoint, NetworkModel)
from repro.cluster.resources import (NodeSpec, reserved_container,
                                     transient_container)

MB = 1024 * 1024


def make_endpoint(bandwidth=100 * MB, transient=False, lifetime=1e9):
    spec = NodeSpec(network_bandwidth=bandwidth)
    container = (transient_container(lifetime, spec=spec) if transient
                 else reserved_container(spec))
    return ContainerEndpoint(container)


def test_fifo_port_serializes_requests():
    port = FifoPort(bandwidth=10.0)
    assert port.reserve(0.0, 100.0) == (0.0, 10.0)
    assert port.reserve(0.0, 50.0) == (10.0, 15.0)
    # A request arriving after the port frees starts immediately.
    assert port.reserve(20.0, 10.0) == (20.0, 21.0)


def test_fifo_port_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        FifoPort(0.0)


def test_transfer_time_is_size_over_bandwidth():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src, dst = make_endpoint(), make_endpoint()
    results = []
    net.transfer(src, dst, 100 * MB, results.append)
    sim.run()
    assert len(results) == 1
    assert results[0].ok
    assert results[0].finished_at == pytest.approx(1.0)


def test_transfer_bottlenecked_by_slower_endpoint():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src = make_endpoint(bandwidth=100 * MB)
    dst = make_endpoint(bandwidth=10 * MB)
    results = []
    net.transfer(src, dst, 100 * MB, results.append)
    sim.run()
    assert results[0].finished_at == pytest.approx(10.0)


def test_concurrent_transfers_queue_on_shared_source():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src = make_endpoint(bandwidth=100 * MB)
    done = []
    for _ in range(3):
        net.transfer(src, make_endpoint(), 100 * MB,
                     lambda r: done.append(r.finished_at))
    sim.run()
    assert done == pytest.approx([1.0, 2.0, 3.0])


def test_transfer_fails_if_source_evicted_midway():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src = make_endpoint(transient=True)
    dst = make_endpoint()
    results = []
    net.transfer(src, dst, 100 * MB, results.append)  # takes 1 s
    sim.schedule(0.5, lambda: src.container.evict(sim.now))
    sim.run()
    assert not results[0].ok
    assert net.transfers_failed == 1


def test_transfer_to_dead_endpoint_fails_immediately():
    sim = Simulator()
    net = NetworkModel(sim)
    src = make_endpoint(transient=True)
    src.container.evict(0.0)
    results = []
    net.transfer(src, make_endpoint(), 10.0, results.append)
    sim.run()
    assert results and not results[0].ok


def test_zero_byte_transfer_pays_latency_only():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.01)
    results = []
    net.transfer(make_endpoint(), make_endpoint(), 0.0, results.append)
    sim.run()
    assert results[0].ok
    assert results[0].finished_at == pytest.approx(0.01)


def test_negative_size_rejected():
    sim = Simulator()
    net = NetworkModel(sim)
    with pytest.raises(ValueError):
        net.transfer(make_endpoint(), make_endpoint(), -1.0, lambda r: None)


def test_bytes_transferred_accounting():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    net.transfer(make_endpoint(), make_endpoint(), 1000.0, lambda r: None)
    sim.run()
    assert net.bytes_transferred == 1000


def test_infinite_endpoint_never_bottlenecks():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    dst = make_endpoint(bandwidth=100 * MB)
    done = []
    net.transfer(InfiniteEndpoint(), dst, 100 * MB,
                 lambda r: done.append(r.finished_at))
    sim.run()
    assert done == pytest.approx([1.0])


def test_disk_write_and_read_share_bandwidth():
    sim = Simulator()
    spec = NodeSpec(disk_bandwidth=100 * MB)
    container = reserved_container(spec)
    disk = DiskModel(sim, container)
    times = []
    disk.write(100 * MB, lambda ok: times.append(sim.now))
    disk.read(100 * MB, lambda ok: times.append(sim.now))
    sim.run()
    assert times == pytest.approx([1.0, 2.0])
    assert disk.bytes_written == 100 * MB
    assert disk.bytes_read == 100 * MB


def test_disk_io_on_dead_container_reports_failure():
    sim = Simulator()
    container = transient_container(lifetime=10.0)
    disk = DiskModel(sim, container)
    outcomes = []
    disk.write(100 * MB, outcomes.append)
    container.evict(0.1)
    sim.run()
    assert outcomes == [False]


def test_dead_endpoint_counts_failure_not_bytes():
    sim = Simulator()
    net = NetworkModel(sim)
    src = make_endpoint(transient=True)
    src.container.evict(0.0)
    net.transfer(src, make_endpoint(), 10 * MB, lambda r: None)
    sim.run()
    assert net.transfers_failed == 1
    assert net.bytes_transferred == 0


def test_eviction_at_same_timestamp_beats_transfer_completion():
    """An eviction scheduled at exactly a transfer's finish time fires
    first (EVICTION_PRIORITY), so the transfer is conservatively lost."""
    from repro.cluster.network import EVICTION_PRIORITY

    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src = make_endpoint(transient=True)
    results = []
    net.transfer(src, make_endpoint(), 100 * MB, results.append)  # ends 1.0
    sim.schedule(1.0, lambda: src.container.evict(sim.now),
                 priority=EVICTION_PRIORITY)
    sim.run()
    assert not results[0].ok
    assert net.transfers_failed == 1
    assert net.bytes_transferred == 0


def test_transfer_many_shares_one_tagged_callback():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src = make_endpoint(bandwidth=100 * MB)
    done = []
    net.transfer_many(
        [(src, make_endpoint(), 100 * MB, tag) for tag in ("a", "b", "c")],
        lambda tag, r: done.append((tag, r.finished_at)))
    sim.run()
    assert [tag for tag, _ in done] == ["a", "b", "c"]
    assert [at for _, at in done] == pytest.approx([1.0, 2.0, 3.0])


def test_transfer_many_fails_dead_entries_without_losing_the_rest():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    dead = make_endpoint(transient=True)
    dead.container.evict(0.0)
    done = []
    net.transfer_many(
        [(dead, make_endpoint(), 100 * MB, "dead"),
         (make_endpoint(), make_endpoint(), 100 * MB, "live")],
        lambda tag, r: done.append((tag, r.ok)))
    sim.run()
    assert sorted(done) == [("dead", False), ("live", True)]
    assert net.transfers_failed == 1
    assert net.bytes_transferred == 100 * MB


def test_plan_nests_and_matches_sequential_timing():
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src = make_endpoint(bandwidth=100 * MB)
    done = []
    record = lambda tag, r: done.append((tag, r.finished_at))  # noqa: E731
    net.begin_plan()
    net.plan_transfer(src, make_endpoint(), 100 * MB, "outer-1", record)
    net.begin_plan()  # a cascade opening its own plan mid-walk
    net.plan_transfer(src, make_endpoint(), 100 * MB, "inner", record)
    net.commit_plan()
    assert net.plan_open  # inner commit must not flush the outer plan
    net.plan_transfer(src, make_endpoint(), 100 * MB, "outer-2", record)
    net.commit_plan()
    assert not net.plan_open
    sim.run()
    assert [tag for tag, _ in done] == ["outer-1", "inner", "outer-2"]
    assert [at for _, at in done] == pytest.approx([1.0, 2.0, 3.0])


def test_plain_transfer_flushes_open_plan_first():
    """A plain transfer issued while a plan is open must not overtake the
    queued entries on a shared port."""
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    src = make_endpoint(bandwidth=100 * MB)
    done = []
    net.begin_plan()
    net.plan_transfer(src, make_endpoint(), 100 * MB, "planned",
                      lambda tag, r: done.append((tag, r.finished_at)))
    net.transfer(src, make_endpoint(), 100 * MB,
                 lambda r: done.append(("plain", r.finished_at)))
    net.commit_plan()
    sim.run()
    assert done == [("planned", pytest.approx(1.0)),
                    ("plain", pytest.approx(2.0))]


def test_bytes_served_does_not_truncate_fractional_shares():
    """Fractional reservations accumulate exactly; rounding happens once
    at read time (0.4 * 5 must be 2 bytes, not 0)."""
    port = FifoPort(bandwidth=10.0)
    for _ in range(5):
        port.reserve(0.0, 0.4)
    assert port.bytes_served == 2


def test_untraced_run_builds_no_event_objects(monkeypatch):
    """The tracer-off fast path never constructs Transfer/DiskIO events —
    asserted over a full engine run with evictions."""
    import repro.cluster.network as network_module
    from repro import ClusterConfig, SparkEngine
    from repro.trace.models import ExponentialLifetimeModel
    from repro.workloads import mr_synthetic_program

    def explode(*args, **kwargs):
        raise AssertionError("trace event built without a tracer attached")

    monkeypatch.setattr(network_module, "Transfer", explode)
    monkeypatch.setattr(network_module, "DiskIO", explode)
    result = SparkEngine().run(
        mr_synthetic_program(scale=0.05),
        ClusterConfig(num_reserved=2, num_transient=5,
                      eviction=ExponentialLifetimeModel(600.0)),
        seed=0, time_limit=48 * 3600.0)
    assert result.completed
