"""Unit tests for the resource manager: allocation, eviction schedule,
re-provisioning, and fault injection."""

import numpy as np
import pytest

from repro.cluster.events import Simulator
from repro.cluster.manager import ResourceManager
from repro.errors import ResourceError
from repro.trace.models import ExponentialLifetimeModel, NoEvictionModel


def make_rm(lifetime_model=None, seed=0, replace=True):
    sim = Simulator()
    rm = ResourceManager(sim, lifetime_model or NoEvictionModel(),
                         np.random.default_rng(seed),
                         replace_evicted=replace)
    return sim, rm


def test_allocate_counts():
    sim, rm = make_rm()
    rm.allocate(2, 5)
    assert len(rm.reserved_containers()) == 2
    assert len(rm.transient_containers()) == 5


def test_negative_counts_rejected():
    _, rm = make_rm()
    with pytest.raises(ResourceError):
        rm.allocate(-1, 0)


def test_no_eviction_model_never_evicts():
    sim, rm = make_rm()
    rm.allocate(1, 4)
    sim.run(until=1e6)
    assert rm.evictions == 0


def test_transient_evicted_at_sampled_lifetime():
    sim, rm = make_rm(ExponentialLifetimeModel(10.0))
    events = []
    rm.on_eviction(lambda c, r: events.append((sim.now, c, r)))
    rm.allocate(0, 1)
    lifetime = rm.containers[0].lifetime
    sim.run(until=lifetime + 0.1)
    assert rm.evictions == 1
    when, dead, replacement = events[0]
    assert when == pytest.approx(lifetime)
    assert not dead.alive
    assert replacement is not None and replacement.alive


def test_replacement_gets_fresh_lifetime_and_eviction():
    sim, rm = make_rm(ExponentialLifetimeModel(5.0))
    rm.allocate(0, 1)
    sim.run(until=200.0)
    # With a 5-second mean lifetime, many eviction/replacement rounds fire.
    assert rm.evictions > 5
    assert len(rm.transient_containers()) == 1


def test_replace_evicted_false_shrinks_pool():
    sim, rm = make_rm(ExponentialLifetimeModel(5.0), replace=False)
    rm.allocate(0, 3)
    sim.run(until=1000.0)
    assert rm.evictions == 3
    assert rm.transient_containers() == []


def test_on_container_callback_fires_for_every_launch():
    sim, rm = make_rm(ExponentialLifetimeModel(5.0))
    seen = []
    rm.on_container(seen.append)
    rm.allocate(1, 2)
    assert len(seen) == 3
    sim.run(until=100.0)
    assert len(seen) == 3 + rm.evictions


def test_inject_failure_on_reserved():
    sim, rm = make_rm()
    rm.allocate(2, 0)
    victim = rm.reserved_containers()[0]
    events = []
    rm.on_eviction(lambda c, r: events.append((c, r)))
    replacement = rm.inject_failure(victim)
    assert not victim.alive and victim.failed_at is not None
    assert replacement.is_reserved and replacement.alive
    assert rm.failures == 1
    assert events == [(victim, replacement)]


def test_inject_failure_without_replacement():
    sim, rm = make_rm()
    rm.allocate(1, 0)
    assert rm.inject_failure(rm.reserved_containers()[0],
                             replace=False) is None


def test_inject_failure_on_dead_container_rejected():
    sim, rm = make_rm()
    rm.allocate(1, 0)
    victim = rm.reserved_containers()[0]
    rm.inject_failure(victim, replace=False)
    with pytest.raises(ResourceError):
        rm.inject_failure(victim)


def test_schedule_failure_fires_later():
    sim, rm = make_rm()
    rm.allocate(1, 0)
    victim = rm.reserved_containers()[0]
    rm.schedule_failure(victim, delay=50.0, replace=False)
    sim.run(until=49.0)
    assert victim.alive
    sim.run()
    assert not victim.alive


def test_slot_arrays_stay_dense_across_eviction_generations():
    """Evict, replace, evict the replacement: every generation reuses its
    predecessor's slot, so the parallel slot arrays never grow past the
    fleet size while the history list records every launch."""
    sim, rm = make_rm(ExponentialLifetimeModel(5.0))
    rm.allocate(1, 3)
    sim.run(until=100.0)
    assert rm.evictions > 3                 # several generations per slot
    assert len(rm.slot_kind) == 4           # fleet size, not launch count
    assert len(rm.containers) == 4 + rm.evictions
    # The live view reads straight from the slot arrays.
    live = rm.reserved_containers() + rm.transient_containers()
    assert len(live) == 4
    for container in live:
        assert container.alive
        assert rm.slot_container[container.slot] is container
        assert rm.slot_alive[container.slot]
        assert rm.slot_kind[container.slot] is container.kind
        assert rm.slot_launched[container.slot] == container.launched_at
    # Every dead generation shares a slot with exactly one live container.
    for container in rm.containers:
        if not container.alive:
            assert rm.slot_container[container.slot] is not container


def test_determinism_same_seed_same_lifetimes():
    def lifetimes(seed):
        sim, rm = make_rm(ExponentialLifetimeModel(7.0), seed=seed)
        rm.allocate(0, 10)
        return [c.lifetime for c in rm.containers]

    assert lifetimes(3) == lifetimes(3)
    assert lifetimes(3) != lifetimes(4)
