"""Unit tests for the discrete-event simulator core."""

import math

import pytest

from repro.cluster.events import Simulator
from repro.errors import SimulationError


def test_starts_at_time_zero():
    assert Simulator().now == 0.0


def test_runs_event_at_scheduled_time():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule(1.0, lambda lab=label: order.append(lab))
    sim.run()
    assert order == ["a", "b", "c"]


def test_priority_breaks_ties_before_insertion_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("normal"), priority=0)
    sim.schedule(1.0, lambda: order.append("urgent"), priority=-10)
    sim.run()
    assert order == ["urgent", "normal"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def first():
        sim.schedule(2.0, lambda: fired.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == [3.0]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0


def test_run_until_resumes_cleanly():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    sim.run()
    assert fired == [2]
    assert sim.now == 10.0


def test_max_events_guard():
    sim = Simulator()

    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_peek_time():
    sim = Simulator()
    assert math.isinf(sim.peek_time())
    handle = sim.schedule(4.0, lambda: None)
    assert sim.peek_time() == 4.0
    handle.cancel()
    assert math.isinf(sim.peek_time())


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_step_returns_false_when_empty():
    assert Simulator().step() is False
