"""Unit tests for the discrete-event simulator core."""

import math

import pytest

from repro.cluster.events import Simulator
from repro.errors import SimulationError


def test_starts_at_time_zero():
    assert Simulator().now == 0.0


def test_runs_event_at_scheduled_time():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule(1.0, lambda lab=label: order.append(lab))
    sim.run()
    assert order == ["a", "b", "c"]


def test_priority_breaks_ties_before_insertion_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("normal"), priority=0)
    sim.schedule(1.0, lambda: order.append("urgent"), priority=-10)
    sim.run()
    assert order == ["urgent", "normal"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def first():
        sim.schedule(2.0, lambda: fired.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == [3.0]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0


def test_run_until_resumes_cleanly():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    sim.run()
    assert fired == [2]
    assert sim.now == 10.0


def test_max_events_guard():
    sim = Simulator()

    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_peek_time():
    sim = Simulator()
    assert math.isinf(sim.peek_time())
    handle = sim.schedule(4.0, lambda: None)
    assert sim.peek_time() == 4.0
    handle.cancel()
    assert math.isinf(sim.peek_time())


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


# ----------------------------------------------------------------------
# run(until=...) drain consistency


def test_run_until_advances_now_when_heap_drains_early():
    # Regression: ``now`` used to stop at the last event when the heap
    # drained before ``until``, but advanced to ``until`` when later
    # events existed; the two paths must agree.
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_run_until_advances_now_on_empty_heap():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_run_until_drained_matches_pending_path():
    drained = Simulator()
    drained.schedule(1.0, lambda: None)
    drained.run(until=5.0)
    pending = Simulator()
    pending.schedule(1.0, lambda: None)
    pending.schedule(10.0, lambda: None)
    pending.run(until=5.0)
    assert drained.now == pending.now == 5.0


def test_run_until_does_not_move_now_backwards():
    sim = Simulator()
    sim.schedule(7.0, lambda: None)
    sim.run()
    sim.run(until=3.0)
    assert sim.now == 7.0


# ----------------------------------------------------------------------
# handle-free fast scheduling


def test_schedule_fast_fires_in_order_with_regular_events():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("slow"))
    sim.schedule_fast(1.0, lambda: order.append("fast"))
    sim.schedule_at_fast(2.0, lambda: order.append("fast-at"), priority=-1)
    sim.run()
    assert order == ["fast", "fast-at", "slow"]


def test_schedule_fast_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_fast(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_fast(math.nan, lambda: None)


def test_schedule_at_fast_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at_fast(1.0, lambda: None)


def test_fast_and_regular_share_sequence_numbers():
    sim = Simulator()
    order = []
    sim.schedule_fast(1.0, lambda: order.append("a"))
    sim.schedule(1.0, lambda: order.append("b"))
    sim.schedule_fast(1.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


# ----------------------------------------------------------------------
# cancellation tombstones and heap compaction


def test_cancel_is_idempotent_and_counts_once():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.cancelled_pending == 1
    sim.run()
    assert sim.cancelled_pending == 0


def test_cancel_after_fire_is_harmless():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    sim.run()
    handle.cancel()
    assert fired == [1]
    assert handle.cancelled  # the entry is tombstoned, but already fired
    sim.schedule(1.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2]


def test_mass_cancellation_compacts_the_heap():
    # Regression: long Spark runs under high eviction cancel many timers;
    # cancelled entries must not accumulate past the live-entry count.
    sim = Simulator()
    fired = []
    handles = [sim.schedule(100.0 + i, lambda: None) for i in range(300)]
    for i in range(100):
        sim.schedule(500.0 + i, lambda i=i: fired.append(i))
    for handle in handles:
        handle.cancel()
    # Compaction keeps tombstones bounded by the live entries.
    assert sim.pending_events < 400
    assert sim.cancelled_pending * 2 <= sim.pending_events + 1
    sim.run()
    assert fired == list(range(100))
    assert sim.events_processed == 100
    assert sim.pending_events == 0


def test_small_cancellation_storms_skip_compaction():
    # Below the compaction threshold nothing is rebuilt: entries are only
    # dropped lazily as they surface.
    sim = Simulator()
    handles = [sim.schedule(10.0 + i, lambda: None) for i in range(20)]
    for handle in handles:
        handle.cancel()
    assert sim.pending_events == 20
    assert sim.cancelled_pending == 20
    sim.run()
    assert sim.events_processed == 0


# ----------------------------------------------------------------------
# calendar queue (timer wheel)


def test_wheel_parks_far_future_events_off_the_heap():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule_wheel(1000.0 + i, lambda i=i: fired.append(i))
    assert sim.pending_events == 10
    assert len(sim._heap) == 0          # all parked in buckets
    sim.run()
    assert fired == list(range(10))
    assert sim.pending_events == 0


def test_wheel_near_term_delays_go_straight_to_heap():
    sim = Simulator()
    sim.schedule_wheel(1.0, lambda: None)
    assert len(sim._heap) == 1
    assert sim._wheel_count == 0


def test_wheel_merge_preserves_time_priority_seq_order():
    sim = Simulator()
    fired = []
    # Same timestamp reached three ways: wheel, heap fast path, and a
    # handle-returning schedule. Insertion order must win the tie.
    sim.schedule_wheel(200.0, lambda: fired.append("wheel"))
    sim.schedule_fast(200.0, lambda: fired.append("fast"))
    sim.schedule(200.0, lambda: fired.append("handle"))
    sim.schedule_fast(200.0, lambda: fired.append("urgent"), priority=-1)
    sim.run()
    assert fired == ["urgent", "wheel", "fast", "handle"]


def test_schedule_at_seq_routes_far_future_to_wheel():
    sim = Simulator()
    fired = []
    seq = sim.take_seq()
    sim.schedule_at_seq(500.0, seq, lambda: fired.append("far"))
    assert sim._wheel_count == 1
    near = sim.take_seq()
    sim.schedule_at_seq(1.0, near, lambda: fired.append("near"))
    assert len(sim._heap) == 1
    sim.run()
    assert fired == ["near", "far"]
    assert sim.now == 500.0


def test_wheel_rejects_negative_and_nan_delays():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_wheel(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_wheel(math.nan, lambda: None)


def test_wheel_spills_before_equal_time_heap_event_pops():
    # A bucket whose start equals the heap front's time must merge first:
    # the bucket may hold an entry with the same timestamp but an earlier
    # seq (or lower priority) than the heap front.
    sim = Simulator()
    fired = []
    sim.schedule_wheel(128.0, lambda: fired.append("bucketed"))
    sim.schedule_at_fast(128.0, lambda: fired.append("heap"))
    # Bucket start (128.0 // 64 * 64 == 128.0) == heap front time.
    sim.run()
    assert fired == ["bucketed", "heap"]


def test_wheel_events_interleave_with_dynamic_near_term_work():
    sim = Simulator()
    fired = []
    sim.schedule_wheel(300.0, lambda: fired.append(("evict", sim.now)))

    def tick():
        fired.append(("tick", sim.now))
        if sim.now < 400.0:
            sim.schedule_fast(100.0, tick)

    sim.schedule_fast(100.0, tick)
    sim.run()
    assert fired == [("tick", 100.0), ("tick", 200.0), ("evict", 300.0),
                     ("tick", 300.0), ("tick", 400.0)]
