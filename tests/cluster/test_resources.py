"""Unit tests for nodes and containers."""

import pytest

from repro.cluster.resources import (NodeSpec, RESERVED_NODE,
                                     TRANSIENT_NODE, reserved_container,
                                     transient_container)


def test_default_specs_match_paper_instances():
    # i2.xlarge: 4 vcores, 30.5 GB; m3.xlarge: 4 vcores, 15 GB (§5.1.1).
    assert RESERVED_NODE.cores == 4
    assert round(RESERVED_NODE.memory_bytes / 2**30, 1) == 30.5
    assert TRANSIENT_NODE.cores == 4
    assert TRANSIENT_NODE.memory_bytes / 2**30 == 15


def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(cores=0)
    with pytest.raises(ValueError):
        NodeSpec(memory_bytes=-1)
    with pytest.raises(ValueError):
        NodeSpec(network_bandwidth=0)


def test_container_ids_unique():
    a, b = reserved_container(), reserved_container()
    assert a.container_id != b.container_id


def test_reserved_container_cannot_be_evicted():
    container = reserved_container()
    with pytest.raises(ValueError):
        container.evict(now=1.0)
    assert container.alive


def test_transient_container_eviction():
    container = transient_container(lifetime=60.0)
    assert container.alive and container.is_transient
    container.evict(now=60.0)
    assert not container.alive
    assert container.evicted_at == 60.0
    assert container.dead_since() == 60.0


def test_double_eviction_rejected():
    container = transient_container(lifetime=60.0)
    container.evict(now=60.0)
    with pytest.raises(ValueError):
        container.evict(now=61.0)


def test_machine_fault_can_hit_reserved():
    container = reserved_container()
    container.fail(now=5.0)
    assert not container.alive
    assert container.failed_at == 5.0


def test_dead_since_requires_dead_container():
    with pytest.raises(ValueError):
        reserved_container().dead_since()


def test_transient_requires_positive_lifetime():
    with pytest.raises(ValueError):
        transient_container(lifetime=0.0)


def test_kind_predicates():
    assert reserved_container().is_reserved
    assert not reserved_container().is_transient
    assert transient_container(1.0).is_transient
