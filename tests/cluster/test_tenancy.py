"""Invariant tests for the multi-tenant inter-job scheduling layer.

These pin the documented contracts of docs/MULTITENANCY.md: FIFO is
arrival-ordered, fair-share cannot starve a tenant, reserved-quota never
leases one tenant's reserved partition to another, and a correlated
eviction wave hits every co-located job in one tick. The cluster loop is
driven with stub executors (no engine simulations), so these run fast.
"""

import math

import numpy as np
import pytest

from repro.cluster.manager import LeasePool
from repro.cluster.resources import ContainerKind
from repro.cluster.tenancy import (ArrivalConfig, DiurnalArrivalProcess,
                                   EvictionWaveProcess, FairSharePolicy,
                                   FifoPolicy, JobOutcome, JobRequest,
                                   MultiTenantCluster, ReservedQuotaPolicy,
                                   TenancyConfig, WAVE_RATE_PER_HOUR,
                                   make_policy, reserved_quotas)
from repro.errors import ResourceError, SimulationError
from repro.trace.models import WaveLifetimeModel


def request(job_id, tenant, arrival=0.0, r=1, t=4, nominal=1.0, seed=1):
    return JobRequest(job_id=job_id, tenant=tenant, arrival_time=arrival,
                      workload="mr", engine="pado", scale=0.02,
                      num_reserved=r, num_transient=t, seed=seed,
                      nominal_minutes=nominal)


def stub_executor(batch):
    """Deterministic stand-in for engine simulations."""
    return [JobOutcome(jct_seconds=req.nominal_minutes * 60.0
                       * (1.0 + 0.05 * len(waves)),
                       completed=True, evictions=len(waves))
            for req, waves in batch]


# ----------------------------------------------------------------------
# arrival and wave processes


def test_arrival_schedule_is_deterministic_per_seed():
    config = ArrivalConfig(load=0.8, num_tenants=3)
    a = DiurnalArrivalProcess(config, seed=7).generate(25, 48)
    b = DiurnalArrivalProcess(config, seed=7).generate(25, 48)
    c = DiurnalArrivalProcess(config, seed=8).generate(25, 48)
    assert a == b
    assert a != c
    assert [r.arrival_time for r in a] == sorted(r.arrival_time for r in a)
    assert {r.tenant for r in a} <= {"tenant0", "tenant1", "tenant2"}


def test_higher_load_means_faster_arrivals():
    slow = DiurnalArrivalProcess(ArrivalConfig(load=0.4), seed=3)
    fast = DiurnalArrivalProcess(ArrivalConfig(load=1.2), seed=3)
    assert fast.mean_rate_per_second(48) == pytest.approx(
        3.0 * slow.mean_rate_per_second(48))


def test_wave_schedule_respects_regime_and_horizon():
    config = ArrivalConfig()
    waves = EvictionWaveProcess("high", config.trace, seed=5).generate(
        12 * 3600.0)
    assert waves
    assert all(0.0 < t <= 12 * 3600.0 for t, _ in waves)
    assert all(0.30 <= severity <= 0.70 for _, severity in waves)
    assert EvictionWaveProcess("none", config.trace, seed=5).generate(
        12 * 3600.0) == ()
    with pytest.raises(ValueError):
        EvictionWaveProcess("extreme", config.trace)


def test_wave_lifetime_model_pins_deaths_to_wave_offsets():
    model = WaveLifetimeModel([(60.0, 1.0), (300.0, 1.0)])
    rng = np.random.default_rng(0)
    # Launched at t=0: dies exactly at the first wave.
    assert model.sample_at(0.0, rng) == 60.0
    # Launched between waves: only future waves apply.
    assert model.sample_at(100.0, rng) == 200.0
    # Launched after the last wave: lives forever.
    assert math.isinf(model.sample_at(400.0, rng))
    assert model.cdf(59.0) == 0.0
    assert model.cdf(301.0) == 1.0
    partial = WaveLifetimeModel([(60.0, 0.25)])
    lifetimes = [partial.sample_at(0.0, rng) for _ in range(400)]
    survivors = sum(1 for life in lifetimes if math.isinf(life))
    assert 0 < survivors < 400
    assert all(life == 60.0 or math.isinf(life) for life in lifetimes)


# ----------------------------------------------------------------------
# policies


def test_reserved_quotas_split_proportionally():
    assert reserved_quotas(8, {"a": 1.0, "b": 1.0}) == {"a": 4, "b": 4}
    quotas = reserved_quotas(8, {"a": 1.0, "b": 1.0, "c": 2.0})
    assert sum(quotas.values()) == 8
    assert quotas["c"] == 4
    with pytest.raises(ValueError):
        reserved_quotas(4, {"a": 0.0})


def test_make_policy_names():
    weights = {"tenant0": 1.0}
    assert isinstance(make_policy("fifo", weights, 4), FifoPolicy)
    assert isinstance(make_policy("fair", weights, 4), FairSharePolicy)
    assert isinstance(make_policy("quota", weights, 4),
                      ReservedQuotaPolicy)
    with pytest.raises(ValueError):
        make_policy("lottery", weights, 4)


def test_fifo_respects_arrival_order_with_head_of_line_blocking():
    pool = LeasePool(2, 8)
    policy = FifoPolicy()
    queue = [request("a", "t0", r=1), request("b", "t0", r=1),
             request("c", "t1", r=1)]
    # Capacity admits only two 1R jobs: FIFO picks the two oldest.
    picked = policy.select(queue, pool, 0.0)
    assert [r.job_id for r in picked] == ["a", "b"]
    # A head job that does not fit blocks everything behind it.
    blocked = [request("big", "t0", r=3), request("small", "t1", r=1)]
    assert policy.select(blocked, pool, 0.0) == []


def test_fair_share_never_starves_light_tenants():
    """A tenant flooding the queue cannot lock the others out: once it has
    consumed anything, every other tenant's next job overtakes its backlog.
    """
    pool = LeasePool(1, 4)
    policy = FairSharePolicy({"hog": 1.0, "b": 1.0, "c": 1.0})
    queue = [request(f"hog{i}", "hog", arrival=float(i)) for i in range(10)]
    queue += [request("b0", "b", arrival=50.0),
              request("c0", "c", arrival=51.0)]
    order = []
    now = 100.0
    while queue:
        picked = policy.select(queue, pool, now)
        assert picked, "fair share deadlocked"
        for req in picked:
            queue.remove(req)
            pool.lease(req.job_id, req.tenant, req.num_reserved,
                       req.num_transient, now)
        now += 60.0
        for job_id in pool.active_jobs():
            pool.release_job(job_id, now)
        order.extend(r.job_id for r in picked)
    # b and c run right after the hog's first job, not after its backlog.
    assert set(order[:3]) == {"hog0", "b0", "c0"}


def test_quota_policy_never_crosses_reserved_partitions():
    pool = LeasePool(4, 16)
    policy = ReservedQuotaPolicy({"a": 2, "b": 2})
    queue = [request("a1", "a"), request("a2", "a"), request("a3", "a"),
             request("b1", "b")]
    picked = policy.select(queue, pool, 0.0)
    # a3 is over a's quota and must not take b's idle partition; b1 is not
    # blocked behind it.
    assert [r.job_id for r in picked] == ["a1", "a2", "b1"]
    for req in picked:
        pool.lease(req.job_id, req.tenant, req.num_reserved,
                   req.num_transient, 0.0)
    assert pool.reserved_in_use("a") == 2
    assert pool.reserved_in_use("b") == 1
    assert policy.select([queue[2]], pool, 1.0) == []
    # Capacity frees but the partition is still full: a3 keeps waiting.
    pool.release_job("b1", 2.0)
    assert policy.select([queue[2]], pool, 3.0) == []
    pool.release_job("a1", 4.0)
    assert [r.job_id
            for r in policy.select([queue[2]], pool, 5.0)] == ["a3"]
    with pytest.raises(ValueError):
        policy.select([request("x", "unknown")], pool, 0.0)


# ----------------------------------------------------------------------
# lease pool and correlated waves


def test_lease_pool_is_all_or_nothing_and_namespaced():
    pool = LeasePool(2, 8)
    pool.lease("j1", "a", 1, 4, 0.0)
    with pytest.raises(ResourceError):
        pool.lease("j1", "a", 1, 4, 0.0)       # double lease
    with pytest.raises(ResourceError):
        pool.lease("j2", "b", 2, 8, 0.0)       # insufficient capacity
    assert pool.reserved_free == 1 and pool.transient_free == 4
    assert pool.container_seconds(job_id="j1", now=10.0) == \
        pytest.approx(50.0)
    assert pool.container_seconds(tenant="b", now=10.0) == 0.0
    assert pool.release_job("j1", 20.0) == pytest.approx(100.0)
    assert pool.fits(2, 8)


def test_wave_revokes_colocated_jobs_atomically():
    pool = LeasePool(4, 16)
    pool.lease("j1", "a", 1, 6, 0.0)
    pool.lease("j2", "b", 1, 4, 0.0)
    rng = np.random.default_rng(0)
    revoked = pool.revoke_wave(100.0, 1.0, rng)
    # One call, one timestamp, every co-located tenant hit.
    assert revoked == {"j1": 6, "j2": 4}
    hit = [lease for lease in pool.history if lease.revoked_at is not None]
    assert len(hit) == 10
    assert all(lease.revoked_at == 100.0 for lease in hit)
    assert {lease.kind for lease in hit} == {ContainerKind.TRANSIENT}
    # Replacements are granted in the same tick: capacity unchanged.
    assert pool.transient_free == 16 - 10
    assert pool.reserved_free == 4 - 2
    replacements = [lease for lease in pool.history
                    if lease.granted_at == 100.0 and lease.active]
    assert len(replacements) == 10
    assert pool.waves == [(100.0, 1.0, {"j1": 6, "j2": 4})]
    # Reserved leases are never touched by waves.
    assert pool.reserved_in_use("a") == 1 and pool.reserved_in_use("b") == 1


def _replay_container_seconds(pool, now, job_id=None, tenant=None):
    """Recompute container-seconds from the full lease history — the
    O(history) scan the O(1) counters replaced. Any slot-recycling bug
    that aliases accounting shows up as a mismatch against this."""
    total = 0.0
    for lease in pool.history:
        if job_id is not None and lease.job_id != job_id:
            continue
        if tenant is not None and lease.tenant != tenant:
            continue
        until = lease.released_at if lease.released_at is not None else now
        total += until - lease.granted_at
    return total


def _check_slot_invariants(pool):
    """Every active lease owns exactly the slot that points back at it,
    and the free lists partition the remaining slot space."""
    occupied = {}
    for job_id in pool.active_jobs():
        for lease in pool._active[job_id]:
            assert pool.slot_lease[lease.slot] is lease
            assert lease.slot not in occupied, \
                f"slot {lease.slot} aliased by two active leases"
            occupied[lease.slot] = lease
    free = set(pool._free_reserved) | set(pool._free_transient)
    assert not (free & set(occupied)), "free list overlaps occupied slots"
    assert len(free) + len(occupied) == pool.num_reserved + pool.num_transient
    assert len(pool._free_reserved) + pool._used_reserved == pool.num_reserved
    assert len(pool._free_transient) + pool._used_transient == \
        pool.num_transient


def test_slot_reuse_across_waves_never_aliases_accounting():
    """Evict, replace in-slot, evict the replacement: three generations of
    leases share one slot index, and the recycled slot must never leak one
    generation's container-seconds into another."""
    pool = LeasePool(1, 2)
    pool.lease("j1", "a", 1, 2, 0.0)
    rng = np.random.default_rng(7)
    first_slots = sorted(lease.slot for lease in pool._active["j1"]
                         if lease.kind is ContainerKind.TRANSIENT)

    pool.revoke_wave(10.0, 1.0, rng)       # generation 1 dies at t=10
    pool.revoke_wave(25.0, 1.0, rng)       # its replacement dies at t=25
    _check_slot_invariants(pool)

    # Replacements inherited the revoked slots: the fleet's slot occupancy
    # is unchanged across both waves.
    live_slots = sorted(lease.slot for lease in pool._active["j1"]
                        if lease.kind is ContainerKind.TRANSIENT)
    assert live_slots == first_slots
    generations = [lease for lease in pool.history
                   if lease.kind is ContainerKind.TRANSIENT]
    assert len(generations) == 6           # 2 slots x 3 generations
    assert {lease.slot for lease in generations} == set(first_slots)

    # Each generation accrued only its own lifetime; the O(1) counters
    # agree with a full history replay at several probe times.
    for now in (25.0, 40.0):
        assert pool.container_seconds(job_id="j1", now=now) == \
            pytest.approx(_replay_container_seconds(pool, now))
        assert pool.container_seconds(tenant="a", now=now) == \
            pytest.approx(_replay_container_seconds(pool, now, tenant="a"))
    # 1 reserved + 2 transient slots, each continuously held 0..40.
    assert pool.container_seconds(job_id="j1", now=40.0) == \
        pytest.approx(3 * 40.0)


def test_released_slot_reuse_keeps_jobs_accounting_separate():
    """A slot freed by one job's release and re-leased to another job
    must start accruing from zero for the new job, and the old job's
    total must stay frozen."""
    pool = LeasePool(1, 1)
    pool.lease("j1", "a", 1, 1, 0.0)
    rng = np.random.default_rng(3)
    pool.revoke_wave(5.0, 1.0, rng)        # churn the slot once first
    total_j1 = pool.release_job("j1", 20.0)
    assert total_j1 == pytest.approx(2 * 20.0)
    _check_slot_invariants(pool)

    pool.lease("j2", "b", 1, 1, 30.0)      # recycles j1's exact slots
    _check_slot_invariants(pool)
    assert pool.container_seconds(job_id="j2", now=30.0) == 0.0
    assert pool.container_seconds(job_id="j2", now=45.0) == \
        pytest.approx(2 * 15.0)
    # j1's history is frozen; j2's accrual never bleeds into it.
    assert pool.container_seconds(job_id="j1", now=45.0) == \
        pytest.approx(total_j1)
    assert pool.container_seconds(tenant="a", now=45.0) == \
        pytest.approx(total_j1)
    assert pool.container_seconds(now=45.0) == \
        pytest.approx(total_j1 + 2 * 15.0)


# ----------------------------------------------------------------------
# the cluster loop (stub executors)


def stub_config(**overrides):
    fields = dict(num_reserved=8, num_transient=48, num_jobs=40, seed=11,
                  eviction="high", arrival=ArrivalConfig(load=1.0))
    fields.update(overrides)
    return TenancyConfig(**fields)


def test_fifo_cluster_starts_jobs_in_arrival_order():
    result = MultiTenantCluster(stub_config(policy="fifo"),
                                stub_executor).run()
    starts = [r.start_time for r in result.records]  # arrival order
    assert starts == sorted(starts)
    assert all(r.finish_time is not None for r in result.records)
    assert all(r.queue_seconds >= 0.0 for r in result.records)


def test_quota_cluster_never_exceeds_tenant_partitions():
    config = stub_config(policy="quota")
    cluster = MultiTenantCluster(config, stub_executor)
    result = cluster.run()
    quotas = cluster.policy.quotas
    # Replay the lease history: at no instant does a tenant's concurrent
    # reserved-lease count exceed its quota.
    for tenant, quota in quotas.items():
        deltas = []
        for lease in result.pool.history:
            if lease.tenant != tenant \
                    or lease.kind is not ContainerKind.RESERVED:
                continue
            deltas.append((lease.granted_at, 1))
            if lease.released_at is not None:
                deltas.append((lease.released_at, -1))
        level = peak = 0
        for _, delta in sorted(deltas, key=lambda d: (d[0], d[1])):
            level += delta
            peak = max(peak, level)
        assert peak <= quota


def test_waves_hit_multiple_jobs_in_one_tick():
    result = MultiTenantCluster(stub_config(policy="fifo"),
                                stub_executor).run()
    delivered = [revoked for _, _, revoked in result.pool.waves if revoked]
    assert delivered, "no wave hit a running job"
    assert any(len(revoked) >= 2 for revoked in delivered), \
        "no wave ever hit co-located jobs together"
    # Cluster-level accounting reconciles with the pool's wave log.
    assert sum(r.containers_revoked for r in result.records) == \
        sum(sum(rev.values()) for _, _, rev in result.pool.waves)


def test_cluster_runs_are_bit_identical_per_seed():
    rows = []
    for _ in range(2):
        result = MultiTenantCluster(stub_config(policy="fair"),
                                    stub_executor).run()
        rows.append([(r.job_id, r.tenant, r.start_time, r.finish_time,
                      r.containers_revoked) for r in result.records])
    assert rows[0] == rows[1]


def test_cluster_rejects_oversized_and_overquota_jobs():
    with pytest.raises(SimulationError):
        MultiTenantCluster(stub_config(num_transient=4),
                           stub_executor).run()
    # Four tenants over 2 reserved slots: some quota is 0, so the mlr
    # template (2 reserved) can never start under the quota policy.
    with pytest.raises(SimulationError):
        MultiTenantCluster(stub_config(policy="quota", num_reserved=2),
                           stub_executor).run()


def test_executor_outcome_count_is_checked():
    def broken(batch):
        return []

    with pytest.raises(SimulationError):
        MultiTenantCluster(stub_config(policy="fifo"), broken).run()


def test_reserve_mode_validated():
    with pytest.raises(ValueError, match="reserve mode"):
        stub_config(reserve="banana")


def test_fixed_reserve_never_resizes():
    cluster = MultiTenantCluster(stub_config(policy="fair"), stub_executor)
    result = cluster.run()
    assert cluster.controller is None
    assert result.pool.resizes == []
    assert (result.pool.num_reserved, result.pool.num_transient) == (8, 48)


def test_elastic_reserve_resizes_and_conserves_capacity():
    config = stub_config(policy="fair", reserve="elastic",
                         arrival=ArrivalConfig(load=1.3))
    cluster = MultiTenantCluster(config, stub_executor)
    result = cluster.run()
    assert cluster.controller is not None
    assert result.pool.resizes == cluster.controller.decisions
    assert result.pool.resizes, "elastic run never rebalanced"
    # Conversions move slots between tiers, never create or destroy them.
    assert result.pool.num_reserved + result.pool.num_transient == 8 + 48
    assert all(r.finish_time is not None for r in result.records)


def test_elastic_runs_are_bit_identical_per_seed():
    rows = []
    for _ in range(2):
        result = MultiTenantCluster(
            stub_config(policy="fair", reserve="elastic",
                        arrival=ArrivalConfig(load=1.3)),
            stub_executor).run()
        rows.append([(r.job_id, r.start_time, r.finish_time)
                     for r in result.records] + result.pool.resizes)
    assert rows[0] == rows[1]
