"""Warm-pool, build-cache, and jobfile-backend tests for the runner.

The parity tests here run pools under ``mp_context="fork"`` — start
method changes where workers come from, never what they compute, and
fork keeps the 8-worker matrix cells fast. The default spawn context is
covered by :func:`test_default_spawn_pool_is_bit_identical` (and by the
workers>1 tests in test_runner.py / test_multitenant.py).
"""

import dataclasses
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.bench.experiments import eviction_rate_sweep
from repro.bench.multitenant import (cell_summary, make_cell_config,
                                     run_multitenant_cell)
from repro.bench.runner import (JobFileBackend, ResultCache, RunSpec,
                                SweepRunner, _BuildCache, build_cache,
                                canonical_result_json, code_fingerprint,
                                execute_spec, run_specs, spec_from_dict,
                                spec_to_dict, sweep_worker_loop, PoolSpec)
from repro.trace import EvictionRate

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

TINY = dict(scale=0.02, seed=3, eviction="high")


def tiny_spec(**overrides):
    fields = dict(TINY)
    fields.update(overrides)
    return RunSpec(workload="mr", engine="pado", **fields)


def result_rows(results):
    return [canonical_result_json(r) for r in results]


# ----------------------------------------------------------------------
# warm pool lifecycle


def test_warm_pool_persists_across_runs_and_stays_bit_identical():
    specs = [tiny_spec(seed=s) for s in (1, 2, 3, 4)]
    serial = result_rows(run_specs(specs))
    with SweepRunner(workers=2, mp_context="fork") as runner:
        first = runner.run(specs)
        second = runner.run(specs)
        assert runner.stats.pools_started == 1       # one pool, two runs
        assert runner.stats.batches == 2
        assert runner.stats.chunks >= 2
        assert runner._pool is not None
    assert runner._pool is None                      # context exit closed it
    assert result_rows(first) == serial
    assert result_rows(second) == serial


def test_cold_pool_restarts_every_run():
    specs = [tiny_spec(seed=s) for s in (1, 2)]
    with SweepRunner(workers=2, warm=False, mp_context="fork") as runner:
        runner.run(specs)
        assert runner.stats.pools_started == 1
        assert runner._pool is None                  # torn down after run
        runner.run([tiny_spec(seed=9)])   # even one spec pays a pool
        runner.run(specs)
        assert runner.stats.pools_started == 3


def test_closed_runner_restarts_a_fresh_pool():
    specs = [tiny_spec(seed=s) for s in (1, 2)]
    runner = SweepRunner(workers=2, mp_context="fork")
    try:
        before = result_rows(runner.run(specs))
        runner.close()
        assert runner._pool is None
        after = result_rows(runner.run(specs))
        assert runner.stats.pools_started == 2
        assert before == after
    finally:
        runner.close()


def test_default_spawn_pool_is_bit_identical():
    specs = [tiny_spec(seed=s) for s in (1, 2)]
    serial = result_rows(run_specs(specs))
    with SweepRunner(workers=2) as runner:           # DEFAULT_MP_CONTEXT
        pooled = runner.run(specs)
        assert runner.stats.pool_startup_seconds > 0.0
    assert result_rows(pooled) == serial


def test_runner_stats_timing_and_dict():
    runner = SweepRunner()
    runner.run([tiny_spec(seed=1), tiny_spec(seed=1)])
    stats = runner.stats
    assert stats.wall_seconds > 0.0
    assert stats.exec_seconds > 0.0
    assert stats.mean_spec_seconds > 0.0
    data = stats.to_dict()
    assert data["simulated"] == 1 and data["deduplicated"] == 1
    assert data["mean_spec_seconds"] == stats.mean_spec_seconds
    # the historical prefix is load-bearing (CLI tests grep for it)
    assert str(stats).startswith("1 simulated, 0 cached, 1 deduplicated")


def test_content_hash_computed_once_per_spec_per_run(tmp_path, monkeypatch):
    calls = []
    original = RunSpec.content_hash

    def counting(self):
        calls.append(self)
        return original(self)

    monkeypatch.setattr(RunSpec, "content_hash", counting)
    runner = SweepRunner(cache_dir=tmp_path)
    runner.run([tiny_spec(seed=1), tiny_spec(seed=1), tiny_spec(seed=2)])
    # one hash per spec in the probe loop; cache get/put and the fill
    # loop all reuse the carried key
    assert len(calls) == 3


# ----------------------------------------------------------------------
# bit-identity matrices: mtsweep cell and fig6 cell


POOL_MATRIX = [(2, True), (8, True), (8, False)]


@pytest.mark.parametrize("workers,warm", POOL_MATRIX)
def test_mtsweep_cell_bit_identical_across_pools(workers, warm):
    config = make_cell_config("fair", 0.8, "medium", num_jobs=8, seed=5)
    serial = run_multitenant_cell(config, runner=SweepRunner(workers=0))
    with SweepRunner(workers=workers, warm=warm,
                     mp_context="fork") as runner:
        pooled = run_multitenant_cell(config, runner=runner)
    assert cell_summary(config, serial) == cell_summary(config, pooled)


@pytest.mark.parametrize("workers,warm", POOL_MATRIX)
def test_fig6_cell_bit_identical_across_pools(workers, warm):
    kwargs = dict(scale=0.05, rates=(EvictionRate.NONE, EvictionRate.HIGH),
                  engines=["pado", "spark"])
    serial = eviction_rate_sweep("mlr", **kwargs)
    with SweepRunner(workers=workers, warm=warm,
                     mp_context="fork") as runner:
        pooled = eviction_rate_sweep("mlr", runner=runner, **kwargs)
    assert serial == pooled


# ----------------------------------------------------------------------
# per-process build cache


def test_build_cache_memoizes_by_structural_key():
    cache = build_cache()
    cache.clear()
    base = tiny_spec(seed=1)
    reseeded = dataclasses.replace(base, seed=99, time_limit_minutes=60.0)
    # seed/time-limit are not structural: everything is shared
    assert cache.program_for(base) is cache.program_for(reseeded)
    assert cache.engine_for(base) is cache.engine_for(reseeded)
    assert cache.cluster_for(base) is cache.cluster_for(reseeded)
    # structural changes miss
    assert cache.program_for(dataclasses.replace(base, scale=0.05)) \
        is not cache.program_for(base)
    assert cache.program_for(dataclasses.replace(base, workload="mlr")) \
        is not cache.program_for(base)
    assert cache.cluster_for(dataclasses.replace(base, eviction="none")) \
        is not cache.cluster_for(base)
    assert cache.cluster_for(dataclasses.replace(base, num_transient=8)) \
        is not cache.cluster_for(base)
    waved = dataclasses.replace(base, eviction="none",
                                eviction_waves=((60.0, 0.5),))
    assert cache.cluster_for(waved) is not cache.cluster_for(base)
    pooled = dataclasses.replace(
        base, transient_pools=(PoolSpec("short", 4, 90.0),))
    assert cache.cluster_for(pooled) is not cache.cluster_for(base)
    configured = RunSpec.make("mr", "pado",
                              engine_options={"enable_caching": False},
                              **TINY)
    assert cache.engine_for(configured) is not cache.engine_for(base)
    assert cache.engine_for(configured) is cache.engine_for(
        dataclasses.replace(configured, seed=7))
    cache.clear()


def test_build_cache_never_reuses_policy_engines():
    """A ``scheduling_policy`` option configures a *stateful* policy
    instance (round-robin cursor), so those engines rebuild every run —
    reuse would leak scheduler state between simulations."""
    cache = build_cache()
    spec = RunSpec.make("mr", "pado",
                        engine_options={"scheduling_policy":
                                        "lifetime-aware"}, **TINY)
    assert cache.engine_for(spec) is not cache.engine_for(spec)
    # and execution through the cache stays deterministic
    assert canonical_result_json(execute_spec(spec)) == \
        canonical_result_json(execute_spec(spec))


def test_build_cache_capacity_is_bounded():
    cache = _BuildCache(capacity=2)
    for scale in (0.02, 0.03, 0.04):
        cache.program_for(tiny_spec(scale=scale))
    assert len(cache._programs) == 2


# ----------------------------------------------------------------------
# result-cache memory layer


def test_result_cache_memory_layer_skips_disk(tmp_path, monkeypatch):
    spec = tiny_spec(seed=1)
    result = execute_spec(spec)
    writer = ResultCache(tmp_path)
    assert writer.put(spec, result)
    assert writer.get(spec) == result            # put seeded the LRU
    assert writer.memory_hits == 1 and writer.disk_hits == 0

    reader = ResultCache(tmp_path)
    assert reader.get(spec) == result            # first probe hits disk
    assert reader.disk_hits == 1

    def no_reads(*args, **kwargs):
        raise AssertionError("memory-cached probe touched the disk")

    monkeypatch.setattr(pathlib.Path, "read_text", no_reads)
    assert reader.get(spec) == result            # second probe: memory
    assert reader.memory_hits == 1


def test_result_cache_memory_layer_evicts_lru(tmp_path):
    cache = ResultCache(tmp_path, memory_entries=1)
    first, second = tiny_spec(seed=1), tiny_spec(seed=2)
    cache.put(first, execute_spec(first))
    cache.put(second, execute_spec(second))      # evicts the first entry
    assert cache.get(second) is not None
    assert cache.memory_hits == 1
    assert cache.get(first) is not None          # falls back to disk
    assert cache.disk_hits == 1


# ----------------------------------------------------------------------
# jobfile backend


def test_spec_json_round_trip_preserves_content_hash():
    import json
    specs = [
        tiny_spec(),
        RunSpec.make("mlr", "pado",
                     engine_options={"enable_caching": False,
                                     "aggregation_max_tasks": 4},
                     transient_pools=[PoolSpec("short", 4, 90.0)]),
        tiny_spec(eviction="none",
                  eviction_waves=((60.0, 0.5), (300.25, 0.4))),
    ]
    for spec in specs:
        wire = json.loads(json.dumps(spec_to_dict(spec)))
        rebuilt = spec_from_dict(wire)
        assert rebuilt == spec
        assert rebuilt.content_hash() == spec.content_hash()


def test_jobfile_runner_drains_queue_without_workers(tmp_path):
    specs = [tiny_spec(seed=s) for s in (1, 2, 3)]
    serial = result_rows(run_specs(specs))
    with SweepRunner(backend="jobfile", job_dir=tmp_path / "jobs",
                     chunk_size=2) as runner:
        results = runner.run(specs)
        assert runner.stats.chunks == 2
    assert result_rows(results) == serial
    # nothing left behind, and a second runner replays from the cache
    backend = JobFileBackend(tmp_path / "jobs")
    assert not list(backend.queue_dir.iterdir())
    assert not list(backend.claimed_dir.iterdir())
    with SweepRunner(backend="jobfile", job_dir=tmp_path / "jobs") as again:
        replay = again.run(specs)
        assert again.stats.simulated == 0
        assert again.stats.cache_hits == 3
    assert result_rows(replay) == serial


def test_jobfile_requires_job_dir():
    with pytest.raises(ValueError):
        SweepRunner(backend="jobfile")
    with pytest.raises(ValueError):
        SweepRunner(job_dir="/tmp/somewhere")     # only valid with jobfile


def test_jobfile_stale_claims_are_reclaimed(tmp_path):
    backend = JobFileBackend(tmp_path / "jobs")
    backend.enqueue_chunk([tiny_spec(seed=1)])
    claimed = backend.claim()
    assert claimed is not None
    assert backend.claim() is None                # exactly one claimant wins
    os.utime(claimed, (0, 0))                     # crashed long ago
    assert backend.reclaim_stale(60.0) == 1
    reclaimed = backend.claim()
    assert reclaimed is not None
    assert backend.load_chunk(reclaimed)[0] == tiny_spec(seed=1)


def test_sweep_worker_loop_processes_enqueued_chunks(tmp_path):
    backend = JobFileBackend(tmp_path / "jobs")
    specs = [tiny_spec(seed=s) for s in (1, 2, 3)]
    backend.enqueue_chunk(specs[:2])
    backend.enqueue_chunk(specs[2:])
    assert sweep_worker_loop(tmp_path / "jobs", once=True) == 2
    cache = ResultCache(backend.cache_dir)
    assert all(cache.get(spec) is not None for spec in specs)


def test_jobfile_crash_recovery_completes_from_cache(tmp_path):
    """Kill a sweep-worker subprocess mid-chunk; a rerun finishes only
    what the dead worker had not committed, and the final results are
    bit-identical to serial."""
    job_dir = tmp_path / "jobs"
    backend = JobFileBackend(job_dir)
    specs = [RunSpec(workload="mr", engine="pado", scale=0.3, seed=s,
                     eviction="high") for s in (1, 2, 3)]
    backend.enqueue_chunk(specs)                  # one chunk, ~0.6 s/spec

    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    worker = subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep-worker", str(job_dir),
         "--once"], env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        # SIGKILL as soon as the first committed result appears — the
        # worker is then mid-chunk with two specs still unfinished.
        result_dir = backend.cache_dir / code_fingerprint()
        deadline = time.time() + 60.0
        while time.time() < deadline:
            if result_dir.is_dir() and any(result_dir.glob("*.json")):
                break
            if worker.poll() is not None:
                break
            time.sleep(0.02)
        worker.kill()
    finally:
        worker.wait()

    committed = (len(list(result_dir.glob("*.json")))
                 if result_dir.is_dir() else 0)
    assert committed >= 1, "worker never committed a result"
    if committed < len(specs):
        # died mid-chunk: the claim file is still parked in claimed/
        assert list(backend.claimed_dir.glob("chunk-*.json"))

    # Recovery: reclaim the orphaned chunk immediately and finish it.
    # (claim_timeout=-1 treats every parked claim as stale.)
    sweep_worker_loop(job_dir, once=True, claim_timeout=-1.0)
    cache = ResultCache(backend.cache_dir)
    assert all(cache.get(spec) is not None for spec in specs)

    with SweepRunner(backend="jobfile", job_dir=job_dir) as runner:
        recovered = runner.run(specs)
        assert runner.stats.cache_hits == len(specs)
        assert runner.stats.simulated == 0
    assert result_rows(recovered) == result_rows(run_specs(specs))
