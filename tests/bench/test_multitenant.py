"""Tests for the multi-tenant sweep wiring (repro.bench.multitenant)."""

import json

from repro.bench.multitenant import (cell_summary, jct_table,
                                     make_cell_config, multitenant_sweep,
                                     run_multitenant_cell, spec_for_job)
from repro.bench.runner import SweepRunner, build_cluster
from repro.cluster.tenancy import JobRequest
from repro.obs import JobTag, collecting
from repro.trace.models import NoEvictionModel, WaveLifetimeModel

TINY = dict(num_jobs=8, seed=5)


def sample_request(**overrides):
    fields = dict(job_id="job0000", tenant="tenant0", arrival_time=0.0,
                  workload="mr", engine="pado", scale=0.02, num_reserved=1,
                  num_transient=6, seed=17, nominal_minutes=1.2)
    fields.update(overrides)
    return JobRequest(**fields)


def record_rows(result):
    return [(r.job_id, r.tenant, r.start_time, r.finish_time, r.completed,
             r.evictions, r.containers_revoked) for r in result.records]


def test_spec_for_job_pins_waves_to_the_inner_cluster():
    waves = ((120.0, 0.5), (600.0, 0.3))
    spec = spec_for_job(sample_request(), waves, 150.0)
    assert spec.eviction == "none"
    assert spec.eviction_waves == waves
    model = build_cluster(spec).lifetime_model()
    assert isinstance(model, WaveLifetimeModel)
    assert model.waves == waves
    # No waves in the job's window: a plain eviction-free cluster.
    quiet = spec_for_job(sample_request(), (), 150.0)
    assert quiet.eviction_waves is None
    assert isinstance(build_cluster(quiet).lifetime_model(),
                      NoEvictionModel)


def test_cell_is_bit_identical_across_worker_counts():
    config = make_cell_config("fair", 0.8, "medium", **TINY)
    serial = run_multitenant_cell(config, runner=SweepRunner(workers=0))
    with SweepRunner(workers=3) as runner:
        parallel = run_multitenant_cell(config, runner=runner)
    assert record_rows(serial) == record_rows(parallel)


def test_warm_cache_replays_cell_without_simulating(tmp_path):
    config = make_cell_config("fifo", 0.8, "medium", **TINY)
    cold = SweepRunner(cache_dir=tmp_path)
    first = run_multitenant_cell(config, runner=cold)
    assert cold.stats.simulated == config.num_jobs
    warm = SweepRunner(cache_dir=tmp_path)
    second = run_multitenant_cell(config, runner=warm)
    assert warm.stats.simulated == 0
    assert warm.stats.cache_hits == config.num_jobs
    assert record_rows(first) == record_rows(second)


def test_cell_tags_job_traces_when_collecting():
    config = make_cell_config("fifo", 0.6, "low", num_jobs=4, seed=3)
    with collecting() as collector:
        result = run_multitenant_cell(config)
    tags = {}
    for label, tracer in collector.runs:
        for event in tracer.events:
            if isinstance(event, JobTag):
                tags[event.job] = (label, event)
    assert set(tags) == {r.job_id for r in result.records}
    for record in result.records:
        label, event = tags[record.job_id]
        assert label == f"{record.tenant}/{record.job_id}"
        assert event.tenant == record.tenant
        assert event.time == record.start_time
        assert event.queue_seconds == record.queue_seconds


def test_cell_summary_is_json_ready():
    config = make_cell_config("quota", 0.8, "medium", **TINY)
    result = run_multitenant_cell(config)
    summary = cell_summary(config, result)
    reloaded = json.loads(json.dumps(summary))
    assert reloaded["policy"] == "quota"
    assert set(reloaded["tenants"]) >= {"all"}
    stats = reloaded["tenants"]["all"]
    assert stats["count"] == config.num_jobs
    assert stats["p99_jct_minutes"] >= stats["p50_jct_minutes"]
    table = jct_table(result)
    assert "p99" in table and "all" in table


def test_multitenant_sweep_covers_requested_cells(tmp_path):
    rows = multitenant_sweep(policies=("fifo", "fair"), loads=(0.6,),
                             evictions=("medium",), num_jobs=6, seed=4,
                             cache=tmp_path)
    assert [(r["policy"], r["load"], r["eviction"]) for r in rows] == \
        [("fifo", 0.6, "medium"), ("fair", 0.6, "medium")]
