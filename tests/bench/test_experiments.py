"""Unit tests for the experiment registry (fast, tiny scales)."""

import pytest

from repro.bench.experiments import (SweepRow, completed,
                                     eviction_rate_sweep,
                                     fig1_lifetime_cdfs, jct_of,
                                     make_workload, run_one,
                                     tab1_lifetime_percentiles,
                                     tab2_collected_memory)
from repro.core.runtime.engine import PadoEngine
from repro.engines.base import ClusterConfig
from repro.trace import EvictionRate


def test_make_workload_names():
    for name in ("als", "mlr", "mr"):
        program = make_workload(name, scale=0.05)
        assert program.name == name
    with pytest.raises(ValueError):
        make_workload("sort")


def test_run_one_respects_time_limit():
    result = run_one(PadoEngine(), make_workload("mr", scale=0.05),
                     ClusterConfig(num_reserved=2, num_transient=4),
                     time_limit_minutes=0.01)
    assert not result.completed


def test_sweep_rows_structure():
    rows = eviction_rate_sweep(
        "mr", scale=0.02, rates=(EvictionRate.NONE,),
        engines=[PadoEngine()])
    assert len(rows) == 1
    row = rows[0]
    assert isinstance(row, SweepRow)
    assert row.engine == "pado"
    assert row.eviction == "none"
    assert row.completed
    assert len(row.as_tuple()) == 7


def test_jct_and_completed_lookup():
    rows = [SweepRow("mr", "none", "pado", 1.5, True, 0.0, 0)]
    assert jct_of(rows, "none", "pado") == 1.5
    assert completed(rows, "none", "pado")
    with pytest.raises(KeyError):
        jct_of(rows, "high", "pado")


def test_fig1_curves_are_probabilities():
    curves = fig1_lifetime_cdfs(seed=1)
    assert len(curves) == 3
    for xs, ys in curves.values():
        assert len(xs) == len(ys)
        assert all(0.0 <= y <= 1.0 for y in ys)


def test_tab1_rows_cover_all_anchors():
    rows = tab1_lifetime_percentiles(seed=1)
    assert len(rows) == 9
    assert {(m, q) for m, q, _, _ in rows} == {
        (m, q) for m in ("0.1%", "1%", "5%") for q in (10, 50, 90)}


def test_tab2_rows():
    rows = tab2_collected_memory(seed=1)
    assert [m for m, _, _ in rows] == ["baseline", "0.1%", "1%", "5%"]
    for _, measured, paper in rows:
        assert 0.0 < measured < 1.0
        assert 0.0 < paper < 1.0


def test_averaged_sweep_statistics():
    from repro.bench.experiments import AveragedRow, averaged_eviction_sweep
    rows = averaged_eviction_sweep("mr", scale=0.05, seeds=(1, 2, 3),
                                   rates=(EvictionRate.HIGH,),
                                   engines=[PadoEngine()])
    assert len(rows) == 1
    row = rows[0]
    assert isinstance(row, AveragedRow)
    assert row.total_runs == 3
    assert 0 <= row.completed_runs <= 3
    assert row.std_jct_minutes >= 0.0
    assert "±" in row.as_tuple()[3]


def test_averaged_sweep_varies_with_seed():
    from repro.bench.experiments import averaged_eviction_sweep
    rows = averaged_eviction_sweep("mr", scale=0.05, seeds=(1, 2, 3, 4),
                                   rates=(EvictionRate.HIGH,),
                                   engines=[PadoEngine()])
    # Under evictions, different seeds give different schedules; the std
    # captures that spread (it may be tiny but the field must be computed).
    assert rows[0].mean_jct_minutes > 0
