"""Unit tests for the table/CDF renderers."""

from repro.bench.tables import (render_cdf_series, render_table, speedup,
                                _interp)


def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 1.5], ["bbbb", 22.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    # Columns align: the separator matches the header width.
    assert len(lines[1]) == len(lines[0])


def test_render_table_with_title():
    text = render_table(["x"], [[1]], title="Table 42")
    assert text.splitlines()[0] == "Table 42"


def test_float_formatting():
    text = render_table(["v"], [[123.456], [1.23456]])
    assert "123" in text
    assert "1.23" in text


def test_render_cdf_series():
    series = {"a": ([0.0, 10.0], [0.0, 1.0])}
    text = render_cdf_series(series, points=[0, 5, 10])
    assert "50.0%" in text
    assert "100.0%" in text


def test_interp_boundaries():
    xs, ys = [1.0, 2.0, 4.0], [0.1, 0.5, 0.9]
    assert _interp(0.5, xs, ys) == 0.1     # below range clamps
    assert _interp(5.0, xs, ys) == 0.9     # above range clamps
    assert _interp(3.0, xs, ys) == 0.7     # linear between
    assert _interp(1.0, [], []) == 0.0     # empty series


def test_speedup():
    assert speedup(10.0, 5.0) == "2.0x"
    assert speedup(1.0, 0.0) == "inf"
