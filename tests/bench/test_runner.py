"""Tests for the parallel cached experiment runner (repro.bench.runner)."""

import dataclasses
import json

import pytest

from repro.bench.experiments import averaged_eviction_sweep
from repro.bench.runner import (PoolSpec, ResultCache, RunSpec, SweepRunner,
                                build_cluster, build_engine,
                                canonical_result_json, code_fingerprint,
                                engine_spec, execute_spec, result_from_dict,
                                result_to_dict, run_specs)
from repro.core.runtime.engine import PadoEngine
from repro.core.runtime.master import PadoRuntimeConfig
from repro.core.runtime.scheduler import LifetimeAwarePolicy
from repro.engines.base import JobResult
from repro.engines.spark import SparkEngine
from repro.engines.spark_checkpoint import SparkCheckpointEngine
from repro.trace import EvictionRate

TINY = dict(scale=0.02, seed=3, eviction="high")


def tiny_spec(engine="pado", **overrides):
    fields = dict(TINY)
    fields.update(overrides)
    return RunSpec(workload="mr", engine=engine, **fields)


# ----------------------------------------------------------------------
# RunSpec: hashing and declarative construction


def test_content_hash_is_stable_and_sensitive():
    assert tiny_spec().content_hash() == tiny_spec().content_hash()
    assert tiny_spec().content_hash() != tiny_spec(seed=4).content_hash()
    assert tiny_spec().content_hash() != tiny_spec(
        engine="spark").content_hash()
    assert tiny_spec().content_hash() != tiny_spec(
        eviction="none").content_hash()


def test_make_normalizes_option_order():
    a = RunSpec.make("mr", "pado",
                     engine_options={"enable_caching": False,
                                     "aggregation_max_tasks": 4})
    b = RunSpec.make("mr", "pado",
                     engine_options={"aggregation_max_tasks": 4,
                                     "enable_caching": False})
    assert a == b
    assert a.content_hash() == b.content_hash()


def test_make_rejects_non_scalar_options():
    with pytest.raises(TypeError):
        RunSpec.make("mr", "pado", engine_options={"policy": object()})


def test_specs_are_picklable_and_hashable():
    import pickle
    spec = RunSpec.make("mlr", "pado",
                        engine_options={"enable_caching": False},
                        transient_pools=[PoolSpec("short", 4, 90.0)])
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert len({spec, spec}) == 1


# ----------------------------------------------------------------------
# engine/cluster reconstruction


def test_engine_spec_round_trips_configured_engines():
    engines = [
        PadoEngine(),
        PadoEngine(PadoRuntimeConfig(enable_caching=False,
                                     aggregation_max_tasks=8)),
        PadoEngine(PadoRuntimeConfig(
            scheduling_policy=LifetimeAwarePolicy())),
        SparkEngine(abort_on_fetch_failure=False),
        SparkCheckpointEngine(store_bandwidth_factor=0.5),
    ]
    for engine in engines:
        name, options = engine_spec(engine)
        rebuilt = build_engine(RunSpec.make("mr", name,
                                            engine_options=dict(options)))
        assert type(rebuilt) is type(engine)
        assert engine_spec(rebuilt) == (name, options)


def test_build_engine_rejects_unknown_names():
    with pytest.raises(ValueError):
        build_engine(tiny_spec(engine="flink"))
    with pytest.raises(ValueError):
        build_engine(RunSpec.make(
            "mr", "pado", engine_options={"scheduling_policy": "fifo"}))


def test_build_cluster_with_pools():
    spec = RunSpec.make("mlr", "pado",
                        transient_pools=[PoolSpec("short", 3, 90.0),
                                         PoolSpec("long", 5, 3600.0)])
    cluster = build_cluster(spec)
    assert cluster.effective_num_transient == 8
    assert cluster.transient_pools[0].name == "short"
    assert cluster.transient_pools[1].expected_lifetime == 3600.0


def test_build_cluster_eviction_rate():
    cluster = build_cluster(tiny_spec())
    assert cluster.eviction is EvictionRate.HIGH
    assert cluster.num_reserved == 5
    assert cluster.num_transient == 40


# ----------------------------------------------------------------------
# JobResult JSON round-trip


def test_result_round_trip_preserves_int_partition_keys():
    result = JobResult(engine="pado", workload="mr", completed=True,
                       jct_seconds=12.5, original_tasks=4,
                       launched_tasks=6, evictions=1,
                       outputs={"sink": {0: [1, 2], 3: [4]}},
                       extras={"note": "x"})
    data = json.loads(json.dumps(result_to_dict(result)))
    rebuilt = result_from_dict(data)
    assert rebuilt == result
    assert list(rebuilt.outputs["sink"]) == [0, 3]


def test_execute_spec_matches_direct_run():
    spec = tiny_spec()
    direct = execute_spec(spec)
    again = execute_spec(spec)
    assert canonical_result_json(direct) == canonical_result_json(again)
    assert direct.engine == "pado"


# ----------------------------------------------------------------------
# the runner: order, dedup, parallelism, caching


def test_results_come_back_in_spec_order():
    specs = [tiny_spec(seed=5), tiny_spec(seed=3), tiny_spec(seed=5)]
    runner = SweepRunner()
    results = runner.run(specs)
    assert [execute_spec(s).jct_seconds for s in specs] == \
        [r.jct_seconds for r in results]
    # identical specs are simulated once and share the result
    assert runner.stats.simulated == 2
    assert runner.stats.deduplicated == 1
    assert results[0] is results[2]


def test_parallel_and_serial_results_are_bit_identical():
    # The §5.1.3 repetition protocol through the runner: every JobResult
    # row must be byte-identical after JSON round-trip, serial vs workers=4.
    specs = [RunSpec(workload="mr", engine=engine, scale=0.1, seed=seed,
                     eviction=rate)
             for rate in ("none", "high")
             for engine in ("pado", "spark-checkpoint")
             for seed in (11, 12)]
    serial = run_specs(specs, workers=0)
    parallel = run_specs(specs, workers=4)
    assert [canonical_result_json(r) for r in serial] == \
        [canonical_result_json(r) for r in parallel]


def test_averaged_sweep_identical_serial_and_parallel():
    kwargs = dict(scale=0.1, seeds=(11, 12), rates=(EvictionRate.HIGH,),
                  engines=["pado", "spark-checkpoint"])
    serial = averaged_eviction_sweep("mr", **kwargs)
    parallel = averaged_eviction_sweep("mr", workers=4, **kwargs)
    assert serial == parallel
    assert [row.as_tuple() for row in serial] == \
        [row.as_tuple() for row in parallel]


def test_warm_cache_performs_zero_simulations(tmp_path):
    specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
    cold = SweepRunner(cache_dir=tmp_path)
    first = cold.run(specs)
    assert cold.stats.simulated == 2
    assert cold.stats.cache_hits == 0

    warm = SweepRunner(cache_dir=tmp_path)
    second = warm.run(specs)
    assert warm.stats.simulated == 0
    assert warm.stats.cache_hits == 2
    assert [canonical_result_json(r) for r in first] == \
        [canonical_result_json(r) for r in second]


def test_cache_is_keyed_by_code_fingerprint(tmp_path):
    spec = tiny_spec()
    cache = ResultCache(tmp_path)
    result = execute_spec(spec)
    assert cache.put(spec, result)
    assert cache.path_for(spec).parent.name == code_fingerprint()
    assert cache.get(spec) == result
    # a different fingerprint directory would miss
    other = tmp_path / ("0" * 16) / cache.path_for(spec).name
    assert not other.exists()


def test_code_fingerprint_is_memoized_per_process(tmp_path, monkeypatch):
    """The tree digest is hashed once per process, not once per runner or
    cache construction — repeated calls must not touch the filesystem."""
    from repro.bench import runner as runner_module

    first = code_fingerprint()
    assert runner_module._FINGERPRINT == first

    def no_reads(*args, **kwargs):
        raise AssertionError("fingerprint re-hashed the source tree")

    monkeypatch.setattr(runner_module.pathlib.Path, "read_bytes", no_reads)
    assert code_fingerprint() == first
    assert ResultCache(tmp_path).path_for(tiny_spec()).parent.name == first


def test_code_fingerprint_covers_the_tenancy_module(tmp_path):
    """Regression: the cache-invalidation digest must include
    ``repro.cluster.tenancy`` (and any future ``repro.cluster.*`` module) —
    a multi-tenant scheduling change invalidates cached results."""
    import pathlib
    import shutil

    import repro

    src_root = pathlib.Path(repro.__file__).resolve().parent
    tenancy = src_root / "cluster" / "tenancy" / "policies.py"
    assert tenancy.is_file(), "tenancy module moved; update the digest test"
    copy = tmp_path / "repro"
    shutil.copytree(src_root, copy,
                    ignore=shutil.ignore_patterns("__pycache__"))
    before = code_fingerprint(root=copy)
    assert before == code_fingerprint()  # faithful copy digests identically
    target = copy / "cluster" / "tenancy" / "policies.py"
    target.write_text(target.read_text() + "\n# perturbed\n")
    assert code_fingerprint(root=copy) != before
    # Explicit roots never poison the per-process memo.
    assert code_fingerprint() == before


def test_content_hash_covers_eviction_waves():
    plain = tiny_spec(eviction="none")
    waved = tiny_spec(eviction="none",
                      eviction_waves=((60.0, 0.5), (300.0, 0.4)))
    assert plain.content_hash() != waved.content_hash()
    assert waved.content_hash() == tiny_spec(
        eviction="none",
        eviction_waves=((60.0, 0.5), (300.0, 0.4))).content_hash()


def test_build_cluster_rejects_conflicting_wave_specs():
    with pytest.raises(ValueError):
        build_cluster(tiny_spec(eviction_waves=((60.0, 0.5),)))
    with pytest.raises(ValueError):
        build_cluster(RunSpec(
            workload="mr", engine="pado", eviction="none",
            eviction_waves=((60.0, 0.5),),
            transient_pools=(PoolSpec("short", 4, 90.0),)))


def test_cache_ignores_corrupt_entries(tmp_path):
    spec = tiny_spec()
    cache = ResultCache(tmp_path)
    path = cache.path_for(spec)
    path.parent.mkdir(parents=True)
    path.write_text("{not json")
    assert cache.get(spec) is None
    runner = SweepRunner(cache_dir=tmp_path)
    runner.run([spec])
    assert runner.stats.simulated == 1
    assert cache.get(spec) is not None


def test_cache_refuses_non_json_results(tmp_path):
    cache = ResultCache(tmp_path)
    spec = tiny_spec()
    result = dataclasses.replace(execute_spec(spec),
                                 extras={"bad": object()})
    assert not cache.put(spec, result)
    assert cache.get(spec) is None


def test_sweep_through_cache_matches_uncached(tmp_path):
    kwargs = dict(scale=0.02, seeds=(1, 2), rates=(EvictionRate.HIGH,),
                  engines=["pado"])
    plain = averaged_eviction_sweep("mr", **kwargs)
    runner = SweepRunner(cache_dir=tmp_path)
    cached = averaged_eviction_sweep("mr", runner=runner, **kwargs)
    rerun = averaged_eviction_sweep(
        "mr", runner=SweepRunner(cache_dir=tmp_path), **kwargs)
    assert plain == cached == rerun
