"""Tests for speculative inner-job execution and the runner futures API.

Two layers are pinned here. The executor layer
(:mod:`repro.cluster.tenancy.speculation`) is driven with stub
executors: speculation must be consumed only on an exact
``(JobRequest, WaveOffsets)`` match, so records are bit-identical with
speculation on or off, and a corrupted/stale guess can never leak into
them. The bench layer runs the real thing — ``mtsweep`` cells and
``psweep`` rows through a :class:`SweepRunner` — across the
``--speculate on/off`` x workers x policy matrix. Pools run under
``mp_context="fork"`` to keep the matrix fast (start method changes
where workers come from, never what they compute).
"""

import pytest

from repro.bench.multitenant import (cell_summary, make_cell_config,
                                     run_multitenant_cell)
from repro.bench.prediction import prediction_sweep
from repro.bench.runner import RunSpec, SweepRunner, run_specs
from repro.cluster.tenancy import (JobOutcome, MultiTenantCluster,
                                   SpeculativeBatchExecutor, TenancyConfig)

TINY = dict(scale=0.02, seed=3, eviction="high")


def tiny_spec(**overrides):
    fields = dict(TINY)
    fields.update(overrides)
    return RunSpec(workload="mr", engine="pado", **fields)


def stub_outcome(request, waves):
    return JobOutcome(jct_seconds=request.nominal_minutes * 60.0
                      * (1.0 + 0.05 * len(waves)),
                      completed=True, evictions=len(waves))


def stub_executor(batch):
    return [stub_outcome(request, waves) for request, waves in batch]


def record_rows(result):
    return [(r.job_id, r.tenant, r.start_time, r.finish_time, r.completed,
             r.evictions, r.waves_hit, r.containers_revoked,
             r.container_seconds) for r in result.records]


def speculative_stub(config, sabotage=None):
    """A stub-backed speculative cluster run; ``sabotage`` may mutate the
    executor after each refill."""
    def submit(request, waves):
        return (request, waves)

    executor = SpeculativeBatchExecutor(
        stub_executor, submit=submit,
        resolve=lambda handle: stub_outcome(*handle))
    if sabotage is not None:
        real_refill = executor.refill

        def refill():
            real_refill()
            sabotage(executor)

        executor.refill = refill
    cluster = MultiTenantCluster(config, executor, speculator=executor)
    return cluster.run(), executor


# ----------------------------------------------------------------------
# executor layer (stub-driven)


@pytest.mark.parametrize("policy", ("fifo", "fair", "quota"))
@pytest.mark.parametrize("reserve", ("fixed", "elastic"))
def test_stub_records_bit_identical_and_speculation_hits(policy, reserve):
    config = TenancyConfig(policy=policy, num_jobs=20, seed=7,
                           eviction="high", reserve=reserve)
    plain = MultiTenantCluster(config, stub_executor).run()
    spec, executor = speculative_stub(config)
    assert record_rows(plain) == record_rows(spec)
    stats = executor.stats
    assert stats.hits > 0
    # finish() settles every guess: nothing stays in flight
    assert stats.submitted == stats.hits + stats.wasted
    assert 0.0 < stats.hit_rate <= 1.0


def test_corrupted_speculation_never_leaks_into_records():
    """Force every guess onto a key no real dispatch can match: all
    dispatches must run live, the poisoned handles must never resolve,
    and records stay bit-identical to the plain run."""
    config = TenancyConfig(policy="fair", num_jobs=20, seed=7,
                           eviction="high")
    plain = MultiTenantCluster(config, stub_executor).run()
    poisoned = object()

    def corrupt(executor):
        for key in list(executor._entries):
            request, waves = key
            del executor._entries[key]
            bad = (request, waves + ((9999.0, 0.25),))
            executor._entries[bad] = poisoned
            executor._key_of_job[request.job_id] = bad

    def resolve(handle):
        raise AssertionError("poisoned speculation was consumed")

    def submit(request, waves):
        return poisoned

    executor = SpeculativeBatchExecutor(stub_executor, submit=submit,
                                        resolve=resolve)
    real_refill = executor.refill

    def refill():
        real_refill()
        corrupt(executor)

    executor.refill = refill
    cluster = MultiTenantCluster(config, executor, speculator=executor)
    result = cluster.run()
    assert record_rows(result) == record_rows(plain)
    assert executor.stats.submitted > 0
    assert executor.stats.hits == 0
    assert executor.stats.wasted == executor.stats.submitted


def test_executor_validates_max_inflight():
    with pytest.raises(ValueError):
        SpeculativeBatchExecutor(stub_executor, submit=lambda r, w: None,
                                 resolve=lambda h: None, max_inflight=0)


def test_unbound_executor_is_a_plain_executor():
    """Without bind()/refill() the wrapper degrades to its inner
    executor — same records, zero speculation."""
    config = TenancyConfig(policy="fifo", num_jobs=10, seed=3,
                           eviction="medium")
    plain = MultiTenantCluster(config, stub_executor).run()
    executor = SpeculativeBatchExecutor(
        stub_executor, submit=lambda r, w: None,
        resolve=lambda h: None)
    wrapped = MultiTenantCluster(config, executor).run()
    assert record_rows(plain) == record_rows(wrapped)
    assert executor.stats.submitted == 0


# ----------------------------------------------------------------------
# bench layer: real inner simulations through the runner


def _plain_cell(config):
    return cell_summary(config,
                        run_multitenant_cell(config,
                                             runner=SweepRunner(workers=0)))


@pytest.mark.parametrize("policy", ("fifo", "fair", "quota"))
@pytest.mark.parametrize("workers", (0, 2, 8))
def test_mtsweep_cell_bit_identical_with_speculation(policy, workers):
    config = make_cell_config(policy, 0.9, "high", num_jobs=8, seed=5)
    plain = _plain_cell(config)
    with SweepRunner(workers=workers, mp_context="fork",
                     pool_scaling="elastic") as runner:
        spec = run_multitenant_cell(config, runner=runner, speculate=True)
        stats = runner.stats
    assert cell_summary(config, spec) == plain
    assert stats.speculation_submitted > 0
    assert stats.speculation_hits > 0
    assert stats.speculation_submitted == \
        stats.speculation_hits + stats.speculation_wasted


def test_psweep_rows_bit_identical_with_speculation():
    kwargs = dict(workloads=("mr",), regimes=(("sparse", 480.0, 0.5),),
                  scale=0.05, seed=11)
    serial = prediction_sweep(runner=SweepRunner(workers=0), **kwargs)
    with SweepRunner(workers=2, mp_context="fork",
                     pool_scaling="elastic") as runner:
        async_rows = prediction_sweep(runner=runner, speculate=True,
                                      **kwargs)
    assert serial == async_rows


def test_speculated_results_land_in_the_shared_cache(tmp_path):
    """Wasted speculation is not lost: whatever ran lands in the on-disk
    cache, and a replay of the same cell simulates nothing."""
    config = make_cell_config("fair", 0.9, "high", num_jobs=6, seed=5)
    with SweepRunner(cache_dir=tmp_path) as runner:
        first = run_multitenant_cell(config, runner=runner, speculate=True)
    with SweepRunner(cache_dir=tmp_path) as runner:
        replay = run_multitenant_cell(config, runner=runner, speculate=True)
        assert runner.stats.simulated == 0
    assert record_rows(first) == record_rows(replay)


# ----------------------------------------------------------------------
# runner futures API


def test_serial_submit_resolves_inline():
    runner = SweepRunner(workers=0)
    handle = runner.submit(tiny_spec(seed=1))
    assert handle.done()
    result = runner.wait(handle)
    assert handle.result() is result
    assert runner.stats.simulated == 1
    [serial] = run_specs([tiny_spec(seed=1)])
    assert result == serial


def test_submit_many_dedups_against_inflight():
    with SweepRunner(workers=2, mp_context="fork") as runner:
        first, second = runner.submit_many([tiny_spec(seed=1),
                                            tiny_spec(seed=1)])
        assert second is first                    # same in-flight future
        [third] = runner.submit_many([tiny_spec(seed=1)])
        assert third is first
        assert runner.wait(first) == runner.wait(third)
        assert runner.stats.simulated == 1
        assert runner.stats.deduplicated == 2


def test_poll_streams_completions_out_of_order():
    specs = [tiny_spec(seed=s) for s in (1, 2, 3, 4)]
    serial = run_specs(specs)
    with SweepRunner(workers=2, mp_context="fork") as runner:
        handles = runner.submit_many(specs)
        resolved = []
        while len(resolved) < len(handles):
            resolved.extend(runner.poll())
        assert {id(h) for h in resolved} == {id(h) for h in handles}
        assert [h.result() for h in handles] == serial


def test_cancel_calls_off_unstarted_work():
    slow = RunSpec(workload="mr", engine="pado", scale=0.3, seed=1,
                   eviction="high")
    with SweepRunner(workers=1, mp_context="fork") as runner:
        running = runner.submit(slow)             # occupies the only worker
        queued = runner.submit(tiny_spec(seed=2))
        assert runner.cancel(queued)
        assert queued.done()
        with pytest.raises(Exception):
            runner.wait(queued)
        runner.wait(running)                      # unaffected by the cancel
        assert runner.stats.simulated == 1
    # resolved handles cannot be cancelled
    runner = SweepRunner(workers=0)
    handle = runner.submit(tiny_spec(seed=3))
    assert not runner.cancel(handle)
    assert runner.wait(handle) is handle.result()


def test_worker_failure_propagates_through_wait():
    bad = RunSpec(workload="no-such-workload", engine="pado", **TINY)
    with SweepRunner(workers=2, mp_context="fork") as runner:
        handle = runner.submit(bad)
        with pytest.raises(Exception):
            runner.wait(handle)
        # the runner recovers: a fresh pool serves the next submission
        assert runner.run([tiny_spec(seed=1)]) == run_specs(
            [tiny_spec(seed=1)])


def test_pool_occupancy_is_accounted():
    with SweepRunner(workers=2, mp_context="fork") as runner:
        runner.run([tiny_spec(seed=s) for s in (1, 2, 3, 4)])
        stats = runner.stats
    assert stats.busy_worker_seconds > 0.0
    assert stats.pool_worker_seconds > 0.0
    assert 0.0 < stats.pool_occupancy <= 1.5      # headroom for clock skew
    data = stats.to_dict()
    assert data["pool_occupancy"] == stats.pool_occupancy
    assert {"speculation_submitted", "speculation_hits",
            "speculation_wasted"} <= set(data)
    serial = SweepRunner(workers=0)
    serial.run([tiny_spec(seed=1)])
    assert serial.stats.pool_occupancy == 0.0


def test_pool_scaling_validated():
    with pytest.raises(ValueError):
        SweepRunner(workers=2, pool_scaling="bogus")
    # elastic pools never exceed the machine, and stay bit-identical
    specs = [tiny_spec(seed=s) for s in (1, 2)]
    with SweepRunner(workers=8, mp_context="fork",
                     pool_scaling="elastic") as runner:
        assert runner.run(specs) == run_specs(specs)
