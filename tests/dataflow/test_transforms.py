"""Unit tests for the Beam-like pipeline API."""

import pytest

from repro.dataflow import (DependencyType, LocalRunner, Pipeline,
                            SumCombiner)
from repro.dataflow.functions import GlobalCombineFn
from repro.errors import DagError


def test_read_with_partitions_sets_parallelism():
    p = Pipeline()
    pc = p.read("r", partitions=[[1], [2], [3]])
    assert pc.parallelism == 3
    assert pc.op.input_ref == "r"


def test_read_synthetic_needs_partition_bytes():
    p = Pipeline()
    with pytest.raises(DagError):
        p.read("r", input_ref="data")
    pc = p.read("r2", input_ref="data", partition_bytes=[10, 20])
    assert pc.parallelism == 2


def test_read_needs_some_input():
    with pytest.raises(DagError):
        Pipeline().read("r")


def test_narrow_chain_preserves_parallelism():
    p = Pipeline()
    pc = p.read("r", partitions=[[1], [2]])
    mapped = pc.map("m", lambda x: x + 1)
    filtered = mapped.filter("f", lambda x: x > 0)
    assert filtered.parallelism == 2
    dag = p.to_dag()
    assert all(e.dep_type is DependencyType.ONE_TO_ONE
               for op in dag.operators for e in dag.in_edges(op))


def test_reduce_by_key_creates_many_to_many():
    p = Pipeline()
    pc = p.read("r", partitions=[[("a", 1)]])
    reduced = pc.reduce_by_key("red", SumCombiner(), parallelism=4)
    dag = p.to_dag()
    edge = dag.in_edges(reduced.op)[0]
    assert edge.dep_type is DependencyType.MANY_TO_MANY
    assert reduced.parallelism == 4
    assert reduced.op.combiner is not None


def test_aggregate_creates_many_to_one():
    p = Pipeline()
    pc = p.read("r", partitions=[[1], [2], [3]])
    agg = pc.aggregate("agg", SumCombiner())
    dag = p.to_dag()
    assert dag.in_edges(agg.op)[0].dep_type is DependencyType.MANY_TO_ONE
    assert agg.parallelism == 1
    assert isinstance(agg.op.fn, GlobalCombineFn)


def test_side_input_edges():
    p = Pipeline()
    data = p.read("r", partitions=[[1], [2]])
    model = p.create("model", values=[10])
    out = data.map_with_side_input("add", lambda x, m: x + m, side=model)
    dag = p.to_dag()
    deps = {e.src.name: e.dep_type for e in dag.in_edges(out.op)}
    assert deps == {"r": DependencyType.ONE_TO_ONE,
                    "model": DependencyType.ONE_TO_MANY}


def test_create_single_partition_only():
    p = Pipeline()
    with pytest.raises(DagError):
        p.create("c", values=[1], parallelism=2)


def test_apply_multi():
    p = Pipeline()
    a = p.read("a", partitions=[[1], [2]])
    b = p.create("b", values=[5])
    p.apply_multi(
        "join", lambda inputs: [sum(inputs["a"]) + sum(inputs["b"])],
        inputs=[(a, DependencyType.MANY_TO_ONE),
                (b, DependencyType.ONE_TO_MANY)],
        parallelism=1)
    result = LocalRunner().run(p.to_dag())
    assert result.collect("join") == [8]


def test_apply_multi_requires_inputs():
    p = Pipeline()
    with pytest.raises(DagError):
        p.apply_multi("x", lambda i: [], inputs=[], parallelism=1)


def test_wordcount_end_to_end():
    p = Pipeline()
    lines = p.read("read", partitions=[["a b", "b"], ["a a"]])
    (lines.flat_map("split", str.split)
                   .map("pair", lambda w: (w, 1))
                   .reduce_by_key("count", SumCombiner(), parallelism=2))
    result = LocalRunner().run(p.to_dag())
    assert sorted(result.collect("count")) == [("a", 3), ("b", 2)]
