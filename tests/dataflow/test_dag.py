"""Unit tests for the logical DAG model."""

import pytest

from repro.dataflow.dag import (DependencyType, LogicalDAG, OpCost, Operator,
                                Placement, SourceKind)
from repro.errors import DagError


def op(name, parallelism=2, **kwargs):
    return Operator(name, parallelism=parallelism, **kwargs)


def source(name, parallelism=2, **kwargs):
    kwargs.setdefault("source_kind", SourceKind.READ)
    kwargs.setdefault("input_ref", name)
    kwargs.setdefault("partition_bytes", [100] * parallelism)
    return Operator(name, parallelism=parallelism, **kwargs)


class TestDependencyType:
    def test_wide_types(self):
        assert DependencyType.MANY_TO_MANY.is_wide
        assert DependencyType.MANY_TO_ONE.is_wide
        assert not DependencyType.ONE_TO_ONE.is_wide
        assert not DependencyType.ONE_TO_MANY.is_wide

    def test_shuffle_matches_wide(self):
        for dep in DependencyType:
            assert dep.is_shuffle == dep.is_wide


class TestOperator:
    def test_rejects_non_positive_parallelism(self):
        with pytest.raises(DagError):
            Operator("x", parallelism=0)

    def test_partition_bytes_length_checked(self):
        with pytest.raises(DagError):
            Operator("x", parallelism=3, partition_bytes=[1, 2])

    def test_starts_unplaced(self):
        assert op("x").placement is Placement.UNPLACED


class TestOpCost:
    def test_ratio_output(self):
        assert OpCost(output_ratio=0.5).output_bytes(100.0) == 50

    def test_fixed_output_overrides_ratio(self):
        cost = OpCost(output_ratio=0.5, fixed_output_bytes=7)
        assert cost.output_bytes(1e9) == 7


class TestLogicalDAG:
    def test_duplicate_names_rejected(self):
        dag = LogicalDAG()
        dag.add_operator(op("a"))
        with pytest.raises(DagError):
            dag.add_operator(op("a"))

    def test_connect_unknown_operator_rejected(self):
        dag = LogicalDAG()
        a = dag.add_operator(op("a"))
        with pytest.raises(DagError):
            dag.connect(a, op("b"), DependencyType.ONE_TO_ONE)

    def test_duplicate_edge_rejected(self):
        dag = LogicalDAG()
        a = dag.add_operator(source("a"))
        b = dag.add_operator(op("b"))
        dag.connect(a, b, DependencyType.ONE_TO_ONE)
        with pytest.raises(DagError):
            dag.connect(a, b, DependencyType.MANY_TO_MANY)

    def test_one_to_one_requires_equal_parallelism(self):
        dag = LogicalDAG()
        a = dag.add_operator(source("a", parallelism=2))
        b = dag.add_operator(op("b", parallelism=3))
        with pytest.raises(DagError):
            dag.connect(a, b, DependencyType.ONE_TO_ONE)

    def test_parents_children_sources_sinks(self):
        dag = LogicalDAG()
        a = dag.add_operator(source("a"))
        b = dag.add_operator(op("b"))
        c = dag.add_operator(op("c"))
        dag.connect(a, b, DependencyType.ONE_TO_ONE)
        dag.connect(b, c, DependencyType.MANY_TO_MANY)
        assert dag.parents(c) == [b]
        assert dag.children(a) == [b]
        assert dag.sources() == [a]
        assert dag.sinks() == [c]
        assert dag.in_edges(b)[0].src is a
        assert dag.out_edges(b)[0].dst is c

    def test_topological_sort_order(self):
        dag = LogicalDAG()
        a = dag.add_operator(source("a"))
        b = dag.add_operator(op("b"))
        c = dag.add_operator(op("c"))
        d = dag.add_operator(op("d"))
        dag.connect(a, b, DependencyType.ONE_TO_ONE)
        dag.connect(a, c, DependencyType.ONE_TO_MANY)
        dag.connect(b, d, DependencyType.MANY_TO_MANY)
        dag.connect(c, d, DependencyType.MANY_TO_MANY)
        order = [o.name for o in dag.topological_sort()]
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detected(self):
        dag = LogicalDAG()
        a = dag.add_operator(op("a"))
        b = dag.add_operator(op("b"))
        dag.connect(a, b, DependencyType.ONE_TO_ONE)
        dag.connect(b, a, DependencyType.ONE_TO_ONE)
        with pytest.raises(DagError):
            dag.topological_sort()

    def test_validate_requires_sources_marked(self):
        dag = LogicalDAG()
        dag.add_operator(op("a"))  # no in-edges, not a source
        with pytest.raises(DagError):
            dag.validate()

    def test_validate_rejects_source_with_in_edges(self):
        dag = LogicalDAG()
        a = dag.add_operator(source("a"))
        b = dag.add_operator(source("b"))
        dag.connect(a, b, DependencyType.ONE_TO_ONE)
        with pytest.raises(DagError):
            dag.validate()

    def test_validate_read_source_needs_data(self):
        dag = LogicalDAG()
        dag.add_operator(Operator("a", parallelism=1,
                                  source_kind=SourceKind.READ))
        with pytest.raises(DagError):
            dag.validate()

    def test_operator_lookup(self):
        dag = LogicalDAG()
        a = dag.add_operator(source("a"))
        assert dag.operator("a") is a
        with pytest.raises(DagError):
            dag.operator("missing")
