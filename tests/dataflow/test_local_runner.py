"""Unit tests for the reference local evaluator."""

import pytest

from repro.dataflow import (DependencyType, LocalRunner, LogicalDAG,
                            Operator, Pipeline, SourceKind, SumCombiner)
from repro.errors import ExecutionError


def test_collect_concatenates_partitions():
    p = Pipeline()
    p.read("r", partitions=[[1, 2], [3]])
    result = LocalRunner().run(p.to_dag())
    assert result.collect("r") == [1, 2, 3]
    assert result.partitions("r") == [[1, 2], [3]]


def test_unknown_operator_in_result():
    p = Pipeline()
    p.read("r", partitions=[[1]])
    result = LocalRunner().run(p.to_dag())
    with pytest.raises(ExecutionError):
        result.collect("nope")


def test_synthetic_program_rejected():
    dag = LogicalDAG()
    dag.add_operator(Operator("r", parallelism=1,
                              source_kind=SourceKind.READ, input_ref="r",
                              partition_bytes=[10]))
    with pytest.raises(ExecutionError):
        LocalRunner().run(dag)


def test_shuffle_groups_all_values_for_a_key_in_one_task():
    p = Pipeline()
    pairs = p.read("r", partitions=[[("k", 1), ("j", 2)],
                                    [("k", 3)], [("j", 4)]])
    pairs.reduce_by_key("red", SumCombiner(), parallelism=3)
    result = LocalRunner().run(p.to_dag())
    assert sorted(result.collect("red")) == [("j", 6), ("k", 4)]
    # Each key appears in exactly one output partition.
    seen = {}
    for idx, part in enumerate(result.partitions("red")):
        for key, _ in part:
            assert key not in seen
            seen[key] = idx


def test_broadcast_side_input_reaches_all_tasks():
    p = Pipeline()
    data = p.read("r", partitions=[[1], [2], [3]])
    model = p.create("m", values=[100])
    data.map_with_side_input("add", lambda x, m: x + m, side=model)
    result = LocalRunner().run(p.to_dag())
    assert sorted(result.collect("add")) == [101, 102, 103]


def test_many_to_one_collects_modulo_assignment():
    p = Pipeline()
    data = p.read("r", partitions=[[0], [1], [2], [3]])
    data.aggregate("agg", SumCombiner(), parallelism=2)
    result = LocalRunner().run(p.to_dag())
    parts = result.partitions("agg")
    assert parts[0] == [0 + 2]
    assert parts[1] == [1 + 3]


def test_empty_parent_inputs_still_provided():
    p = Pipeline()
    data = p.read("r", partitions=[[]])
    seen = {}

    def probe(inputs):
        seen.update(inputs)
        return []

    data.apply("probe", probe, DependencyType.ONE_TO_ONE)
    LocalRunner().run(p.to_dag())
    assert seen == {"r": []}


def test_diamond_dag():
    p = Pipeline()
    data = p.read("r", partitions=[[1, 2], [3, 4]])
    evens = data.filter("evens", lambda x: x % 2 == 0)
    odds = data.filter("odds", lambda x: x % 2 == 1)
    p.apply_multi(
        "join",
        lambda inputs: [sum(inputs["evens"]) * 100 + sum(inputs["odds"])],
        inputs=[(evens, DependencyType.MANY_TO_ONE),
                (odds, DependencyType.MANY_TO_ONE)],
        parallelism=1)
    result = LocalRunner().run(p.to_dag())
    assert result.collect("join") == [600 + 4]
