"""Edge cases of the transform API not covered by the main tests."""

import pytest

from repro.dataflow import (DependencyType, LocalRunner, Pipeline,
                            SumCombiner)
from repro.errors import DagError


def test_group_apply_custom_consumer():
    p = Pipeline()
    pairs = p.read("r", partitions=[[("a", 1), ("b", 2)], [("a", 3)]])

    def keys_only(inputs):
        return sorted({k for records in inputs.values()
                       for k, _ in records})

    pairs.group_apply("keys", keys_only, parallelism=2)
    result = LocalRunner().run(p.to_dag())
    assert sorted(result.collect("keys")) == ["a", "b"]


def test_group_apply_defaults_parallelism():
    p = Pipeline()
    pairs = p.read("r", partitions=[[("a", 1)], [("b", 2)], [("c", 3)]])
    grouped = pairs.group_apply("g", lambda i: [])
    assert grouped.parallelism == 3


def test_generic_apply_with_explicit_dep():
    p = Pipeline()
    data = p.read("r", partitions=[[1], [2], [3]])
    data.apply(
        "total", lambda inputs: [sum(inputs["r"])],
        DependencyType.MANY_TO_ONE, parallelism=1)
    result = LocalRunner().run(p.to_dag())
    assert result.collect("total") == [6]


def test_create_without_values_is_synthetic():
    p = Pipeline()
    from repro.dataflow.dag import OpCost
    model = p.create("m", cost=OpCost(fixed_output_bytes=10))
    assert model.op.fn is None
    assert model.op.source_kind.value == "created"


def test_pipeline_rejects_duplicate_operator_names():
    p = Pipeline()
    p.read("same", partitions=[[1]])
    with pytest.raises(DagError):
        p.read("same", partitions=[[2]])


def test_chained_shuffles():
    """Two shuffles back to back: word count then count-of-counts."""
    p = Pipeline()
    words = p.read("r", partitions=[["a a b"], ["b c b"]])
    counts = (words.flat_map("split", str.split)
                   .map("pair", lambda w: (w, 1))
                   .reduce_by_key("count", SumCombiner(), parallelism=2))
    (counts.map("invert", lambda kv: (kv[1], 1))
                  .reduce_by_key("freq", SumCombiner(), parallelism=2))
    result = LocalRunner().run(p.to_dag())
    # a:2, b:3, c:1 -> one word each of count 1, 2, 3.
    assert sorted(result.collect("freq")) == [(1, 1), (2, 1), (3, 1)]


def test_chained_shuffles_on_engines():
    from repro import ClusterConfig, PadoEngine, SparkEngine
    from repro.engines.base import Program
    from repro.trace.models import ExponentialLifetimeModel

    def build():
        p = Pipeline()
        words = p.read("r", partitions=[["a a b"], ["b c b"], ["a c"]])
        counts = (words.flat_map("split", str.split)
                       .map("pair", lambda w: (w, 1))
                       .reduce_by_key("count", SumCombiner(),
                                      parallelism=2))
        (counts.map("invert", lambda kv: (kv[1], 1))
               .reduce_by_key("freq", SumCombiner(), parallelism=2))
        return Program(p.to_dag(), "freq")

    expected = sorted(LocalRunner().run(build().dag).collect("freq"))
    for engine in (PadoEngine(), SparkEngine()):
        result = engine.run(
            build(), ClusterConfig(num_reserved=2, num_transient=3,
                                   eviction=ExponentialLifetimeModel(4.0)),
            seed=2, time_limit=3600)
        assert result.completed
        assert sorted(result.collected("freq")) == expected
