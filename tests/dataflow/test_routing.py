"""Unit tests for data routing semantics shared by all engines (§2.2)."""

import pytest

from repro.dataflow.dag import (DependencyType, LogicalDAG, Operator,
                                SourceKind, destination_indices,
                                route_output, route_sizes, source_indices)
from repro.errors import DagError


def make_edge(dep_type, src_par=3, dst_par=2, key_fn=None):
    dag = LogicalDAG()
    src = dag.add_operator(Operator(
        "src", parallelism=src_par, source_kind=SourceKind.READ,
        partition_bytes=[1] * src_par, input_ref="src"))
    dst = dag.add_operator(Operator("dst", parallelism=dst_par))
    return dag.connect(src, dst, dep_type, key_fn=key_fn)


class TestRouteOutput:
    def test_one_to_one(self):
        edge = make_edge(DependencyType.ONE_TO_ONE, src_par=2, dst_par=2)
        assert route_output(edge, 1, ["x", "y"]) == {1: ["x", "y"]}

    def test_one_to_many_broadcasts(self):
        edge = make_edge(DependencyType.ONE_TO_MANY, dst_par=3)
        routed = route_output(edge, 0, ["m"])
        assert routed == {0: ["m"], 1: ["m"], 2: ["m"]}

    def test_many_to_one_collects_by_modulo(self):
        edge = make_edge(DependencyType.MANY_TO_ONE, src_par=5, dst_par=2)
        assert route_output(edge, 3, ["v"]) == {1: ["v"]}

    def test_many_to_many_hash_partitions_keyed_records(self):
        edge = make_edge(DependencyType.MANY_TO_MANY, dst_par=4)
        records = [(k, 1) for k in "abcdefgh"]
        routed = route_output(edge, 0, records)
        flattened = [r for bucket in routed.values() for r in bucket]
        assert sorted(flattened) == sorted(records)
        # Same key always lands in the same bucket.
        for bucket_idx, bucket in routed.items():
            for key, _ in bucket:
                assert hash(key) % 4 == bucket_idx

    def test_many_to_many_requires_keyed_records(self):
        edge = make_edge(DependencyType.MANY_TO_MANY)
        with pytest.raises(DagError):
            route_output(edge, 0, ["unkeyed"])

    def test_custom_key_fn(self):
        edge = make_edge(DependencyType.MANY_TO_MANY, dst_par=2,
                         key_fn=lambda rec: rec[1])
        records = [("u1", 7), ("u2", 7), ("u3", 8)]
        routed = route_output(edge, 0, records)
        bucket_of_7 = hash(7) % 2
        assert ("u1", 7) in routed[bucket_of_7]
        assert ("u2", 7) in routed[bucket_of_7]


class TestRouteSizes:
    def test_many_to_many_splits_evenly(self):
        edge = make_edge(DependencyType.MANY_TO_MANY, dst_par=4)
        shares = route_sizes(edge, 0, 100.0)
        assert shares == {0: 25.0, 1: 25.0, 2: 25.0, 3: 25.0}

    def test_one_to_many_copies_full_size(self):
        edge = make_edge(DependencyType.ONE_TO_MANY, dst_par=3)
        assert route_sizes(edge, 0, 10.0) == {0: 10.0, 1: 10.0, 2: 10.0}

    def test_one_to_one_and_many_to_one(self):
        edge = make_edge(DependencyType.ONE_TO_ONE, src_par=2, dst_par=2)
        assert route_sizes(edge, 1, 5.0) == {1: 5.0}
        edge = make_edge(DependencyType.MANY_TO_ONE, src_par=4, dst_par=2)
        assert route_sizes(edge, 2, 5.0) == {0: 5.0}


class TestIndexMaps:
    def test_destination_and_source_indices_are_inverse(self):
        for dep in DependencyType:
            edge = make_edge(dep, src_par=4, dst_par=4)
            for src_idx in range(4):
                for dst_idx in destination_indices(edge, src_idx):
                    assert src_idx in source_indices(edge, dst_idx)
            for dst_idx in range(4):
                for src_idx in source_indices(edge, dst_idx):
                    assert dst_idx in destination_indices(edge, src_idx)

    def test_many_to_one_source_indices(self):
        edge = make_edge(DependencyType.MANY_TO_ONE, src_par=6, dst_par=2)
        assert source_indices(edge, 0) == [0, 2, 4]
        assert source_indices(edge, 1) == [1, 3, 5]

    def test_wide_edges_touch_every_destination(self):
        edge = make_edge(DependencyType.MANY_TO_MANY, src_par=3, dst_par=5)
        assert destination_indices(edge, 1) == list(range(5))
