"""Unit tests for user-function wrappers and combiners."""

import pytest

from repro.dataflow.functions import (CombineFn, FilterFn, FlatMapFn,
                                      GlobalCombineFn, KeyedReduceFn, MapFn,
                                      MapWithSideFn, RawFn, SumCombiner,
                                      binary_combiner,
                                      single_parent_records)
from repro.errors import DagError


def test_single_parent_records():
    assert single_parent_records({"p": [1, 2]}) == [1, 2]
    with pytest.raises(DagError):
        single_parent_records({"p": [], "q": []})


def test_map_fn():
    fn = MapFn(lambda x: x * 2)
    assert fn({"p": [1, 2, 3]}) == [2, 4, 6]


def test_flat_map_fn():
    fn = FlatMapFn(str.split)
    assert fn({"p": ["a b", "c"]}) == ["a", "b", "c"]


def test_filter_fn():
    fn = FilterFn(lambda x: x > 1)
    assert fn({"p": [0, 1, 2, 3]}) == [2, 3]


def test_map_with_side_fn():
    fn = MapWithSideFn(lambda x, side: x + side, side="model")
    assert fn({"data": [1, 2], "model": [10]}) == [11, 12]


def test_map_with_side_fn_errors():
    fn = MapWithSideFn(lambda x, s: x, side="model")
    with pytest.raises(DagError):
        fn({"data": [1]})
    with pytest.raises(DagError):
        fn({"data": [1], "model": [1, 2]})
    with pytest.raises(DagError):
        fn({"a": [1], "b": [2], "model": [1]})


def test_sum_combiner():
    combiner = SumCombiner()
    assert combiner.create() == 0
    assert combiner.merge(2, 3) == 5
    assert combiner.add(combiner.create(), 4) == 4


def test_combiner_default_merged_size_is_max():
    assert SumCombiner().merged_size_bytes([10.0, 20.0, 5.0]) == 20.0
    assert SumCombiner().merged_size_bytes([]) == 0.0


def test_binary_combiner_sum_size_mode():
    combiner = binary_combiner(lambda a, b: a + b, identity=0,
                               size_mode="sum")
    assert combiner.merge(1, 2) == 3
    assert combiner.merged_size_bytes([10.0, 20.0]) == 30.0
    with pytest.raises(ValueError):
        binary_combiner(lambda a, b: a, 0, size_mode="bogus")


def test_keyed_reduce_fn_groups_and_sorts():
    fn = KeyedReduceFn(SumCombiner())
    out = fn({"p": [("b", 1), ("a", 2)], "q": [("a", 3)]})
    assert out == [("a", 5), ("b", 1)]


def test_keyed_reduce_fn_order_insensitive():
    fn = KeyedReduceFn(SumCombiner())
    a = fn({"p": [("x", 1), ("y", 2), ("x", 3)]})
    b = fn({"p": [("x", 3), ("x", 1), ("y", 2)]})
    assert a == b


def test_global_combine_fn():
    fn = GlobalCombineFn(SumCombiner())
    assert fn({"p": [1, 2], "q": [3]}) == [6]
    assert fn({"p": []}) == [0]


def test_raw_fn_passthrough():
    fn = RawFn(lambda inputs: sorted(inputs))
    assert fn({"b": [], "a": []}) == ["a", "b"]


def test_combine_fn_base_is_abstract():
    with pytest.raises(NotImplementedError):
        CombineFn().merge(1, 2)
    with pytest.raises(NotImplementedError):
        CombineFn().create()
