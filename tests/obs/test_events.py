"""Event schema: serialization round-trips and registry completeness."""

import dataclasses

import pytest

from repro.obs.events import (EVENT_TYPES, DiskIO, Eviction, FetchMiss,
                              JobTag, PredictedEviction, ProactivePush,
                              Relaunch, StageEnd, StageStart,
                              TaskCommitted, TaskPushed, TaskQueued,
                              TaskStart, TraceEvent, Transfer,
                              event_from_dict, event_to_dict)

SAMPLES = [
    StageStart(time=0.0, stage=0, name="map"),
    StageEnd(time=9.5, stage=0, name="map"),
    TaskQueued(time=0.1, task="map", index=3, attempt=0, queue_depth=4),
    TaskStart(time=0.2, stage=0, task="map", index=3, attempt=0,
              executor=12, resource="transient"),
    TaskPushed(time=4.0, stage=0, task="map", index=3, attempt=0,
               executor=12, size_bytes=1e6),
    TaskCommitted(time=4.5, stage=0, task="map", index=3, attempt=0,
                  executor=12),
    Relaunch(time=5.0, stage=0, task="map", index=4, attempt=0,
             cause="eviction", cause_ref=9),
    Eviction(time=5.0, container=9, resource="transient", cause="eviction",
             lifetime=120.0),
    FetchMiss(time=6.0, op="reduce", index=1),
    Transfer(time=7.0, src="transient:12", dst="reserved:1",
             size_bytes=2e6, requested_at=6.5, ok=True),
    DiskIO(time=8.0, container=12, resource="transient", op="write",
           size_bytes=3e6, requested_at=7.5, ok=True),
    JobTag(time=600.0, job="job0003", tenant="tenant1", engine="pado",
           workload="mr", queue_seconds=42.0),
    PredictedEviction(time=100.0, container=9, probability=0.72, age=95.0),
    ProactivePush(time=101.0, container=9, task="parse", index=2,
                  size_bytes=4e6, executor=1, restored=False),
]


def test_registry_covers_every_concrete_event():
    assert set(EVENT_TYPES) == {type(e).__name__ for e in SAMPLES}


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
def test_dict_round_trip(event):
    payload = event_to_dict(event)
    assert payload["type"] == event.kind
    assert event_from_dict(payload) == event


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
def test_events_are_frozen_and_timed(event):
    assert isinstance(event, TraceEvent)
    assert isinstance(event.time, float)
    with pytest.raises(dataclasses.FrozenInstanceError):
        event.time = -1.0


def test_unknown_type_fails_loudly():
    with pytest.raises(KeyError):
        event_from_dict({"type": "NotAnEvent", "time": 0.0})
