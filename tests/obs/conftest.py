"""Shared fixtures: traced engine runs under eviction."""

from __future__ import annotations

import pytest

from repro import (ClusterConfig, PadoEngine, SparkCheckpointEngine,
                   SparkEngine)
from repro.obs import Tracer
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import mlr_synthetic_program

ENGINES = {
    "pado": PadoEngine,
    "spark": SparkEngine,
    "spark-checkpoint": SparkCheckpointEngine,
}


def stormy_cluster():
    """Small cluster with lifetimes short enough to force relaunches."""
    return ClusterConfig(num_reserved=2, num_transient=6,
                         eviction=ExponentialLifetimeModel(180.0))


def small_program():
    return mlr_synthetic_program(iterations=2, num_map_tasks=12)


@pytest.fixture(scope="module", params=sorted(ENGINES))
def traced_run(request):
    """(engine name, tracer, result) for one stormy run per engine."""
    tracer = Tracer()
    result = ENGINES[request.param]().run(
        small_program(), stormy_cluster(), seed=7, tracer=tracer,
        time_limit=48 * 3600)
    return request.param, tracer, result
