"""JSONL and Chrome trace_event serialization."""

import json

from repro.obs import (TaskStart, events_from_jsonl, to_chrome_trace,
                       to_jsonl, write_chrome_trace, write_jsonl)
from repro.obs.export import NETWORK_PID
from repro.obs.events import Relaunch, TaskCommitted


def test_jsonl_round_trip(traced_run):
    _, tracer, _ = traced_run
    rebuilt = events_from_jsonl(to_jsonl(tracer.events))
    assert rebuilt == tracer.events


def test_jsonl_file_round_trip(traced_run, tmp_path):
    _, tracer, _ = traced_run
    path = write_jsonl(tracer.events, tmp_path / "run.jsonl")
    assert events_from_jsonl(path.read_text()) == tracer.events


def test_chrome_trace_round_trips_through_json(traced_run):
    _, tracer, _ = traced_run
    trace = to_chrome_trace(tracer.events)
    assert json.loads(json.dumps(trace)) == trace
    assert trace["displayTimeUnit"] == "ms"


def test_chrome_trace_one_slice_per_attempt(traced_run):
    """Every started attempt shows up as exactly one complete event, with
    its outcome matching the terminal event (or 'open' at the horizon)."""
    _, tracer, result = traced_run
    trace = to_chrome_trace(tracer.events)
    slices = [e for e in trace["traceEvents"]
              if e["ph"] == "X" and e["cat"].startswith("task,")]
    assert len(slices) == len(tracer.of_kind(TaskStart))
    assert len(slices) == result.launched_tasks
    outcomes = {}
    for chrome_event in slices:
        assert chrome_event["dur"] >= 0.0
        assert chrome_event["pid"] != NETWORK_PID
        outcome = chrome_event["args"]["outcome"]
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    relaunches = len(tracer.of_kind(Relaunch))
    # Relaunches of never-started attempts produce no slice.
    assert outcomes.get("relaunched", 0) <= relaunches
    assert outcomes.get("committed", 0) <= len(
        tracer.of_kind(TaskCommitted))


def test_chrome_trace_network_lane_and_metadata(traced_run):
    _, tracer, _ = traced_run
    trace = to_chrome_trace(tracer.events)
    events = trace["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    assert any(e["pid"] == NETWORK_PID for e in metas)
    transfers = [e for e in events
                 if e["ph"] == "X" and e["cat"].startswith("transfer")]
    assert transfers
    for chrome_event in transfers:
        assert chrome_event["pid"] == NETWORK_PID


def test_chrome_trace_stage_markers_balance(traced_run):
    _, tracer, _ = traced_run
    trace = to_chrome_trace(tracer.events)
    begins = [e for e in trace["traceEvents"]
              if e.get("cat") == "stage" and e["ph"] == "B"]
    ends = [e for e in trace["traceEvents"]
            if e.get("cat") == "stage" and e["ph"] == "E"]
    assert len(begins) == len(ends)
    assert begins  # at least one stage ran


def test_chrome_trace_file_is_loadable_json(traced_run, tmp_path):
    _, tracer, _ = traced_run
    path = write_chrome_trace(tracer.events, tmp_path / "run.trace.json")
    loaded = json.loads(path.read_text())
    assert loaded["traceEvents"]


def test_empty_trace_serializes():
    assert to_jsonl([]) == ""
    assert events_from_jsonl("") == []
    trace = to_chrome_trace([])
    assert json.loads(json.dumps(trace)) == trace
