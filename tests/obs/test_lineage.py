"""Causal ordering and the lineage/JobResult reconciliation invariant."""

from repro import ClusterConfig, PadoEngine
from repro.obs import (Eviction, Relaunch, TaskCommitted, TaskStart, Tracer,
                       analyze_eviction_lineage)
from repro.workloads import mr_synthetic_program

from tests.obs.conftest import ENGINES


def test_events_causally_ordered(traced_run):
    _, tracer, _ = traced_run
    times = [event.time for event in tracer]
    assert times == sorted(times)


def test_task_starts_match_launched_tasks(traced_run):
    _, tracer, result = traced_run
    assert len(tracer.of_kind(TaskStart)) == result.launched_tasks


def test_lineage_reconciles_with_job_result(traced_run):
    _, tracer, result = traced_run
    report = analyze_eviction_lineage(tracer.events)
    report.verify_against(result)  # raises on any mismatch
    assert result.completed
    assert report.relaunched_tasks == result.relaunched_tasks
    assert report.starts == result.launched_tasks


def test_every_relaunch_attributed(traced_run):
    """The stormy cluster forces relaunches, and each one lands in the
    by-cause aggregation; eviction-caused ones carry the container id."""
    name, tracer, result = traced_run
    report = analyze_eviction_lineage(tracer.events)
    assert result.relaunched_tasks > 0
    attributed = sum(i.relaunched_tasks for i in report.by_cause.values())
    assert attributed == report.relaunched_tasks
    evicted_containers = {e.container for e in tracer.of_kind(Eviction)}
    for impact in report.by_eviction.values():
        assert impact.container in evicted_containers
        assert impact.relaunched_tasks == len(impact.tasks)
        assert impact.recompute_seconds >= 0.0
    if name == "pado":
        # Pado never cascades: every relaunch is a direct eviction victim.
        assert set(report.by_cause) <= {"eviction"}
    else:
        # Spark's critical chain re-runs *completed* parents too.
        assert "lineage-recompute" in report.by_cause


def test_recompute_seconds_sum_matches_attempts(traced_run):
    _, tracer, _ = traced_run
    report = analyze_eviction_lineage(tracer.events)
    relaunched = [a for a in report.attempts if a.outcome == "relaunched"]
    assert report.recompute_seconds == sum(a.busy_seconds
                                           for a in relaunched)
    for attempt in relaunched:
        assert attempt.cause is not None


def test_eviction_free_run_has_no_relaunches():
    for make_engine in ENGINES.values():
        tracer = Tracer()
        result = make_engine().run(
            mr_synthetic_program(scale=0.02),
            ClusterConfig(num_reserved=2, num_transient=4), seed=0,
            tracer=tracer)
        report = analyze_eviction_lineage(tracer.events)
        report.verify_against(result)
        assert report.relaunched_tasks == 0
        assert report.recompute_seconds == 0.0
        assert not tracer.of_kind(Relaunch)


def test_committed_attempts_commit_after_start():
    tracer = Tracer()
    PadoEngine().run(mr_synthetic_program(scale=0.02),
                     ClusterConfig(num_reserved=2, num_transient=4),
                     seed=0, tracer=tracer)
    report = analyze_eviction_lineage(tracer.events)
    committed = [a for a in report.attempts if a.outcome == "committed"]
    assert committed
    assert len(committed) == len(tracer.of_kind(TaskCommitted))
    for attempt in committed:
        assert attempt.end >= attempt.start
