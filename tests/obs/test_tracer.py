"""Tracer, collector, and the disabled-by-default guarantee."""

from repro import ClusterConfig, PadoEngine
from repro.obs import (TaskStart, TraceCollector, Tracer, active_collector,
                       collecting, install_collector, uninstall_collector)
from repro.obs.events import Eviction
from repro.workloads import mr_synthetic_program

from tests.obs.conftest import small_program, stormy_cluster


def test_tracer_records_in_order():
    tracer = Tracer()
    a = Eviction(time=1.0, container=1, resource="transient",
                 cause="eviction")
    b = TaskStart(time=2.0, stage=0, task="t", index=0, attempt=0,
                  executor=1, resource="transient")
    tracer.emit(a)
    tracer.emit(b)
    assert list(tracer) == [a, b]
    assert len(tracer) == 2
    assert tracer.of_kind(TaskStart) == [b]


def test_untraced_run_records_nothing():
    """No tracer and no collector: the engines never allocate a tracer, so
    the run is observationally identical to a traced one."""
    uninstall_collector()
    cluster, program = stormy_cluster(), small_program()
    bare = PadoEngine().run(program, cluster, seed=3)
    tracer = Tracer()
    traced = PadoEngine().run(small_program(), stormy_cluster(), seed=3,
                              tracer=tracer)
    assert len(tracer) > 0
    assert bare.jct_seconds == traced.jct_seconds
    assert bare.launched_tasks == traced.launched_tasks
    assert bare.evictions == traced.evictions


def test_collector_labels_every_run():
    with collecting() as collector:
        program = mr_synthetic_program(scale=0.02)
        cluster = ClusterConfig(num_reserved=2, num_transient=4)
        PadoEngine().run(program, cluster, seed=0)
        PadoEngine().run(program, cluster, seed=0)  # duplicate label
    assert active_collector() is None
    labels = [label for label, _ in collector.runs]
    assert labels == ["pado-mr-seed0", "pado-mr-seed0-2"]
    for _, tracer in collector.runs:
        assert len(tracer) > 0


def test_collecting_restores_previous_collector():
    outer = TraceCollector()
    install_collector(outer)
    try:
        with collecting() as inner:
            assert active_collector() is inner
        assert active_collector() is outer
    finally:
        uninstall_collector()
    assert active_collector() is None


def test_explicit_tracer_wins_over_collector():
    mine = Tracer()
    with collecting() as collector:
        PadoEngine().run(mr_synthetic_program(scale=0.02),
                         ClusterConfig(num_reserved=2, num_transient=4),
                         seed=0, tracer=mine)
    assert collector.runs == []
    assert len(mine) > 0


def test_dump_writes_jsonl_and_chrome_files(tmp_path):
    with collecting() as collector:
        PadoEngine().run(mr_synthetic_program(scale=0.02),
                         ClusterConfig(num_reserved=2, num_transient=4),
                         seed=0)
    paths = collector.dump(tmp_path)
    names = sorted(p.name for p in paths)
    assert names == ["pado-mr-seed0.jsonl", "pado-mr-seed0.trace.json"]
    for path in paths:
        assert path.exists() and path.stat().st_size > 0
