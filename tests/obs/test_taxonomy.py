"""The engine-neutral relaunch-cause taxonomy (Relaunch.category)."""

import math

from repro.obs import analyze_eviction_lineage
from repro.obs.events import (RELAUNCH_CAUSE_CATEGORIES, Relaunch,
                              event_from_dict, event_to_dict)

CATEGORIES = {"eviction", "fetch_broke", "upstream_lost", "master_restart"}


def test_taxonomy_covers_every_documented_cause():
    documented = {"eviction", "reserved-fault", "fetch-failed", "repair",
                  "local-output-lost", "lineage-recompute", "master-restart"}
    assert set(RELAUNCH_CAUSE_CATEGORIES) == documented
    assert set(RELAUNCH_CAUSE_CATEGORIES.values()) <= CATEGORIES


def test_category_autofilled_from_cause():
    event = Relaunch(time=1.0, stage=0, task="map", index=0, attempt=0,
                     cause="lineage-recompute")
    assert event.category == "upstream_lost"
    unknown = Relaunch(time=1.0, stage=0, task="map", index=0, attempt=0,
                       cause="something-new")
    assert unknown.category == "other"


def test_category_survives_serialization():
    event = Relaunch(time=2.0, stage=1, task="reduce", index=3, attempt=1,
                     cause="reserved-fault", cause_ref=4)
    restored = event_from_dict(event_to_dict(event))
    assert restored == event
    assert restored.category == "eviction"


def test_traced_relaunches_carry_consistent_categories(traced_run):
    """Every engine's relaunches map onto the shared category vocabulary,
    and the per-engine mechanisms land in the expected buckets."""
    name, tracer, _ = traced_run
    relaunches = tracer.of_kind(Relaunch)
    assert relaunches  # the stormy cluster forces some
    for event in relaunches:
        assert event.category == RELAUNCH_CAUSE_CATEGORIES[event.cause]
        assert event.category in CATEGORIES
    categories = {event.category for event in relaunches}
    if name == "pado":
        # Pado relaunches only direct eviction victims (§3.2.5); a broken
        # boundary fetch (receiver died mid-pull) may also surface.
        assert "eviction" in categories
        assert "upstream_lost" not in categories
    else:
        # Spark's critical chain re-runs completed upstream producers.
        assert "upstream_lost" in categories


def test_lineage_by_category_folds_by_cause(traced_run):
    _, tracer, _ = traced_run
    report = analyze_eviction_lineage(tracer.events)
    folded = report.by_category
    assert sum(i.relaunched_tasks for i in folded.values()) == \
        sum(i.relaunched_tasks for i in report.by_cause.values())
    assert math.isclose(sum(i.recompute_seconds for i in folded.values()),
                        report.recompute_seconds, rel_tol=1e-9, abs_tol=1e-9)
    for category, impact in folded.items():
        assert category in CATEGORIES | {"other"}
        assert impact.relaunched_tasks == len(impact.tasks)
