"""Time-breakdown reports derived from traces."""

import math

import pytest

from repro.metrics.utilization import EfficiencyReport
from repro.obs import (DURATION_BUCKETS, DiskIO, analyze_eviction_lineage,
                       build_report, efficiency_with_breakdown)

from tests.obs.conftest import stormy_cluster


def test_breakdown_totals_match_lineage(traced_run):
    _, tracer, _ = traced_run
    report = build_report(tracer.events)
    lineage = analyze_eviction_lineage(tracer.events)
    committed = sum(a.busy_seconds for a in lineage.attempts
                    if a.outcome == "committed")
    relaunched = sum(a.busy_seconds for a in lineage.attempts
                     if a.outcome == "relaunched")
    assert math.isclose(
        sum(b.compute_seconds for b in report.breakdowns.values()),
        committed)
    assert math.isclose(
        sum(b.recompute_seconds for b in report.breakdowns.values()),
        relaunched)
    assert report.evictions_with_cost == len(lineage.by_eviction)


def test_histogram_counts_every_committed_attempt(traced_run):
    _, tracer, _ = traced_run
    report = build_report(tracer.events)
    lineage = analyze_eviction_lineage(tracer.events)
    committed = sum(1 for a in lineage.attempts
                    if a.outcome == "committed")
    assert [bound for bound, _ in report.duration_histogram] == \
        list(DURATION_BUCKETS)
    assert sum(count for _, count in report.duration_histogram) == committed


def test_transfer_seconds_positive_and_classed(traced_run):
    _, tracer, _ = traced_run
    report = build_report(tracer.events)
    classes = set(report.breakdowns)
    assert "transient" in classes
    assert sum(b.transfer_seconds
               for b in report.breakdowns.values()) > 0.0


def test_idle_requires_result_and_cluster(traced_run):
    _, tracer, result = traced_run
    bare = build_report(tracer.events)
    assert all(b.idle_seconds is None for b in bare.breakdowns.values())
    full = build_report(tracer.events, result=result,
                        cluster=stormy_cluster())
    for resource in ("reserved", "transient"):
        assert full.breakdowns[resource].idle_seconds is not None
        assert full.breakdowns[resource].idle_seconds >= 0.0


def test_render_is_readable(traced_run):
    _, tracer, result = traced_run
    text = build_report(tracer.events, result=result,
                        cluster=stormy_cluster()).render()
    assert "time breakdown" in text
    assert "transient" in text
    assert "relaunches:" in text


def test_disk_bytes_surfaced_per_container(traced_run):
    _, tracer, _ = traced_run
    report = build_report(tracer.events)
    ok_io = [e for e in tracer.events if isinstance(e, DiskIO) and e.ok]
    assert ok_io, "every engine spills local outputs to disk"
    assert report.disk_bytes_by_container is not None
    assert set(report.disk_bytes_by_container) == \
        {e.container for e in ok_io}
    total = sum(read + written
                for read, written in report.disk_bytes_by_container.values())
    assert total == pytest.approx(sum(e.size_bytes for e in ok_io))
    assert "local disk I/O per container" in report.render()


def test_efficiency_with_breakdown_pairs_both_views(traced_run):
    _, tracer, result = traced_run
    efficiency, obs = efficiency_with_breakdown(result, stormy_cluster(),
                                                tracer.events)
    assert isinstance(efficiency, EfficiencyReport)
    assert obs.lineage.starts == result.launched_tasks
