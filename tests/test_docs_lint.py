"""Documentation stays in sync with the code: scripts/check_docs.py."""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_docs.py"


def test_check_docs_passes():
    proc = subprocess.run([sys.executable, str(SCRIPT)], cwd=REPO,
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_check_docs_catches_undocumented_package(tmp_path):
    """The lint actually fails when a package is missing from the map."""
    import importlib.util
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    check_docs = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check_docs)

    packages = check_docs.repro_packages()
    assert "repro" in packages and "repro.obs" in packages

    text = check_docs.ARCHITECTURE.read_text().replace("repro.obs", "")
    stripped = tmp_path / "ARCHITECTURE.md"
    stripped.write_text(text)
    original = check_docs.ARCHITECTURE
    try:
        check_docs.ARCHITECTURE = stripped
        problems = check_docs.check_architecture_mentions()
    finally:
        check_docs.ARCHITECTURE = original
    assert any("repro.obs" in problem for problem in problems)


def test_check_docs_catches_broken_snippet(tmp_path):
    import importlib.util
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    check_docs = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check_docs)

    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "# x\n```python\ndef broken(:\n```\n")
    original = check_docs.REPO
    try:
        check_docs.REPO = tmp_path
        problems = check_docs.check_code_blocks()
    finally:
        check_docs.REPO = original
    assert len(problems) == 1
    assert "does not parse" in problems[0]
