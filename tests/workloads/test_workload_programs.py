"""Unit tests for the workload program builders."""

import numpy as np
import pytest

from repro.dataflow import LocalRunner
from repro.errors import WorkloadError
from repro.workloads import (ShuffleCombiner, VectorSumCombiner,
                             als_real_program, als_synthetic_program,
                             mlr_real_program, mlr_synthetic_program,
                             mr_real_program, mr_synthetic_program,
                             pageview_records)


class TestShuffleCombiner:
    def test_merge_sums_values(self):
        combiner = ShuffleCombiner()
        assert combiner.merge(2, 3) == 5

    def test_merged_size_with_overlap(self):
        combiner = ShuffleCombiner(overlap=0.5)
        # total 30, overlap saves 0.5 * (30 - 20) = 5.
        assert combiner.merged_size_bytes([10.0, 20.0]) == 25.0

    def test_zero_overlap_is_plain_sum(self):
        assert ShuffleCombiner(overlap=0.0).merged_size_bytes(
            [10.0, 20.0]) == 30.0

    def test_overlap_validated(self):
        with pytest.raises(ValueError):
            ShuffleCombiner(overlap=1.0)


class TestVectorSumCombiner:
    def test_merged_size_never_grows(self):
        assert VectorSumCombiner().merged_size_bytes(
            [323.0, 323.0, 323.0]) == 323.0

    def test_merge_adds_arrays(self):
        combiner = VectorSumCombiner()
        out = combiner.merge(np.ones(3), 2 * np.ones(3))
        np.testing.assert_array_equal(out, 3 * np.ones(3))


class TestMrPrograms:
    def test_real_mr_sums_pageviews(self):
        program = mr_real_program(num_docs=10, num_records=200,
                                  num_partitions=4, seed=3)
        result = LocalRunner().run(program.dag)
        totals = dict(result.collect("reduce"))
        records = pageview_records(10, 200, 3)
        expected = {}
        for doc, views in records:
            expected[doc] = expected.get(doc, 0) + views
        assert totals == expected

    def test_synthetic_mr_scales_task_count(self):
        small = mr_synthetic_program(scale=0.1)
        big = mr_synthetic_program(scale=0.2)
        assert big.dag.operator("read").parallelism == \
            2 * small.dag.operator("read").parallelism
        # Per-task partition size is scale-invariant.
        assert small.dag.operator("read").partition_bytes[0] == \
            big.dag.operator("read").partition_bytes[0]

    def test_scale_validated(self):
        with pytest.raises(WorkloadError):
            mr_synthetic_program(scale=0.0)


class TestMlrPrograms:
    def test_real_mlr_reduces_loss(self):
        """Gradient descent over the synthetic data actually learns: the
        final model classifies the training set better than chance."""
        program = mlr_real_program(num_samples=150, iterations=5,
                                   learning_rate=0.05, seed=1)
        result = LocalRunner().run(program.dag)
        weights = result.collect("model_5")[0]
        from repro.workloads.datasets import training_samples
        samples = training_samples(150, 8, 3, 1)
        accuracy = np.mean([np.argmax(weights @ x) == label
                            for x, label in samples])
        assert accuracy > 0.55

    def test_models_change_each_iteration(self):
        program = mlr_real_program(iterations=3)
        result = LocalRunner().run(program.dag)
        m1 = result.collect("model_1")[0]
        m2 = result.collect("model_2")[0]
        assert not np.allclose(m1, m2)

    def test_synthetic_mlr_structure(self):
        program = mlr_synthetic_program(iterations=5, scale=0.1)
        dag = program.dag
        assert dag.operator("grad_3").parallelism == \
            dag.operator("read").parallelism
        assert dag.operator("model_5").parallelism == 1
        assert len(dag.operators) == 2 + 3 * 5

    def test_gradient_sizes_fixed(self):
        program = mlr_synthetic_program(scale=0.1, gradient_mb=323.0)
        grad = program.dag.operator("grad_1")
        assert grad.cost.fixed_output_bytes == int(323 * 1024 * 1024)


class TestAlsPrograms:
    def test_real_als_reduces_error(self):
        """ALS factors reconstruct the ratings far better than the mean
        predictor after two iterations."""
        program = als_real_program(iterations=4, seed=0)
        result = LocalRunner().run(program.dag)
        item_factors = dict(result.collect("item_factor_4"))
        # Recompute user factors from item factors and measure fit.
        from repro.workloads.datasets import music_ratings
        ratings = music_ratings(40, 15, 400, 0)
        by_user = {}
        for u, i, r in ratings:
            by_user.setdefault(u, []).append((i, r))
        errors, base = [], []
        mean_rating = np.mean([r for _, _, r in ratings])
        for u, pairs in by_user.items():
            a = 0.1 * np.eye(3)
            b = np.zeros(3)
            for i, r in pairs:
                q = item_factors[i]
                a += np.outer(q, q)
                b += r * q
            p = np.linalg.solve(a, b)
            for i, r in pairs:
                errors.append((p @ item_factors[i] - r) ** 2)
                base.append((mean_rating - r) ** 2)
        assert np.mean(errors) < 0.5 * np.mean(base)

    def test_synthetic_als_structure(self):
        program = als_synthetic_program(iterations=3, scale=0.2)
        dag = program.dag
        assert len(dag.operators) == 3 + 3 * 3
        assert dag.operator("item_factor_3").parallelism == \
            dag.operator("agg_user").parallelism

    def test_item_shuffle_routes_by_item(self):
        """The read->agg_item edge must partition by item, not user."""
        program = als_real_program(iterations=1)
        dag = program.dag
        edge = [e for e in dag.in_edges(dag.operator("agg_item"))][0]
        assert edge.key_fn is not None
        assert edge.key_fn((7, (3, 4.5))) == 3
