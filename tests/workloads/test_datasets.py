"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.workloads.datasets import (music_ratings, pageview_records,
                                      partition, training_samples)


def test_partition_round_robin():
    parts = partition(list(range(7)), 3)
    assert parts == [[0, 3, 6], [1, 4], [2, 5]]


def test_partition_rejects_zero():
    with pytest.raises(ValueError):
        partition([1], 0)


def test_music_ratings_shape_and_ranges():
    ratings = music_ratings(num_users=10, num_items=5, num_ratings=50,
                            seed=1)
    assert len(ratings) == 50
    for user, item, score in ratings:
        assert 0 <= user < 10
        assert 0 <= item < 5
        assert isinstance(score, float)


def test_music_ratings_deterministic():
    assert music_ratings(seed=3) == music_ratings(seed=3)
    assert music_ratings(seed=3) != music_ratings(seed=4)


def test_music_ratings_low_rank_structure():
    """Ratings come from a rank-3 model plus small noise, so ALS can
    recover them: the rating variance is far above the noise level."""
    ratings = music_ratings(num_users=50, num_items=20, num_ratings=500,
                            seed=0)
    scores = np.array([r for _, _, r in ratings])
    assert scores.std() > 0.5


def test_training_samples_labels_in_range():
    samples = training_samples(num_samples=40, num_features=6,
                               num_classes=4, seed=2)
    assert len(samples) == 40
    for x, label in samples:
        assert x.shape == (6,)
        assert 0 <= label < 4
    assert len({label for _, label in samples}) > 1


def test_pageview_records_skewed():
    records = pageview_records(num_docs=20, num_records=500, seed=1)
    assert len(records) == 500
    counts = {}
    for doc, views in records:
        assert views >= 1
        counts[doc] = counts.get(doc, 0) + 1
    # Zipf-ish: the most popular doc appears far more often than the rarest.
    assert max(counts.values()) > 3 * min(counts.values())
