"""Shared test helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

# Property tests must be reproducible run-to-run (the simulator itself is
# deterministic; keep the example generation deterministic too).
settings.register_profile("repro", derandomize=True)
settings.load_profile("repro")


def records_equal(left: list, right: list, atol: float = 1e-8) -> bool:
    """Order-insensitive record-list equality that tolerates numpy payloads
    and the float-summation-order differences between engines."""
    if len(left) != len(right):
        return False
    key = lambda r: repr(_round(r))[:200]
    for a, b in zip(sorted(left, key=key), sorted(right, key=key)):
        if not _one_equal(a, b, atol):
            return False
    return True


def _round(record):
    if isinstance(record, float):
        return round(record, 6)
    if isinstance(record, np.ndarray):
        return np.round(record, 6).tolist()
    if isinstance(record, tuple):
        return tuple(_round(x) for x in record)
    if isinstance(record, list):
        return [_round(x) for x in record]
    return record


def _one_equal(a, b, atol) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (np.asarray(a).shape == np.asarray(b).shape
                and np.allclose(a, b, atol=atol))
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(
            _one_equal(x, y, atol) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return abs(a - b) <= atol + 1e-6 * abs(b)
    return a == b


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
