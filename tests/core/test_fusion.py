"""Unit tests for operator fusion (§3.2.2)."""

import pytest

from repro.core.compiler.fusion import FusedOperator, fuse_operators
from repro.core.compiler.placement import place_operators
from repro.dataflow.dag import (DependencyType, LogicalDAG, OpCost, Operator,
                                Placement, SourceKind)
from repro.dataflow.functions import MapFn
from repro.errors import CompilerError

OO = DependencyType.ONE_TO_ONE
OM = DependencyType.ONE_TO_MANY
MM = DependencyType.MANY_TO_MANY


def read_source(name="read", parallelism=3, partitions=None):
    from repro.dataflow.transforms import _ReadPartitionFn
    fn = _ReadPartitionFn(partitions) if partitions is not None else None
    if partitions is not None:
        parallelism = len(partitions)
    return Operator(name, parallelism=parallelism, fn=fn,
                    source_kind=SourceKind.READ, input_ref=name,
                    partition_bytes=None if partitions else [1] * parallelism)


def test_fuses_one_to_one_chain():
    dag = LogicalDAG()
    read = dag.add_operator(read_source())
    a = dag.add_operator(Operator("a", parallelism=3))
    b = dag.add_operator(Operator("b", parallelism=3))
    dag.connect(read, a, OO)
    dag.connect(a, b, OO)
    place_operators(dag)
    chains = fuse_operators(dag, dag.operators)
    assert len(chains) == 1
    assert chains[0].name == "read+a+b"
    assert chains[0].head is read and chains[0].terminal is b


def test_wide_edge_breaks_chain():
    dag = LogicalDAG()
    read = dag.add_operator(read_source())
    red = dag.add_operator(Operator("red", parallelism=2))
    dag.connect(read, red, MM)
    place_operators(dag)
    chains = fuse_operators(dag, dag.operators)
    assert sorted(c.name for c in chains) == ["read", "red"]


def test_branching_breaks_chain():
    dag = LogicalDAG()
    read = dag.add_operator(read_source())
    a = dag.add_operator(Operator("a", parallelism=3))
    b = dag.add_operator(Operator("b", parallelism=3))
    dag.connect(read, a, OO)
    dag.connect(read, b, OO)
    place_operators(dag)
    chains = fuse_operators(dag, dag.operators)
    assert sorted(c.name for c in chains) == ["a", "b", "read"]


def test_placement_mismatch_breaks_chain():
    dag = LogicalDAG()
    read = dag.add_operator(read_source())
    a = dag.add_operator(Operator("a", parallelism=3))
    dag.connect(read, a, OO)
    place_operators(dag)
    a.placement = Placement.RESERVED  # pretend
    assert len(fuse_operators(dag, dag.operators)) == 2
    assert len(fuse_operators(dag, dag.operators,
                              require_same_placement=False)) == 1


def test_external_inputs_allowed_mid_chain():
    """A broadcast side input does not break fusion (MLR's Read+Gradient)."""
    dag = LogicalDAG()
    read = dag.add_operator(read_source())
    model = dag.add_operator(Operator(
        "model", parallelism=1, source_kind=SourceKind.CREATED,
        cost=OpCost(fixed_output_bytes=10)))
    grad = dag.add_operator(Operator("grad", parallelism=3))
    dag.connect(read, grad, OO)
    dag.connect(model, grad, OM)
    place_operators(dag)
    chains = fuse_operators(dag, [read, grad])
    assert len(chains) == 1
    chain = chains[0]
    assert chain.name == "read+grad"
    assert [e.src.name for e in chain.external_in_edges()] == ["model"]


def test_apply_runs_whole_chain():
    dag = LogicalDAG()
    read = dag.add_operator(read_source(partitions=[[1, 2], [3]]))
    double = dag.add_operator(Operator("double", parallelism=2,
                                       fn=MapFn(lambda x: x * 2)))
    inc = dag.add_operator(Operator("inc", parallelism=2,
                                    fn=MapFn(lambda x: x + 1)))
    dag.connect(read, double, OO)
    dag.connect(double, inc, OO)
    place_operators(dag)
    chain = fuse_operators(dag, dag.operators)[0]
    assert chain.apply(0, {}) == [3, 5]
    assert chain.apply(1, {}) == [7]


def test_apply_requires_functions():
    dag = LogicalDAG()
    dag.add_operator(read_source())
    place_operators(dag)
    chain = fuse_operators(dag, dag.operators)[0]
    with pytest.raises(CompilerError):
        chain.apply(0, {})


def test_synthetic_output_bytes_flows_through_cost():
    dag = LogicalDAG()
    read = dag.add_operator(read_source(parallelism=2))
    half = dag.add_operator(Operator("half", parallelism=2,
                                     cost=OpCost(output_ratio=0.5)))
    fixed = dag.add_operator(Operator("fixed", parallelism=2,
                                      cost=OpCost(fixed_output_bytes=7)))
    dag.connect(read, half, OO)
    dag.connect(half, fixed, OO)
    place_operators(dag)
    chain = fuse_operators(dag, dag.operators)[0]
    # Source bytes enter under the source op's own name.
    assert chain.synthetic_output_bytes({"read": 100.0}) == 7.0
    mid = fuse_operators(dag, [read, half])[0]
    assert mid.synthetic_output_bytes({"read": 100.0}) == 50.0


def test_compute_seconds_accumulates_along_chain():
    dag = LogicalDAG()
    read = dag.add_operator(read_source(parallelism=1))
    work = dag.add_operator(Operator(
        "work", parallelism=1,
        cost=OpCost(compute_factor=2.0, fixed_compute_seconds=1.0)))
    dag.connect(read, work, OO)
    place_operators(dag)
    chain = fuse_operators(dag, dag.operators)[0]
    # read: 100 bytes at 10 B/s = 10 s; work: 100 bytes * 2 / 10 + 1 = 21 s.
    assert chain.compute_seconds(100.0, 10.0) == pytest.approx(31.0)


def test_mixed_parallelism_rejected():
    dag = LogicalDAG()
    a = dag.add_operator(read_source("a", parallelism=2))
    b = dag.add_operator(read_source("b", parallelism=3))
    with pytest.raises(CompilerError):
        FusedOperator(dag, [a, b])


def test_duplicate_ops_rejected():
    dag = LogicalDAG()
    a = dag.add_operator(read_source("a"))
    with pytest.raises(CompilerError):
        fuse_operators(dag, [a, a])
