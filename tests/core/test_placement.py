"""Unit tests for Algorithm 1 (operator placement)."""

import pytest

from repro.core.compiler.placement import (check_placement, place_operators,
                                           recomputation_weight)
from repro.dataflow.dag import (DependencyType, LogicalDAG, Operator,
                                Placement, SourceKind)
from repro.errors import CompilerError

OO = DependencyType.ONE_TO_ONE
OM = DependencyType.ONE_TO_MANY
MO = DependencyType.MANY_TO_ONE
MM = DependencyType.MANY_TO_MANY


def read_source(name="read", parallelism=4):
    return Operator(name, parallelism=parallelism,
                    source_kind=SourceKind.READ, input_ref=name,
                    partition_bytes=[1] * parallelism)


def created_source(name="created", parallelism=1):
    from repro.dataflow.dag import OpCost
    return Operator(name, parallelism=parallelism,
                    source_kind=SourceKind.CREATED,
                    cost=OpCost(fixed_output_bytes=1))


def test_read_source_goes_transient():
    dag = LogicalDAG()
    dag.add_operator(read_source())
    place_operators(dag)
    assert dag.operator("read").placement is Placement.TRANSIENT


def test_created_source_goes_reserved():
    dag = LogicalDAG()
    dag.add_operator(created_source())
    place_operators(dag)
    assert dag.operator("created").placement is Placement.RESERVED


@pytest.mark.parametrize("dep", [MM, MO])
def test_wide_consumer_goes_reserved(dep):
    dag = LogicalDAG()
    src = dag.add_operator(read_source())
    consumer = dag.add_operator(Operator("c", parallelism=2))
    dag.connect(src, consumer, dep)
    place_operators(dag)
    assert consumer.placement is Placement.RESERVED


def test_any_wide_edge_forces_reserved():
    """ANYMATCH: one wide edge among several narrow ones is enough."""
    dag = LogicalDAG()
    a = dag.add_operator(read_source("a"))
    b = dag.add_operator(read_source("b", parallelism=2))
    consumer = dag.add_operator(Operator("c", parallelism=2))
    dag.connect(a, consumer, MM)
    dag.connect(b, consumer, OO)
    place_operators(dag)
    assert consumer.placement is Placement.RESERVED


def test_narrow_consumer_of_transient_goes_transient():
    dag = LogicalDAG()
    src = dag.add_operator(read_source())
    mapper = dag.add_operator(Operator("map", parallelism=4))
    dag.connect(src, mapper, OO)
    place_operators(dag)
    assert mapper.placement is Placement.TRANSIENT


def test_locality_rule_all_one_to_one_from_reserved():
    """ALLMATCH o-o + ALLFROM reserved -> reserved (data locality)."""
    dag = LogicalDAG()
    src = dag.add_operator(read_source())
    agg = dag.add_operator(Operator("agg", parallelism=2))
    follow = dag.add_operator(Operator("follow", parallelism=2))
    dag.connect(src, agg, MM)
    dag.connect(agg, follow, OO)
    place_operators(dag)
    assert follow.placement is Placement.RESERVED


def test_locality_rule_needs_all_edges_one_to_one():
    """A broadcast edge alongside the o-o edge breaks the locality rule."""
    dag = LogicalDAG()
    src = dag.add_operator(read_source())
    agg = dag.add_operator(Operator("agg", parallelism=2))
    model = dag.add_operator(created_source("model"))
    follow = dag.add_operator(Operator("follow", parallelism=2))
    dag.connect(src, agg, MM)
    dag.connect(agg, follow, OO)
    dag.connect(model, follow, OM)
    place_operators(dag)
    assert follow.placement is Placement.TRANSIENT


def test_locality_rule_needs_all_parents_reserved():
    dag = LogicalDAG()
    a = dag.add_operator(read_source("a", parallelism=2))
    agg = dag.add_operator(Operator("agg", parallelism=2))
    other = dag.add_operator(read_source("other", parallelism=2))
    follow = dag.add_operator(Operator("follow", parallelism=2))
    dag.connect(a, agg, MM)
    dag.connect(agg, follow, OO)
    dag.connect(other, follow, OO)
    place_operators(dag)
    assert follow.placement is Placement.TRANSIENT


def test_broadcast_consumer_stays_transient():
    """o-m in-edges alone never force reserved placement."""
    dag = LogicalDAG()
    model = dag.add_operator(created_source("model"))
    data = dag.add_operator(read_source("data"))
    worker = dag.add_operator(Operator("worker", parallelism=4))
    dag.connect(data, worker, OO)
    dag.connect(model, worker, OM)
    place_operators(dag)
    assert worker.placement is Placement.TRANSIENT


def test_source_without_kind_rejected():
    from repro.errors import ReproError
    dag = LogicalDAG()
    dag.add_operator(Operator("mystery", parallelism=1, fn=lambda i: []))
    with pytest.raises(ReproError):
        place_operators(dag)


def test_check_placement_catches_unplaced():
    dag = LogicalDAG()
    dag.add_operator(read_source())
    with pytest.raises(CompilerError):
        check_placement(dag)


def test_check_placement_catches_transient_wide_consumer():
    dag = LogicalDAG()
    src = dag.add_operator(read_source())
    consumer = dag.add_operator(Operator("c", parallelism=2))
    dag.connect(src, consumer, MM)
    place_operators(dag)
    consumer.placement = Placement.TRANSIENT  # corrupt
    with pytest.raises(CompilerError):
        check_placement(dag)


def test_recomputation_weight():
    dag = LogicalDAG()
    src = dag.add_operator(read_source(parallelism=6))
    narrow = dag.add_operator(Operator("n", parallelism=6))
    wide = dag.add_operator(Operator("w", parallelism=3))
    collect = dag.add_operator(Operator("m", parallelism=2))
    dag.connect(src, narrow, OO)
    dag.connect(narrow, wide, MM)
    dag.connect(narrow, collect, MO)
    assert recomputation_weight(dag, narrow) == 1
    assert recomputation_weight(dag, wide) == 6
    assert recomputation_weight(dag, collect) == 3
