"""Unit tests for execution-plan generation (§3.2.2)."""

import pytest

from repro.core.compiler import compile_program
from repro.core.runtime.plan import build_execution_plan
from repro.dataflow.dag import Placement
from repro.workloads import (als_synthetic_program, mlr_synthetic_program,
                             mr_synthetic_program)


def plan_for(program):
    return build_execution_plan(compile_program(program.dag))


def test_mr_plan_structure():
    plan = plan_for(mr_synthetic_program(scale=0.05))
    assert len(plan.stages) == 1
    stage = plan.stages[0]
    assert stage.has_reserved_root
    # Read and Map fuse into one transient chain.
    assert [c.name for c in stage.transient_chains] == ["read+map"]
    assert stage.root_chain.name == "reduce"
    # One inter-chain edge: the shuffle into the root.
    assert len(stage.inter_chain_edges) == 1
    ice = stage.inter_chain_edges[0]
    assert ice.producer.name == "read+map"
    assert ice.consumer is stage.root_chain


def test_mlr_plan_fuses_read_with_gradient():
    plan = plan_for(mlr_synthetic_program(iterations=2, scale=0.05))
    grad_stages = [ps for ps in plan.stages
                   if ps.root_chain.name.startswith("agg_")]
    assert len(grad_stages) == 2
    for ps in grad_stages:
        assert len(ps.transient_chains) == 1
        chain = ps.transient_chains[0]
        assert chain.name.startswith("read+grad_")
        # The broadcast model is a boundary input of the fused chain.
        boundary = ps.boundary_edges(chain)
        assert len(boundary) == 1
        assert boundary[0].src.name.startswith("model_")


def test_model_stage_has_no_transient_chains():
    plan = plan_for(mlr_synthetic_program(iterations=1, scale=0.05))
    model_stage = [ps for ps in plan.stages
                   if ps.root_chain.name == "model_1"][0]
    assert model_stage.transient_chains == []
    boundary = model_stage.boundary_edges(model_stage.root_chain)
    assert sorted(e.src.name for e in boundary) == ["agg_1", "model_0"]


def test_task_counts():
    program = mr_synthetic_program(scale=0.05)
    plan = plan_for(program)
    num_maps = program.dag.operator("read").parallelism
    reduce_par = program.dag.operator("reduce").parallelism
    assert plan.stages[0].task_count == num_maps + reduce_par
    assert plan.total_tasks == num_maps + reduce_par


def test_parent_indices_topological():
    plan = plan_for(als_synthetic_program(iterations=1, scale=0.1))
    for ps in plan.stages:
        for parent_idx in plan.parent_indices(ps):
            assert parent_idx < ps.index


def test_stage_of_reserved_op_lookup():
    plan = plan_for(mr_synthetic_program(scale=0.05))
    assert plan.stage_of_reserved_op("reduce") is plan.stages[0]
    from repro.errors import CompilerError
    with pytest.raises(CompilerError):
        plan.stage_of_reserved_op("map")


def test_transient_sink_stage():
    """A DAG ending on transient operators forms a transient-root stage."""
    from repro.dataflow import Pipeline
    p = Pipeline()
    data = p.read("r", partitions=[[1], [2]])
    data.map("m", lambda x: x)
    from repro.engines.base import Program
    plan = plan_for(Program(p.to_dag(), "maponly"))
    assert len(plan.stages) == 1
    stage = plan.stages[0]
    assert not stage.has_reserved_root
    assert stage.root_chain.placement is Placement.TRANSIENT
    assert stage.task_count == 2
