"""White-box tests of Pado runtime mechanisms (§3.2.4-3.2.7)."""

from repro import ClusterConfig, PadoEngine, PadoRuntimeConfig
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import mlr_synthetic_program, mr_synthetic_program


class _Instrumented(PadoEngine):
    """Pado engine exposing its master for white-box inspection."""

    def __init__(self, config=None):
        super().__init__(config)
        self.master = None

    def _start(self, ctx, program):
        self.master = super()._start(ctx, program)
        return self.master


def test_fetch_coalescing_one_model_transfer_per_executor():
    """§3.2.7: "it only needs to be sent once to the executors" — the
    model's boundary fetches coalesce per executor."""
    engine = _Instrumented()
    program = mlr_synthetic_program(iterations=1, scale=0.1)
    num_tasks = program.dag.operator("grad_1").parallelism
    model_bytes = program.dag.operator("model_0").cost.fixed_output_bytes
    cluster = ClusterConfig(num_reserved=2, num_transient=4)
    result = engine.run(program, cluster, seed=0)
    assert result.completed
    # Boundary traffic: 4 executors x 1 model fetch, plus the final
    # model-update stage pulls — far less than one fetch per task.
    assert result.bytes_shuffled < (4 + 4) * model_bytes
    assert num_tasks > 8  # the bound is meaningful


def test_affinity_routing_merges_same_executor_outputs():
    """Many-to-one outputs of one executor all reach the same receiver, so
    partial aggregation merges them (§3.2.7)."""
    engine = _Instrumented(PadoRuntimeConfig(aggregation_max_tasks=8,
                                             aggregation_max_delay=1e6))
    program = mlr_synthetic_program(iterations=1, scale=0.1)
    num_tasks = program.dag.operator("grad_1").parallelism
    grad_bytes = program.dag.operator("grad_1").cost.fixed_output_bytes
    result = engine.run(program, ClusterConfig(num_reserved=2,
                                               num_transient=4), seed=0)
    assert result.completed
    # 4 executors, 8-task batches: far fewer vector-sized pushes than tasks.
    pushes = result.bytes_pushed / grad_bytes
    assert pushes <= num_tasks / 2


def test_stage_drain_flushes_buffers():
    """With an enormous escape timer, buffers still flush when the stage
    runs out of tasks — the job must not hang."""
    config = PadoRuntimeConfig(aggregation_max_tasks=1000,
                               aggregation_max_delay=1e9)
    result = PadoEngine(config).run(
        mlr_synthetic_program(iterations=1, scale=0.05),
        ClusterConfig(num_reserved=2, num_transient=4), seed=0,
        time_limit=48 * 3600)
    assert result.completed


def test_reserved_receivers_assigned_round_robin():
    engine = _Instrumented()
    result = engine.run(mr_synthetic_program(scale=0.05),
                        ClusterConfig(num_reserved=3, num_transient=4),
                        seed=0)
    assert result.completed
    run = engine.master.stage_runs[0]
    executors = {root.executor.executor_id for root in run.root_tasks}
    assert len(executors) == 3  # all reserved executors participate


def test_stage_outputs_preserved_on_reserved():
    engine = _Instrumented()
    result = engine.run(mlr_synthetic_program(iterations=1, scale=0.05),
                        ClusterConfig(num_reserved=2, num_transient=4),
                        seed=0)
    assert result.completed
    for (op_name, idx), record in engine.master.outputs.items():
        assert record.executor.is_reserved
        assert record.available
        assert record.size >= 0


def test_relaunches_confined_to_running_stage():
    """§3.2.5: after heavy churn, commits equal at most launched attempts
    and every stage still completes exactly once."""
    engine = _Instrumented()
    result = engine.run(
        mlr_synthetic_program(iterations=2, scale=0.05),
        ClusterConfig(num_reserved=2, num_transient=4,
                      eviction=ExponentialLifetimeModel(200.0)),
        seed=9, time_limit=48 * 3600)
    assert result.completed
    master = engine.master
    assert all(run.status == run.DONE for run in master.stage_runs)
    # Exactly-once: every reserved receiver consumed each producer at most
    # once (arrived keys are unique by construction; check cardinality).
    for run in master.stage_runs:
        for root in run.root_tasks:
            assert len(root.consumed_keys) == len(set(root.consumed_keys))


def test_cache_eviction_under_small_capacity():
    """A tiny cache forces LRU churn but never breaks execution."""
    config = PadoRuntimeConfig(cache_fraction=1e-6)
    result = PadoEngine(config).run(
        mlr_synthetic_program(iterations=2, scale=0.05),
        ClusterConfig(num_reserved=2, num_transient=4), seed=0,
        time_limit=48 * 3600)
    assert result.completed
