"""Figure 3: compilation results of the three evaluation workloads.

These tests assert the *exact* placements and stage structure the paper
shows for Map-Reduce, Multinomial Logistic Regression, and Alternating
Least Squares (§3.1.3).
"""

import pytest

from repro.core.compiler import compile_program
from repro.dataflow.dag import Placement
from repro.workloads import (als_real_program, als_synthetic_program,
                             mlr_real_program, mlr_synthetic_program,
                             mr_real_program, mr_synthetic_program)

R = Placement.RESERVED.value
T = Placement.TRANSIENT.value


@pytest.mark.parametrize("make", [mr_real_program,
                                  lambda: mr_synthetic_program(scale=0.05)])
def test_figure3a_map_reduce(make):
    job = compile_program(make().dag)
    assert job.placement_summary() == {
        "read": T, "map": T, "reduce": R}
    # One stage: {Read, Map} on transient flowing into Reduce on reserved.
    assert job.num_stages == 1
    stage = job.stage_dag.stages[0]
    assert stage.root_op.name == "reduce"
    assert {op.name for op in stage.operators} == {"read", "map", "reduce"}


@pytest.mark.parametrize("make", [
    lambda: mlr_real_program(iterations=1),
    lambda: mlr_synthetic_program(iterations=1, scale=0.05)])
def test_figure3b_mlr_one_iteration(make):
    job = compile_program(make().dag)
    placements = job.placement_summary()
    assert placements["model_0"] == R        # Create 1st Model
    assert placements["read"] == T           # Read Training Data
    assert placements["grad_1"] == T         # Compute Gradient
    assert placements["agg_1"] == R          # Aggregate Gradients
    assert placements["model_1"] == R        # Compute 2nd Model
    # "there are three stages for the three operators on reserved
    # containers" (§3.1.3).
    assert job.num_stages == 3
    roots = [s.root_op.name for s in job.stage_dag.topological()]
    assert roots == ["model_0", "agg_1", "model_1"]
    agg_stage = job.stage_dag.stage_of_root(job.logical.operator("agg_1"))
    assert {op.name for op in agg_stage.operators} == \
        {"read", "grad_1", "agg_1"}


@pytest.mark.parametrize("make", [
    lambda: als_real_program(iterations=1),
    lambda: als_synthetic_program(iterations=1, scale=0.1)])
def test_figure3c_als_one_iteration(make):
    job = compile_program(make().dag)
    placements = job.placement_summary()
    assert placements["read"] == T
    assert placements["agg_user"] == R
    assert placements["agg_item"] == R
    assert placements["user_factor_1"] == T
    assert placements["agg_user_factor_1"] == R
    # "Compute 1st Item Factor operator only has a single one-to-one
    # incoming edge from reserved containers and is placed on reserved
    # containers to ensure data locality" (§3.1.3).
    assert placements["item_factor_1"] == R
    dag = job.logical
    item_edges = dag.in_edges(dag.operator("item_factor_1"))
    assert len(item_edges) == 1
    assert item_edges[0].dep_type.value == "one-to-one"
    # Four stages c-1..c-4, as in Figure 3(c).
    assert job.num_stages == 4
    roots = {s.root_op.name for s in job.stage_dag.stages}
    assert roots == {"agg_user", "agg_item", "agg_user_factor_1",
                     "item_factor_1"}
    # Read is absorbed into both aggregation stages.
    read_stages = job.stage_dag.stages_containing(dag.operator("read"))
    assert len(read_stages) == 2


def test_mlr_stage_count_grows_with_iterations():
    for k in (1, 2, 4):
        job = compile_program(
            mlr_synthetic_program(iterations=k, scale=0.05).dag)
        assert job.num_stages == 1 + 2 * k


def test_als_stage_count_grows_with_iterations():
    for k in (1, 2, 4):
        job = compile_program(
            als_synthetic_program(iterations=k, scale=0.1).dag)
        assert job.num_stages == 2 + 2 * k


def test_describe_mentions_every_operator():
    job = compile_program(mlr_real_program(iterations=1).dag)
    text = job.describe()
    for op in job.logical.operators:
        assert op.name in text
