"""Unit tests for the compiler entry point and CompiledJob helpers."""

import pytest

from repro.core.compiler import compile_program
from repro.dataflow import Pipeline, SumCombiner
from repro.errors import ReproError


def make_dag():
    p = Pipeline()
    data = p.read("read", partitions=[[("a", 1)], [("b", 2)]])
    data.reduce_by_key("agg", SumCombiner(), parallelism=2)
    return p.to_dag()


def test_compile_produces_consistent_job():
    job = compile_program(make_dag())
    assert job.num_stages == 1
    summary = job.placement_summary()
    assert summary == {"read": "transient", "agg": "reserved"}


def test_compile_is_idempotent():
    dag = make_dag()
    first = compile_program(dag).placement_summary()
    second = compile_program(dag).placement_summary()
    assert first == second


def test_describe_lists_stages_with_parents():
    p = Pipeline()
    data = p.read("read", partitions=[[("a", 1)], [("b", 2)]])
    agg = data.reduce_by_key("agg", SumCombiner(), parallelism=2)
    agg.map("post", lambda kv: kv).reduce_by_key(
        "agg2", SumCombiner(), parallelism=2)
    job = compile_program(p.to_dag())
    text = job.describe()
    assert "stage 0" in text and "stage 1" in text
    assert "(parents: 0)" in text


def test_compile_rejects_invalid_dag():
    from repro.dataflow.dag import LogicalDAG, Operator
    dag = LogicalDAG()
    dag.add_operator(Operator("floating", parallelism=1))
    with pytest.raises(ReproError):
        compile_program(dag)


def test_engine_base_max_events_guard():
    """The run loop's livelock valve fires rather than spinning forever."""
    from repro import ClusterConfig, PadoEngine
    from repro.errors import ExecutionError
    from repro.workloads import mr_synthetic_program
    with pytest.raises(ExecutionError):
        PadoEngine().run(mr_synthetic_program(scale=0.05),
                         ClusterConfig(num_reserved=2, num_transient=4),
                         seed=0, max_events=10)


def test_eviction_fires_before_transfers_at_same_instant():
    """EVICTION_PRIORITY orders container death before a transfer completing
    at the same timestamp, so in-flight data is conservatively lost."""
    from repro.cluster.events import Simulator
    from repro.cluster.network import (ContainerEndpoint, EVICTION_PRIORITY,
                                       NetworkModel)
    from repro.cluster.resources import NodeSpec, transient_container
    sim = Simulator()
    net = NetworkModel(sim, latency=0.0)
    mb = 1024 * 1024
    src_container = transient_container(1.0,
                                        spec=NodeSpec(network_bandwidth=mb))
    src = ContainerEndpoint(src_container)
    dst = ContainerEndpoint(transient_container(1e9))
    outcomes = []
    net.transfer(src, dst, mb, lambda r: outcomes.append(r.ok))  # ends at 1.0
    sim.schedule(1.0, lambda: src_container.evict(sim.now),
                 priority=EVICTION_PRIORITY)
    sim.run()
    assert outcomes == [False]
