"""Unit tests for task-output partial aggregation (§3.2.7)."""

import pytest

from repro.cluster.events import Simulator
from repro.core.runtime.aggregation import (AggregationBuffer, Contribution,
                                            merge_payloads)
from repro.dataflow.functions import SumCombiner
from repro.workloads.mlr import VectorSumCombiner


def make_buffer(sim, flushes, max_tasks=3, max_delay=5.0, keyed=False,
                combiner=None):
    return AggregationBuffer(sim, combiner or VectorSumCombiner(), keyed,
                             max_tasks=max_tasks, max_delay=max_delay,
                             flush_fn=flushes.append)


def contribution(key, size, payload=None):
    return Contribution(producer_key=key, size_bytes=size, payload=payload)


def test_flushes_at_max_tasks():
    sim = Simulator()
    flushes = []
    buffer = make_buffer(sim, flushes, max_tasks=2)
    buffer.add(contribution("t0", 100.0))
    assert flushes == []
    buffer.add(contribution("t1", 100.0))
    assert len(flushes) == 1
    assert len(flushes[0].contributions) == 2


def test_flushes_on_timer():
    sim = Simulator()
    flushes = []
    buffer = make_buffer(sim, flushes, max_tasks=10, max_delay=5.0)
    buffer.add(contribution("t0", 100.0))
    sim.run(until=4.9)
    assert flushes == []
    sim.run(until=5.1)
    assert len(flushes) == 1


def test_vector_sum_merged_size_is_max():
    """Gradient vectors merge without growing (§3.2.7 / §5.2.2)."""
    sim = Simulator()
    flushes = []
    buffer = make_buffer(sim, flushes, max_tasks=3)
    for i in range(3):
        buffer.add(contribution(f"t{i}", 323.0))
    assert flushes[0].merged_size_bytes == 323.0


def test_manual_flush_and_empty_flush():
    sim = Simulator()
    flushes = []
    buffer = make_buffer(sim, flushes)
    buffer.flush()  # empty: no-op
    assert flushes == []
    buffer.add(contribution("t0", 1.0))
    buffer.flush()
    assert len(flushes) == 1
    assert buffer.pending_count == 0


def test_discard_drops_pending_and_cancels_timer():
    sim = Simulator()
    flushes = []
    buffer = make_buffer(sim, flushes)
    buffer.add(contribution("t0", 1.0))
    lost = buffer.discard()
    assert [c.producer_key for c in lost] == ["t0"]
    sim.run()
    assert flushes == []


def test_real_payloads_merged_globally():
    sim = Simulator()
    flushes = []
    buffer = make_buffer(sim, flushes, max_tasks=2,
                         combiner=SumCombiner())
    buffer.add(contribution("t0", 8.0, payload=[3]))
    buffer.add(contribution("t1", 8.0, payload=[4]))
    assert flushes[0].merged_payload == [7]


def test_real_payloads_merged_per_key():
    sim = Simulator()
    flushes = []
    buffer = AggregationBuffer(sim, SumCombiner(), keyed=True, max_tasks=2,
                               max_delay=5.0, flush_fn=flushes.append)
    buffer.add(contribution("t0", 8.0, payload=[("a", 1), ("b", 2)]))
    buffer.add(contribution("t1", 8.0, payload=[("a", 10)]))
    assert flushes[0].merged_payload == [("a", 11), ("b", 2)]


def test_payloadless_contribution_skips_merge():
    sim = Simulator()
    flushes = []
    buffer = make_buffer(sim, flushes, max_tasks=2)
    buffer.add(contribution("t0", 8.0, payload=[1]))
    buffer.add(contribution("t1", 8.0, payload=None))
    assert flushes[0].merged_payload is None


def test_merge_payloads_global_and_keyed():
    combiner = SumCombiner()
    assert merge_payloads(combiner, [[1, 2], [3]], keyed=False) == [6]
    assert merge_payloads(combiner, [], keyed=False) == []
    keyed = merge_payloads(combiner, [[("x", 1)], [("x", 2), ("y", 5)]],
                           keyed=True)
    assert keyed == [("x", 3), ("y", 5)]


def test_merge_payloads_associativity_property():
    """Partial aggregation must commute with the final aggregation."""
    combiner = SumCombiner()
    parts = [[("a", 1), ("b", 2)], [("a", 3)], [("b", 4), ("c", 5)]]
    once = merge_payloads(combiner, parts, keyed=True)
    staged = merge_payloads(
        combiner,
        [merge_payloads(combiner, parts[:2], keyed=True), parts[2]],
        keyed=True)
    assert once == staged


def test_bad_limits_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        AggregationBuffer(sim, SumCombiner(), False, max_tasks=0,
                          max_delay=1.0, flush_fn=lambda b: None)
    with pytest.raises(ValueError):
        AggregationBuffer(sim, SumCombiner(), False, max_tasks=1,
                          max_delay=0.0, flush_fn=lambda b: None)
