"""Unit tests for the task-input LRU cache (§3.2.7)."""

import pytest

from repro.core.runtime.cache import LruCache


def test_miss_then_hit():
    cache = LruCache(100.0)
    assert cache.get("a") is None
    cache.put("a", 10.0, payload="data")
    assert cache.get("a") == (10.0, "data")
    assert cache.hits == 1 and cache.misses == 1


def test_contains_and_len():
    cache = LruCache(100.0)
    cache.put("a", 1.0, None)
    assert "a" in cache and "b" not in cache
    assert len(cache) == 1


def test_lru_eviction_order():
    cache = LruCache(30.0)
    cache.put("a", 10.0, 1)
    cache.put("b", 10.0, 2)
    cache.put("c", 10.0, 3)
    cache.get("a")              # refresh a; b is now LRU
    cache.put("d", 10.0, 4)     # evicts b
    assert "b" not in cache
    assert "a" in cache and "c" in cache and "d" in cache


def test_oversized_entry_not_admitted():
    cache = LruCache(10.0)
    cache.put("big", 11.0, None)
    assert "big" not in cache
    assert len(cache) == 0


def test_replacing_entry_updates_size():
    cache = LruCache(20.0)
    cache.put("a", 10.0, 1)
    cache.put("a", 5.0, 2)
    assert cache.used_bytes == 5.0
    assert cache.get("a") == (5.0, 2)


def test_eviction_frees_enough_space():
    cache = LruCache(25.0)
    cache.put("a", 10.0, None)
    cache.put("b", 10.0, None)
    cache.put("c", 20.0, None)  # must evict both a and b
    assert "a" not in cache and "b" not in cache and "c" in cache
    assert cache.used_bytes == 20.0


def test_clear():
    cache = LruCache(100.0)
    cache.put("a", 10.0, None)
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes == 0.0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LruCache(-1.0)


def test_zero_capacity_admits_nothing():
    cache = LruCache(0.0)
    cache.put("a", 1.0, None)
    assert "a" not in cache
