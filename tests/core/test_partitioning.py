"""Unit tests for Algorithm 2 (stage partitioning)."""

import pytest

from repro.core.compiler.partitioning import (check_partitioning,
                                              partition_stages)
from repro.core.compiler.placement import place_operators
from repro.dataflow.dag import (DependencyType, LogicalDAG, Operator,
                                Placement, SourceKind)
from repro.errors import CompilerError

OO = DependencyType.ONE_TO_ONE
OM = DependencyType.ONE_TO_MANY
MO = DependencyType.MANY_TO_ONE
MM = DependencyType.MANY_TO_MANY


def read_source(name="read", parallelism=4):
    return Operator(name, parallelism=parallelism,
                    source_kind=SourceKind.READ, input_ref=name,
                    partition_bytes=[1] * parallelism)


def build_map_reduce():
    dag = LogicalDAG()
    read = dag.add_operator(read_source())
    mapper = dag.add_operator(Operator("map", parallelism=4))
    reducer = dag.add_operator(Operator("reduce", parallelism=2))
    dag.connect(read, mapper, OO)
    dag.connect(mapper, reducer, MM)
    place_operators(dag)
    return dag


def test_requires_placed_dag():
    dag = LogicalDAG()
    dag.add_operator(read_source())
    with pytest.raises(CompilerError):
        partition_stages(dag)


def test_map_reduce_single_stage():
    dag = build_map_reduce()
    stage_dag = partition_stages(dag)
    check_partitioning(stage_dag)
    assert len(stage_dag.stages) == 1
    stage = stage_dag.stages[0]
    assert stage.root_op.name == "reduce"
    assert {op.name for op in stage.operators} == {"read", "map", "reduce"}


def test_stage_absorbs_transient_ancestors_recursively():
    dag = LogicalDAG()
    read = dag.add_operator(read_source())
    a = dag.add_operator(Operator("a", parallelism=4))
    b = dag.add_operator(Operator("b", parallelism=4))
    agg = dag.add_operator(Operator("agg", parallelism=1))
    dag.connect(read, a, OO)
    dag.connect(a, b, OO)
    dag.connect(b, agg, MO)
    place_operators(dag)
    stage_dag = partition_stages(dag)
    assert len(stage_dag.stages) == 1
    assert {op.name for op in stage_dag.stages[0].operators} == \
        {"read", "a", "b", "agg"}


def test_reserved_parent_creates_stage_dependency():
    dag = build_map_reduce()
    follow = dag.add_operator(Operator("follow", parallelism=2))
    dag.connect(dag.operator("reduce"), follow, OO)
    place_operators(dag)
    stage_dag = partition_stages(dag)
    check_partitioning(stage_dag)
    assert len(stage_dag.stages) == 2
    first, second = stage_dag.topological()
    assert first.root_op.name == "reduce"
    assert second.root_op.name == "follow"
    assert second.parents == [first]
    assert first.children == [second]


def test_transient_sink_gets_its_own_stage():
    dag = LogicalDAG()
    read = dag.add_operator(read_source())
    mapper = dag.add_operator(Operator("map", parallelism=4))
    dag.connect(read, mapper, OO)
    place_operators(dag)
    stage_dag = partition_stages(dag)
    assert len(stage_dag.stages) == 1
    stage = stage_dag.stages[0]
    assert stage.root_op.name == "map"
    assert stage.reserved_ops == []


def test_reserved_sink_creates_one_stage_not_two():
    dag = build_map_reduce()  # reduce is both reserved and a sink
    stage_dag = partition_stages(dag)
    assert len(stage_dag.stages) == 1


def test_transient_op_shared_by_two_stages():
    """A transient operator with two reserved consumers is absorbed into
    both stages (the ALS Read case, §3.1.3)."""
    dag = LogicalDAG()
    read = dag.add_operator(read_source())
    agg_a = dag.add_operator(Operator("agg_a", parallelism=2))
    agg_b = dag.add_operator(Operator("agg_b", parallelism=2))
    dag.connect(read, agg_a, MM)
    dag.connect(read, agg_b, MM)
    place_operators(dag)
    stage_dag = partition_stages(dag)
    check_partitioning(stage_dag)
    assert len(stage_dag.stages) == 2
    stages_with_read = stage_dag.stages_containing(dag.operator("read"))
    assert len(stages_with_read) == 2


def test_every_stage_has_at_most_one_reserved_op():
    dag = build_map_reduce()
    follow = dag.add_operator(Operator("follow", parallelism=2))
    more = dag.add_operator(Operator("more", parallelism=2))
    dag.connect(dag.operator("reduce"), follow, OO)
    dag.connect(follow, more, OO)
    place_operators(dag)
    stage_dag = partition_stages(dag)
    check_partitioning(stage_dag)
    for stage in stage_dag.stages:
        assert len(stage.reserved_ops) <= 1


def test_boundary_in_edges_come_from_reserved():
    dag = build_map_reduce()
    follow = dag.add_operator(Operator("follow", parallelism=2))
    dag.connect(dag.operator("reduce"), follow, OO)
    place_operators(dag)
    stage_dag = partition_stages(dag)
    follow_stage = stage_dag.stage_of_root(dag.operator("follow"))
    boundary = stage_dag.boundary_in_edges(follow_stage)
    assert [e.src.name for e in boundary] == ["reduce"]
    assert all(e.src.placement is Placement.RESERVED for e in boundary)


def test_internal_edges_exclude_boundary():
    dag = build_map_reduce()
    stage_dag = partition_stages(dag)
    internal = stage_dag.internal_edges(stage_dag.stages[0])
    assert {(e.src.name, e.dst.name) for e in internal} == \
        {("read", "map"), ("map", "reduce")}


def test_stage_of_root_missing():
    dag = build_map_reduce()
    stage_dag = partition_stages(dag)
    with pytest.raises(CompilerError):
        stage_dag.stage_of_root(dag.operator("map"))


def test_stage_repr_and_contains():
    dag = build_map_reduce()
    stage = partition_stages(dag).stages[0]
    assert stage.contains(dag.operator("map"))
    assert "reduce" in repr(stage)
