"""The task-attempt state machine: transitions, reset, attempt counting."""

import pytest

from repro.core.exec import (ACTIVE_STATES, IllegalTransition, TaskAttempt,
                             TaskState)


class _Task(TaskAttempt):
    def __init__(self, name="t", index=0):
        super().__init__()
        self.name = name
        self.index = index
        self.scratch_cleared = 0

    @property
    def key(self):
        return (self.name, self.index)

    def _reset_scratch(self):
        self.scratch_cleared += 1


class _Exec:
    alive = True
    executor_id = 0


def test_happy_path_walks_the_full_lifecycle():
    task = _Task()
    assert task.status == TaskState.PENDING
    task.status = TaskState.QUEUED
    task.status = TaskState.FETCHING
    task.status = TaskState.COMPUTING
    task.status = TaskState.DELIVERING
    task.status = TaskState.DONE
    assert task.attempt == 0


def test_compute_may_finish_without_delivering():
    task = _Task()
    task.status = TaskState.QUEUED
    task.status = TaskState.FETCHING
    task.status = TaskState.COMPUTING
    task.status = TaskState.DONE  # driver-resident finish skips delivery


def test_pending_may_go_straight_to_fetching():
    # Pado reserved receivers and the Spark driver skip the queue.
    task = _Task()
    task.status = TaskState.FETCHING
    assert task.status == TaskState.FETCHING


def test_same_state_assignment_is_a_noop():
    task = _Task()
    task.status = TaskState.PENDING
    assert task.status == TaskState.PENDING


@pytest.mark.parametrize("start,bad", [
    (TaskState.PENDING, TaskState.COMPUTING),
    (TaskState.PENDING, TaskState.DONE),
    (TaskState.QUEUED, TaskState.DELIVERING),
    (TaskState.FETCHING, TaskState.QUEUED),     # backward
    (TaskState.COMPUTING, TaskState.FETCHING),  # backward
    (TaskState.DONE, TaskState.PENDING),        # only reset() rewinds
    (TaskState.DONE, TaskState.FETCHING),
])
def test_illegal_transitions_raise(start, bad):
    task = _Task()
    task._status = start  # place directly; paths to get here vary
    with pytest.raises(IllegalTransition):
        task.status = bad
    assert task.status == start  # state unchanged after the rejection


def test_illegal_transition_is_an_execution_error():
    from repro.errors import ExecutionError
    assert issubclass(IllegalTransition, ExecutionError)


def test_reset_bumps_attempt_and_rewinds():
    task = _Task()
    executor = _Exec()
    task.status = TaskState.QUEUED
    task.begin_attempt(executor)
    task.input_bytes_by_parent["p"] = 5.0
    task.failed_parents.add(("p", 0))
    task.outstanding_fetches = 3
    task.fetch_failed = True
    task.reset()
    assert task.attempt == 1
    assert task.status == TaskState.PENDING
    assert task.executor is None
    assert task.outstanding_fetches == 0
    assert not task.fetch_failed
    assert not task.failed_parents
    assert not task.input_bytes_by_parent
    assert task.scratch_cleared == 1


def test_reset_preserves_cache_keys():
    """Cache affinity survives relaunches (the scheduler keeps using it)."""
    task = _Task()
    task.cache_keys = {("in", 0)}
    task.status = TaskState.QUEUED
    task.reset()
    assert task.cache_keys == {("in", 0)}


def test_initial_state_override():
    class _Receiver(_Task):
        initial_state = TaskState.FETCHING

    receiver = _Receiver()
    assert receiver.status == TaskState.FETCHING
    receiver.status = TaskState.COMPUTING
    receiver.reset()
    assert receiver.status == TaskState.FETCHING
    assert receiver.attempt == 1


def test_begin_attempt_clears_barrier_state():
    task = _Task()
    executor = _Exec()
    task.status = TaskState.QUEUED
    task.fetch_failed = True
    task.input_bytes_by_parent["stale"] = 1.0
    task.external_inputs["stale"] = [1]
    task.begin_attempt(executor)
    assert task.status == TaskState.FETCHING
    assert task.executor is executor
    assert not task.fetch_failed
    assert not task.input_bytes_by_parent
    assert not task.external_inputs


def test_active_states_are_the_slot_holding_ones():
    assert ACTIVE_STATES == (TaskState.FETCHING, TaskState.COMPUTING,
                             TaskState.DELIVERING)
