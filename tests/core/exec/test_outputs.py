"""OutputRegistry: reachability, executor loss, and consumer waiters."""

from repro.core.exec import OutputRecord, OutputRegistry


class _Exec:
    _next_id = 0

    def __init__(self, alive=True):
        self.alive = alive
        self.executor_id = _Exec._next_id
        _Exec._next_id += 1


def test_record_reachability_rules():
    live = OutputRecord(_Exec(alive=True), 10.0, None)
    assert live.reachable()
    dead = OutputRecord(_Exec(alive=False), 10.0, None)
    assert not dead.reachable()
    driver = OutputRecord(None, 10.0, [1])
    assert driver.reachable()  # driver-resident outputs never die
    lost = OutputRecord(_Exec(), 10.0, None)
    lost.available = False
    assert not lost.reachable()
    checkpointed = OutputRecord(_Exec(alive=False), 10.0, None)
    checkpointed.checkpointed = True
    assert checkpointed.reachable()  # durable on the stable store


def test_registry_mapping_surface():
    registry = OutputRegistry()
    executor = _Exec()
    record = registry.put(("op", 0), executor, 42.0, [1, 2])
    assert registry[("op", 0)] is record
    assert registry.get(("op", 0)) is record
    assert registry.get(("op", 1)) is None
    assert ("op", 0) in registry
    assert len(registry) == 1
    assert list(registry.keys()) == [("op", 0)]
    assert list(registry.values()) == [record]
    assert dict(registry.items()) == {("op", 0): record}
    assert registry.reachable(("op", 0))
    assert not registry.reachable(("op", 1))
    assert registry.pop(("op", 0)) is record
    assert len(registry) == 0


def test_mark_executor_lost_returns_keys_in_registration_order():
    registry = OutputRegistry()
    victim, survivor = _Exec(), _Exec()
    registry.put(("a", 0), victim, 1.0, None)
    registry.put(("b", 0), survivor, 1.0, None)
    registry.put(("a", 1), victim, 1.0, None)
    ckpt = registry.put(("a", 2), victim, 1.0, None)
    ckpt.checkpointed = True
    lost = registry.mark_executor_lost(victim)
    assert lost == [("a", 0), ("a", 1)]  # checkpointed record skipped
    assert not registry.reachable(("a", 0))
    assert registry.reachable(("b", 0))
    assert registry.reachable(("a", 2))


def test_waiters_fire_once_and_only_on_notify():
    registry = OutputRegistry()
    fired = []
    registry.wait(("op", 0), lambda: fired.append("x"))
    registry.wait(("op", 0), lambda: fired.append("y"))
    registry.put(("op", 0), _Exec(), 1.0, None)
    assert fired == []  # put does not notify: the master announces
    registry.notify(("op", 0))
    assert fired == ["x", "y"]
    registry.notify(("op", 0))  # drained; nothing re-fires
    assert fired == ["x", "y"]


def test_put_overwrites_with_fresh_record():
    """A recomputed output replaces the lost one; old handles stay stale."""
    registry = OutputRegistry()
    old = registry.put(("op", 0), _Exec(), 1.0, None)
    old.available = False
    new = registry.put(("op", 0), _Exec(), 2.0, None)
    assert registry[("op", 0)] is new
    assert registry.reachable(("op", 0))
    assert not old.reachable()
