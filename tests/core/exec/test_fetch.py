"""FetchService: the input barrier, abort path, and retry policies."""

import pytest

from repro.core.exec import (CappedAttempts, DelayedRefetch, FetchService,
                             ImmediateRetry, InflightIndex, TaskAttempt,
                             TaskState)
from repro.errors import ExecutionError


class _Task(TaskAttempt):
    def __init__(self, name="t", index=0):
        super().__init__()
        self.name = name
        self.index = index

    @property
    def key(self):
        return (self.name, self.index)


class _Exec:
    _next_id = 0

    def __init__(self, alive=True):
        self.alive = alive
        self.released = 0
        self.executor_id = _Exec._next_id
        _Exec._next_id += 1

    def release_slot(self):
        self.released += 1


class _Scheduler:
    def __init__(self):
        self.slot_releases = 0

    def slot_released(self):
        self.slot_releases += 1


class _Harness:
    """Records what the master-side callbacks saw."""

    def __init__(self, retry=None):
        self.ready = []
        self.aborted = []
        self.relaunches = []
        self.scheduler = _Scheduler()
        self.service = FetchService(
            input_store=None, scheduler=self.scheduler,
            on_ready=self.ready.append,
            after_abort=lambda task, failed: self.aborted.append(
                (task, failed)),
            trace_relaunch=lambda task, cause: self.relaunches.append(
                (task.key, task.attempt, cause)),
            retry=retry)

    def armed_task(self, fetches=2):
        task = _Task()
        task.status = TaskState.QUEUED
        task.begin_attempt(_Exec())
        self.service.begin(task, [lambda: None] * fetches)
        return task


def test_empty_fetch_plan_is_immediately_ready():
    h = _Harness()
    task = h.armed_task(fetches=0)
    assert h.ready == [task]


def test_barrier_counts_down_arrivals():
    h = _Harness()
    task = h.armed_task(fetches=2)
    h.service.arrived(task, 0, "a", 10.0, None)
    assert not h.ready
    h.service.arrived(task, 0, "b", 5.0, [1, 2])
    assert h.ready == [task]
    assert task.input_bytes_by_parent == {"a": 10.0, "b": 5.0}
    assert task.external_inputs == {"b": [1, 2]}


def test_stale_arrivals_are_ignored():
    h = _Harness()
    task = h.armed_task(fetches=1)
    h.service.arrived(task, attempt=3, parent="a", size=1.0, payload=None)
    assert not h.ready  # wrong attempt
    task.status = TaskState.COMPUTING  # left FETCHING
    h.service.arrived(task, 0, "a", 1.0, None)
    assert not h.ready


def test_one_broken_fetch_aborts_exactly_one_attempt():
    """Two fetches break on one barrier — one reset, one resubmit, one
    Relaunch, one slot release (the eviction-mid-fetch invariant)."""
    h = _Harness()
    task = h.armed_task(fetches=2)
    executor = task.executor
    h.service.broke(task, 0)
    assert task.attempt == 0  # barrier still draining
    h.service.broke(task, 0)
    assert task.attempt == 1
    assert task.status == TaskState.PENDING
    assert len(h.aborted) == 1
    assert h.relaunches == [(("t", 0), 0, "fetch-failed")]
    assert executor.released == 1
    assert h.scheduler.slot_releases == 1
    # Late events for the dead attempt do nothing further.
    h.service.broke(task, 0)
    h.service.arrived(task, 0, "a", 1.0, None)
    assert task.attempt == 1
    assert len(h.aborted) == 1


def test_mixed_arrival_then_break_still_aborts_once():
    h = _Harness()
    task = h.armed_task(fetches=2)
    h.service.arrived(task, 0, "a", 1.0, None)
    h.service.broke(task, 0)
    assert len(h.aborted) == 1
    assert not h.ready


def test_abort_reports_failed_parents_of_the_attempt():
    h = _Harness()
    task = h.armed_task(fetches=1)
    task.failed_parents.add(("p", 4))
    h.service.broke(task, 0)
    (aborted, failed), = h.aborted
    assert aborted is task
    assert failed == {("p", 4)}
    assert not task.failed_parents  # reset cleared the attempt's set


def test_abort_skips_slot_release_for_slotless_executor():
    h = _Harness()
    task = h.armed_task(fetches=1)
    h.service.slotless = task.executor  # the Spark driver
    h.service.broke(task, 0)
    assert task.executor is None
    assert h.scheduler.slot_releases == 0


def test_abort_skips_slot_release_for_dead_executor():
    h = _Harness()
    task = h.armed_task(fetches=1)
    executor = task.executor
    executor.alive = False
    h.service.broke(task, 0)
    assert executor.released == 0
    assert h.scheduler.slot_releases == 0


def test_retry_policy_flags():
    assert ImmediateRetry().abort_on_miss
    assert not DelayedRefetch().abort_on_miss
    assert CappedAttempts(3).abort_on_miss


def test_capped_attempts_surfaces_job_failure():
    h = _Harness(retry=CappedAttempts(2))
    task = h.armed_task(fetches=1)
    h.service.broke(task, 0)          # attempt 0 -> 1: still under the cap
    assert task.attempt == 1
    task.status = TaskState.QUEUED
    task.begin_attempt(_Exec())
    h.service.begin(task, [lambda: None])
    with pytest.raises(ExecutionError, match="exhausted 2 attempts"):
        h.service.broke(task, 1)      # attempt 1 would become 2: give up
    assert len(h.aborted) == 1        # the failed attempt never requeued


def test_capped_attempts_rejects_nonpositive_cap():
    with pytest.raises(ValueError):
        CappedAttempts(0)


def test_inflight_index_coalesces():
    index = InflightIndex()
    assert not index.join("k", "first")   # opener fetches
    assert index.join("k", "second")      # queued
    assert index.join("k", "third")
    assert index.drain("k") == ["second", "third"]
    assert index.drain("k") == []         # entry closed
    assert not index.join("k", "again")   # reopens
