"""Unit tests for the §6 lifetime-aware placement extension."""

import math

import pytest

from repro.core.compiler.lifetime_placement import (ResourceClass,
                                                    place_with_lifetime_classes)
from repro.core.compiler.partitioning import (check_partitioning,
                                              partition_stages)
from repro.dataflow.dag import Placement
from repro.errors import CompilerError
from repro.workloads import als_synthetic_program, mlr_synthetic_program

RESERVED = ResourceClass("reserved", math.inf)
LONG = ResourceClass("long-lived", 3600.0)
SHORT = ResourceClass("short-lived", 120.0)


def test_requires_a_reserved_class():
    dag = mlr_synthetic_program(iterations=1, scale=0.05).dag
    with pytest.raises(CompilerError):
        place_with_lifetime_classes(dag, [LONG, SHORT])
    with pytest.raises(CompilerError):
        place_with_lifetime_classes(dag, [])


def test_wide_consumers_always_reserved():
    dag = mlr_synthetic_program(iterations=2, scale=0.05).dag
    assignment = place_with_lifetime_classes(dag, [RESERVED, LONG, SHORT])
    for op in dag.operators:
        if any(e.dep_type.is_wide for e in dag.in_edges(op)):
            assert assignment[op.name].is_reserved, op.name


def test_heavier_operators_get_longer_lifetimes():
    dag = als_synthetic_program(iterations=2, scale=0.1).dag
    assignment = place_with_lifetime_classes(dag, [RESERVED, LONG, SHORT])
    from repro.core.compiler.placement import recomputation_weight
    flexible = [(recomputation_weight(dag, op), assignment[op.name])
                for op in dag.operators
                if not assignment[op.name].is_reserved]
    assert flexible, "expected some transient assignments"
    # No light operator may sit on a longer-lived class than a heavier one.
    for w1, c1 in flexible:
        for w2, c2 in flexible:
            if w1 < w2:
                assert c1.expected_lifetime <= c2.expected_lifetime


def test_result_remains_valid_for_partitioning():
    dag = mlr_synthetic_program(iterations=2, scale=0.05).dag
    place_with_lifetime_classes(dag, [RESERVED, LONG, SHORT])
    stage_dag = partition_stages(dag)
    check_partitioning(stage_dag)


def test_single_reserved_class_degenerates_to_algorithm1():
    from repro.core.compiler.placement import place_operators
    dag_a = mlr_synthetic_program(iterations=2, scale=0.05).dag
    dag_b = mlr_synthetic_program(iterations=2, scale=0.05).dag
    place_with_lifetime_classes(dag_a, [RESERVED])
    place_operators(dag_b)
    # With no transient classes, everything must be reserved-safe: wide
    # consumers and created sources match Algorithm 1 exactly; the rest
    # collapse onto the reserved class.
    for op_a, op_b in zip(dag_a.operators, dag_b.operators):
        if op_b.placement is Placement.RESERVED:
            assert op_a.placement is Placement.RESERVED
