"""Unit tests for the task scheduler and its policies (§3.2.3)."""

import pytest

from repro.cluster.events import Simulator
from repro.cluster.resources import transient_container
from repro.core.runtime.cache import LruCache
from repro.core.runtime.scheduler import (CacheAwarePolicy, RoundRobinPolicy,
                                          TaskScheduler)
from repro.engines.base import SimExecutor
from repro.errors import SchedulingError


class FakeTask:
    def __init__(self, cache_keys=()):
        self.cache_keys = set(cache_keys)
        self.assigned_to = None

    def assign(self, executor):
        self.assigned_to = executor


def make_executor(sim, slots=2, cache_keys=()):
    executor = SimExecutor(transient_container(1e9), sim, slots=slots)
    executor.cache = LruCache(1e9)
    for key in cache_keys:
        executor.cache.put(key, 1.0, None)
    return executor


@pytest.fixture
def sim():
    return Simulator()


def test_task_waits_until_executor_available(sim):
    scheduler = TaskScheduler()
    task = FakeTask()
    scheduler.submit(task)
    assert task.assigned_to is None
    assert scheduler.pending_count == 1
    executor = make_executor(sim)
    scheduler.add_executor(executor)
    assert task.assigned_to is executor
    assert scheduler.pending_count == 0


def test_slots_limit_concurrency(sim):
    scheduler = TaskScheduler()
    executor = make_executor(sim, slots=1)
    scheduler.add_executor(executor)
    first, second = FakeTask(), FakeTask()
    scheduler.submit(first)
    scheduler.submit(second)
    assert first.assigned_to is executor
    assert second.assigned_to is None
    executor.release_slot()
    scheduler.slot_released()
    assert second.assigned_to is executor


def test_round_robin_spreads_tasks(sim):
    scheduler = TaskScheduler(RoundRobinPolicy())
    executors = [make_executor(sim, slots=4) for _ in range(3)]
    for executor in executors:
        scheduler.add_executor(executor)
    tasks = [FakeTask() for _ in range(6)]
    for task in tasks:
        scheduler.submit(task)
    counts = {id(e): 0 for e in executors}
    for task in tasks:
        counts[id(task.assigned_to)] += 1
    assert sorted(counts.values()) == [2, 2, 2]


def test_cache_aware_prefers_executor_with_inputs(sim):
    scheduler = TaskScheduler(CacheAwarePolicy())
    plain = make_executor(sim)
    warm = make_executor(sim, cache_keys=[("model", 0)])
    scheduler.add_executor(plain)
    scheduler.add_executor(warm)
    task = FakeTask(cache_keys=[("model", 0)])
    scheduler.submit(task)
    assert task.assigned_to is warm


def test_cache_aware_falls_back_to_round_robin(sim):
    scheduler = TaskScheduler(CacheAwarePolicy())
    executors = [make_executor(sim, slots=4) for _ in range(2)]
    for executor in executors:
        scheduler.add_executor(executor)
    tasks = [FakeTask() for _ in range(4)]
    for task in tasks:
        scheduler.submit(task)
    assert {t.assigned_to for t in tasks} == set(executors)


def test_cache_aware_skips_full_warm_executor(sim):
    scheduler = TaskScheduler(CacheAwarePolicy())
    warm = make_executor(sim, slots=1, cache_keys=[("k", 0)])
    cold = make_executor(sim, slots=1)
    scheduler.add_executor(warm)
    scheduler.add_executor(cold)
    a, b = FakeTask({("k", 0)}), FakeTask({("k", 0)})
    scheduler.submit(a)
    scheduler.submit(b)
    assert a.assigned_to is warm
    assert b.assigned_to is cold


def test_removed_executor_not_scheduled(sim):
    scheduler = TaskScheduler()
    executor = make_executor(sim)
    scheduler.add_executor(executor)
    scheduler.remove_executor(executor)
    task = FakeTask()
    scheduler.submit(task)
    assert task.assigned_to is None


def test_dead_executor_not_scheduled(sim):
    scheduler = TaskScheduler()
    executor = make_executor(sim)
    scheduler.add_executor(executor)
    executor.container.evict(0.0)
    task = FakeTask()
    scheduler.submit(task)
    assert task.assigned_to is None


def test_duplicate_executor_rejected(sim):
    scheduler = TaskScheduler()
    executor = make_executor(sim)
    scheduler.add_executor(executor)
    with pytest.raises(SchedulingError):
        scheduler.add_executor(executor)


def test_slot_accounting_on_executor(sim):
    executor = make_executor(sim, slots=2)
    assert executor.acquire_slot() and executor.acquire_slot()
    assert not executor.acquire_slot()
    executor.release_slot()
    assert executor.free_slots == 1
    executor.release_slot()
    with pytest.raises(Exception):
        executor.release_slot()
