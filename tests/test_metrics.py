"""Unit tests for the utilization/efficiency metrics."""

import pytest

from repro.engines.base import ClusterConfig, JobResult
from repro.metrics import EfficiencyReport, compare_efficiency


def result(engine="pado", completed=True, jct=600.0, original=100,
           launched=120):
    return JobResult(engine=engine, workload="w", completed=completed,
                     jct_seconds=jct, original_tasks=original,
                     launched_tasks=launched, evictions=5)


def test_core_second_accounting():
    cluster = ClusterConfig(num_reserved=5, num_transient=40)
    report = EfficiencyReport.from_result(result(), cluster)
    assert report.reserved_core_seconds == 5 * 4 * 600.0
    assert report.transient_core_seconds == 40 * 4 * 600.0
    assert report.harvested_fraction == pytest.approx(40 / 45)


def test_wasted_work_ratio():
    cluster = ClusterConfig()
    report = EfficiencyReport.from_result(result(launched=150), cluster)
    assert report.wasted_work_ratio == pytest.approx(50 / 150)


def test_incomplete_job_has_zero_useful_work():
    cluster = ClusterConfig()
    report = EfficiencyReport.from_result(result(completed=False), cluster)
    assert report.useful_per_reserved_core_second == 0.0


def test_zero_launched_tasks_edge_case():
    cluster = ClusterConfig()
    report = EfficiencyReport.from_result(
        result(original=0, launched=0), cluster)
    assert report.wasted_work_ratio == 0.0


def test_compare_sorts_best_first():
    cluster = ClusterConfig()
    fast = result(engine="pado", jct=300.0)
    slow = result(engine="spark", jct=900.0)
    reports = compare_efficiency([slow, fast], cluster)
    assert [r.engine for r in reports] == ["pado", "spark"]


def test_as_row_shape():
    cluster = ClusterConfig()
    row = EfficiencyReport.from_result(result(), cluster).as_row()
    assert row[0] == "pado"
    assert len(row) == 5


def test_efficiency_from_real_run():
    from repro import PadoEngine
    from repro.workloads import mr_synthetic_program
    cluster = ClusterConfig(num_reserved=2, num_transient=4)
    job = PadoEngine().run(mr_synthetic_program(scale=0.02), cluster, seed=0)
    report = EfficiencyReport.from_result(job, cluster)
    assert report.useful_per_reserved_core_second > 0
    assert 0.0 <= report.wasted_work_ratio <= 1.0
