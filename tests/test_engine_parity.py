"""Cross-engine determinism parity: pinned ``JobResult`` goldens.

Every (workload, engine, seed) cell below was produced by
``scripts/gen_parity_goldens.py`` against the pre-`repro.core.exec`
masters, and the refactored substrate must reproduce each field
bit-identically — JCT, task counts, and every byte counter. A substrate
change that perturbs any simulated decision (event ordering, fetch
sequencing, retry timing) fails this test loudly; if the change is
*intentional*, regenerate the goldens with the script and justify the
diff in review.
"""

import pytest

from repro import ClusterConfig, PadoEngine, SparkCheckpointEngine, SparkEngine
from repro.trace.models import ExponentialLifetimeModel
from repro.workloads import mlr_synthetic_program, mr_synthetic_program

ENGINES = {
    "pado": PadoEngine,
    "spark": SparkEngine,
    "spark_checkpoint": SparkCheckpointEngine,
}

WORKLOADS = {
    "mlr": lambda: mlr_synthetic_program(iterations=2, scale=0.05),
    "mr": lambda: mr_synthetic_program(scale=0.05),
}

SEEDS = (0, 1, 2)

TIME_LIMIT = 48 * 3600.0


def parity_cluster():
    return ClusterConfig(num_reserved=2, num_transient=5,
                         eviction=ExponentialLifetimeModel(600.0))


GOLDEN = {
    ('mlr', 'pado', 0): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 3863553135,
        'bytes_pushed': 9483321344,
        'bytes_shuffled': 5419040768,
        'completed': True,
        'evictions': 6,
        'jct_seconds': 649.5749995168051,
        'launched_tasks': 81,
        'original_tasks': 61,
    },
    ('mlr', 'pado', 1): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 3269160345,
        'bytes_pushed': 9483321344,
        'bytes_shuffled': 4402970624,
        'completed': True,
        'evictions': 6,
        'jct_seconds': 637.061428079605,
        'launched_tasks': 65,
        'original_tasks': 61,
    },
    ('mlr', 'pado', 2): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 3922992414,
        'bytes_pushed': 9483321344,
        'bytes_shuffled': 5080350720,
        'completed': True,
        'evictions': 7,
        'jct_seconds': 673.4811004965128,
        'launched_tasks': 77,
        'original_tasks': 61,
    },
    ('mlr', 'spark', 0): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 2853085392,
        'bytes_pushed': 0,
        'bytes_shuffled': 28629420292,
        'completed': True,
        'evictions': 8,
        'jct_seconds': 861.9291195775273,
        'launched_tasks': 129,
        'original_tasks': 89,
    },
    ('mlr', 'spark', 1): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 2971963950,
        'bytes_pushed': 0,
        'bytes_shuffled': 55421825336,
        'completed': True,
        'evictions': 12,
        'jct_seconds': 1193.9685152827988,
        'launched_tasks': 151,
        'original_tasks': 89,
    },
    ('mlr', 'spark', 2): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 3744674577,
        'bytes_pushed': 0,
        'bytes_shuffled': 59421064232,
        'completed': True,
        'evictions': 13,
        'jct_seconds': 1342.2906985161871,
        'launched_tasks': 188,
        'original_tasks': 89,
    },
    ('mlr', 'spark_checkpoint', 0): {
        'bytes_checkpointed': 18966642688,
        'bytes_input_read': 3150281787,
        'bytes_pushed': 0,
        'bytes_shuffled': 28189797312,
        'completed': True,
        'evictions': 9,
        'jct_seconds': 1016.6157845811882,
        'launched_tasks': 143,
        'original_tasks': 89,
    },
    ('mlr', 'spark_checkpoint', 1): {
        'bytes_checkpointed': 18966642688,
        'bytes_input_read': 2853085392,
        'bytes_pushed': 0,
        'bytes_shuffled': 28766244476,
        'completed': True,
        'evictions': 9,
        'jct_seconds': 1048.6749395251925,
        'launched_tasks': 141,
        'original_tasks': 89,
    },
    ('mlr', 'spark_checkpoint', 2): {
        'bytes_checkpointed': 18966642688,
        'bytes_input_read': 4041870972,
        'bytes_pushed': 0,
        'bytes_shuffled': 28766244476,
        'completed': True,
        'evictions': 11,
        'jct_seconds': 1040.9236719518342,
        'launched_tasks': 172,
        'original_tasks': 89,
    },
    ('mr', 'pado', 0): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 16106127360,
        'bytes_pushed': 6266288256,
        'bytes_shuffled': 0,
        'completed': True,
        'evictions': 2,
        'jct_seconds': 134.94199976819738,
        'launched_tasks': 168,
        'original_tasks': 160,
    },
    ('mr', 'pado', 1): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 15703474176,
        'bytes_pushed': 6275347968,
        'bytes_shuffled': 0,
        'completed': True,
        'evictions': 1,
        'jct_seconds': 135.54106640771934,
        'launched_tasks': 165,
        'original_tasks': 160,
    },
    ('mr', 'pado', 2): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 15569256448,
        'bytes_pushed': 6275347968,
        'bytes_shuffled': 0,
        'completed': True,
        'evictions': 2,
        'jct_seconds': 134.65306641654107,
        'launched_tasks': 164,
        'original_tasks': 160,
    },
    ('mr', 'spark', 0): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 16106127360,
        'bytes_pushed': 0,
        'bytes_shuffled': 6764572416,
        'completed': True,
        'evictions': 2,
        'jct_seconds': 94.96466408610742,
        'launched_tasks': 168,
        'original_tasks': 160,
    },
    ('mr', 'spark', 1): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 17179869184,
        'bytes_pushed': 0,
        'bytes_shuffled': 6764572416,
        'completed': True,
        'evictions': 1,
        'jct_seconds': 100.51888998936525,
        'launched_tasks': 176,
        'original_tasks': 160,
    },
    ('mr', 'spark', 2): {
        'bytes_checkpointed': 0,
        'bytes_input_read': 17179869184,
        'bytes_pushed': 0,
        'bytes_shuffled': 17009577738,
        'completed': True,
        'evictions': 1,
        'jct_seconds': 110.16133311617055,
        'launched_tasks': 257,
        'original_tasks': 160,
    },
    ('mr', 'spark_checkpoint', 0): {
        'bytes_checkpointed': 6764573424,
        'bytes_input_read': 16106127360,
        'bytes_pushed': 0,
        'bytes_shuffled': 6764572416,
        'completed': True,
        'evictions': 2,
        'jct_seconds': 156.6853328275266,
        'launched_tasks': 168,
        'original_tasks': 160,
    },
    ('mr', 'spark_checkpoint', 1): {
        'bytes_checkpointed': 6764573424,
        'bytes_input_read': 15569256448,
        'bytes_pushed': 0,
        'bytes_shuffled': 6764572416,
        'completed': True,
        'evictions': 1,
        'jct_seconds': 155.61866616085993,
        'launched_tasks': 164,
        'original_tasks': 160,
    },
    ('mr', 'spark_checkpoint', 2): {
        'bytes_checkpointed': 6764573424,
        'bytes_input_read': 15569256448,
        'bytes_pushed': 0,
        'bytes_shuffled': 7328286784,
        'completed': True,
        'evictions': 2,
        'jct_seconds': 163.0853327533505,
        'launched_tasks': 172,
        'original_tasks': 160,
    },
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("seed", SEEDS)
def test_job_result_bit_identical(workload, engine, seed):
    expected = GOLDEN[(workload, engine, seed)]
    result = ENGINES[engine]().run(WORKLOADS[workload](), parity_cluster(),
                                   seed=seed, time_limit=TIME_LIMIT)
    actual = {field: getattr(result, field) for field in expected}
    assert actual == expected


def test_goldens_cover_full_grid():
    """The pinned grid is exactly workloads x engines x seeds."""
    expected_keys = {(w, e, s) for w in WORKLOADS for e in ENGINES
                     for s in SEEDS}
    assert set(GOLDEN) == expected_keys


def test_goldens_show_churn():
    """The pinned runs exercise evictions and relaunches, so they pin the
    recovery paths too — not just the happy path."""
    assert any(cell["evictions"] > 0 for cell in GOLDEN.values())
    assert any(cell["launched_tasks"] > cell["original_tasks"]
               for cell in GOLDEN.values())
