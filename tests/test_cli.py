"""Smoke tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_exits_zero(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_tab2(capsys):
    assert main(["tab2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_fig2(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "pado" in out and "spark" in out


def test_fig7_with_tiny_scale(capsys):
    assert main(["fig7", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "high" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_profile_subcommand(capsys):
    assert main(["profile", "tab2", "--profile-limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out            # the experiment still prints
    assert "cumulative" in out         # ...followed by the pstats table
    assert "function calls" in out


def test_profile_requires_a_known_target():
    with pytest.raises(SystemExit):
        main(["profile"])
    with pytest.raises(SystemExit):
        main(["profile", "nope"])
    with pytest.raises(SystemExit):
        main(["tab2", "tab1"])  # second positional only valid with profile


def test_sweep_with_workers_and_cache(tmp_path, capsys):
    argv = ["sweep", "--workload", "mr", "--scale", "0.02",
            "--rates", "none,high", "--engines", "pado",
            "--workers", "2", "--cache", str(tmp_path)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "Eviction sweep (mr)" in out
    assert "2 simulated, 0 cached" in out
    # warm cache: the same sweep re-runs without simulating anything
    assert main(argv) == 0
    assert "0 simulated, 2 cached" in capsys.readouterr().out


def test_mtsweep_single_policy_with_cache(tmp_path, capsys):
    argv = ["mtsweep", "--policy", "fair", "--load", "0.6",
            "--eviction", "low", "--jobs", "6", "--cache", str(tmp_path)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "policy=fair" in out
    assert "p99" in out and "queue" in out    # JCT distribution columns
    assert "tenant" in out and "all" in out   # per-tenant + aggregate rows
    assert "6 simulated, 0 cached" in out
    # warm cache: the same cell replays without a single inner simulation
    assert main(argv) == 0
    assert "0 simulated, 6 cached" in capsys.readouterr().out


def test_mtsweep_default_runs_all_policies(capsys):
    assert main(["mtsweep", "--jobs", "4", "--load", "0.5",
                 "--eviction", "low"]) == 0
    out = capsys.readouterr().out
    for policy in ("fifo", "fair", "quota"):
        assert f"policy={policy}" in out


def test_sweep_averaged(capsys):
    assert main(["sweep", "--workload", "mr", "--scale", "0.02",
                 "--averaged", "--seeds", "1,2", "--rates", "high",
                 "--engines", "pado"]) == 0
    out = capsys.readouterr().out
    assert "±" in out
    assert "2 simulated" in out


def test_fig9xl_reduced_scale(capsys):
    assert main(["fig9xl", "--fleet", "200", "--hours", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "fig9xl" in out
    assert "events/s" in out


def test_profile_mtsweep_forces_serial(capsys):
    argv = ["profile", "mtsweep", "--policy", "fifo", "--load", "0.4",
            "--eviction", "none", "--jobs", "2", "--workers", "4",
            "--profile-limit", "5"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "forcing --workers 0" in out   # subprocesses escape cProfile
    assert "policy=fifo" in out           # the sweep still ran
    assert "function calls" in out        # ...inside the profiler
