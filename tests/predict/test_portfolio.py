"""Unit tests for the portfolio predictor over mixed transient classes."""

import math

import pytest

from repro.cluster.manager import TransientPool
from repro.cluster.resources import Container, ContainerKind, NodeSpec
from repro.predict import PortfolioPredictor, TransientClass
from repro.trace.models import ExponentialLifetimeModel, NoEvictionModel

SHORT = TransientClass("short", ExponentialLifetimeModel(120.0),
                       price_weight=1.0, capacity=4)
LONG = TransientClass("long", ExponentialLifetimeModel(1200.0),
                      price_weight=2.0, capacity=12)


def make_container(pool, launched_at=0.0):
    return Container(kind=ContainerKind.TRANSIENT, spec=NodeSpec(),
                     launched_at=launched_at, pool=pool)


def test_class_validation():
    with pytest.raises(ValueError):
        TransientClass("x", NoEvictionModel(), price_weight=0.0)
    with pytest.raises(ValueError):
        TransientClass("x", NoEvictionModel(), capacity=-1)
    with pytest.raises(ValueError):
        PortfolioPredictor([])
    with pytest.raises(ValueError, match="duplicate"):
        PortfolioPredictor([SHORT, SHORT])


def test_per_class_survival_curves():
    predictor = PortfolioPredictor([SHORT, LONG])
    assert predictor.class_survival("long", 0.0, 300.0) > \
        predictor.class_survival("short", 0.0, 300.0)
    assert predictor.class_expected_remaining("long", 0.0) == \
        pytest.approx(1200.0, rel=0.05)
    assert predictor.class_expected_remaining("short", 0.0) == \
        pytest.approx(120.0, rel=0.05)


def test_mixture_is_capacity_weighted():
    predictor = PortfolioPredictor([SHORT, LONG])
    expected = (4 / 16) * predictor.class_survival("short", 0.0, 300.0) \
        + (12 / 16) * predictor.class_survival("long", 0.0, 300.0)
    assert predictor.survival(0.0, 300.0) == pytest.approx(expected)


def test_zero_capacity_classes_weighted_equally():
    a = TransientClass("a", ExponentialLifetimeModel(100.0))
    b = TransientClass("b", ExponentialLifetimeModel(400.0))
    predictor = PortfolioPredictor([a, b])
    expected = 0.5 * predictor.class_survival("a", 0.0, 200.0) \
        + 0.5 * predictor.class_survival("b", 0.0, 200.0)
    assert predictor.survival(0.0, 200.0) == pytest.approx(expected)


def test_risk_rank_uses_the_container_class():
    predictor = PortfolioPredictor([SHORT, LONG])
    # Same age: the short-lived class is the riskier home.
    on_long = make_container("long")
    on_short = make_container("short")
    ranked = predictor.risk_rank([on_long, on_short], now=60.0)
    assert ranked == [on_short, on_long]
    # Unknown pool falls back to the mixture rather than raising.
    anonymous = make_container(None)
    assert anonymous in predictor.risk_rank([anonymous], now=60.0)


def test_value_per_price_ranking():
    predictor = PortfolioPredictor([SHORT, LONG])
    # 1200s at price 2 beats 120s at price 1.
    assert predictor.value_per_price("long") > \
        predictor.value_per_price("short")
    with pytest.raises(KeyError):
        predictor.value_per_price("nope")


def test_allocate_proportional_to_value_per_price():
    predictor = PortfolioPredictor([SHORT, LONG])
    counts = predictor.allocate(20)
    assert sum(counts.values()) == 20
    # value/price: short = 120, long = 600 -> long gets ~5x the slots.
    assert counts["long"] > counts["short"]
    shares = predictor.allocate(0)
    assert shares == {"short": 0, "long": 0}
    with pytest.raises(ValueError):
        predictor.allocate(-1)


def test_allocate_exact_and_deterministic():
    predictor = PortfolioPredictor([SHORT, LONG])
    for total in (1, 7, 16, 33):
        first = predictor.allocate(total)
        assert sum(first.values()) == total
        assert predictor.allocate(total) == first


def test_infinite_value_classes_absorb_everything():
    safe = TransientClass("safe", NoEvictionModel(), capacity=2)
    predictor = PortfolioPredictor([SHORT, safe])
    assert math.isinf(predictor.value_per_price("safe"))
    counts = predictor.allocate(10)
    assert counts == {"safe": 10, "short": 0}
    assert math.isinf(predictor.expected_remaining(0.0))


def test_from_pools():
    pools = (TransientPool("spot", 4, ExponentialLifetimeModel(600.0),
                           600.0, price_weight=1.5),
             TransientPool("burst", 8, ExponentialLifetimeModel(60.0),
                           60.0))
    predictor = PortfolioPredictor.from_pools(pools, horizon=90.0)
    assert {c.name for c in predictor.classes} == {"spot", "burst"}
    assert predictor.horizon == 90.0
    by_name = {c.name: c for c in predictor.classes}
    assert by_name["spot"].price_weight == 1.5
    assert by_name["spot"].capacity == 4


def test_named_eviction_probability():
    predictor = PortfolioPredictor([SHORT, LONG])
    p_short = predictor.eviction_probability(0.0, 300.0, name="short")
    p_long = predictor.eviction_probability(0.0, 300.0, name="long")
    p_mix = predictor.eviction_probability(0.0, 300.0)
    assert p_long < p_mix < p_short
