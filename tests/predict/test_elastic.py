"""Unit tests for the CLUES-style elastic reserved-pool controller."""

from dataclasses import dataclass

import pytest

from repro.cluster.manager import LeasePool
from repro.errors import ResourceError
from repro.predict import ElasticReserveConfig, ElasticReserveController


@dataclass(frozen=True)
class Demand:
    """A queued job request as the controller sees it."""

    num_reserved: int
    num_transient: int


def test_config_validation():
    with pytest.raises(ValueError):
        ElasticReserveConfig(step=0)
    with pytest.raises(ValueError):
        ElasticReserveConfig(max_extra=-1)
    with pytest.raises(ValueError):
        ElasticReserveConfig(pressure_window=0.0)
    with pytest.raises(ValueError):
        ElasticReserveConfig(cooldown=-1.0)


# ----------------------------------------------------------------------
# LeasePool conversions (the mechanism the controller drives)


def test_pool_conversions_move_capacity_and_record_resizes():
    pool = LeasePool(4, 8)
    assert pool.convert_transient_to_reserved(2, now=10.0) == 2
    assert (pool.num_reserved, pool.num_transient) == (6, 6)
    assert pool.convert_reserved_to_transient(1, now=20.0) == 1
    assert (pool.num_reserved, pool.num_transient) == (5, 7)
    assert pool.resizes == [(10.0, 2), (20.0, -1)]
    assert pool.reserved_free == 5
    assert pool.transient_free == 7


def test_pool_conversion_requires_free_slots():
    pool = LeasePool(2, 3)
    with pytest.raises(ResourceError):
        pool.convert_transient_to_reserved(4, now=0.0)
    with pytest.raises(ResourceError):
        pool.convert_reserved_to_transient(3, now=0.0)
    with pytest.raises(ResourceError):
        pool.convert_transient_to_reserved(-1, now=0.0)


# ----------------------------------------------------------------------
# rebalance decisions


def test_grows_for_reserved_starved_head():
    pool = LeasePool(2, 10)
    controller = ElasticReserveController(baseline_reserved=2)
    delta = controller.rebalance(0.0, pool, [Demand(4, 2)])
    assert delta == 2
    assert (pool.num_reserved, pool.num_transient) == (4, 8)
    assert controller.decisions == [(0.0, 2)]


def test_shrinks_for_transient_starved_head_under_low_pressure():
    pool = LeasePool(8, 2)
    controller = ElasticReserveController(baseline_reserved=8)
    delta = controller.rebalance(0.0, pool, [Demand(1, 4)])
    assert delta == -2
    assert (pool.num_reserved, pool.num_transient) == (6, 4)


def test_pressure_blocks_shrinking():
    pool = LeasePool(8, 2)
    controller = ElasticReserveController(baseline_reserved=8)
    # 1 of 2 transient slots revoked inside the window: pressure 0.5.
    controller.record_revocations(50.0, 1)
    assert controller.pressure(100.0, pool.num_transient) == \
        pytest.approx(0.5)
    assert controller.rebalance(100.0, pool, [Demand(1, 4)]) == 0
    assert pool.num_reserved == 8


def test_pressure_window_expires():
    controller = ElasticReserveController(baseline_reserved=2)
    controller.record_revocations(0.0, 4)
    window = controller.config.pressure_window
    assert controller.pressure(window - 1.0, 10) == pytest.approx(0.4)
    assert controller.pressure(window + 1.0, 10) == 0.0


def test_cooldown_hysteresis():
    pool = LeasePool(2, 10)
    controller = ElasticReserveController(baseline_reserved=2)
    assert controller.rebalance(0.0, pool, [Demand(6, 2)]) == 2
    # Still starved, but inside the cooldown: no further conversion.
    assert controller.rebalance(100.0, pool, [Demand(6, 2)]) == 0
    cooldown = controller.config.cooldown
    assert controller.rebalance(cooldown + 1.0, pool, [Demand(6, 2)]) == 2
    assert [delta for _, delta in controller.decisions] == [2, 2]


def test_max_extra_caps_growth():
    config = ElasticReserveConfig(step=4, max_extra=3, cooldown=0.0)
    pool = LeasePool(2, 20)
    controller = ElasticReserveController(baseline_reserved=2, config=config)
    assert controller.rebalance(0.0, pool, [Demand(10, 2)]) == 3
    assert controller.rebalance(1.0, pool, [Demand(10, 2)]) == 0
    assert pool.num_reserved == 5


def test_floors_keep_every_job_dispatchable():
    config = ElasticReserveConfig(cooldown=0.0)
    pool = LeasePool(2, 6)
    controller = ElasticReserveController(baseline_reserved=2, config=config)
    # Some queued job needs 5 transient slots: growth must stop at 6-5.
    controller.set_floors(min_reserved=1, min_transient=5)
    assert controller.rebalance(0.0, pool, [Demand(4, 0)]) == 1
    assert pool.num_transient == 5
    assert controller.rebalance(1.0, pool, [Demand(4, 0)]) == 0


def test_both_kinds_blocked_is_a_no_op():
    pool = LeasePool(2, 2)
    controller = ElasticReserveController(baseline_reserved=2)
    assert controller.rebalance(0.0, pool, [Demand(4, 4)]) == 0
    assert controller.decisions == []


def test_idle_drifts_back_to_baseline():
    config = ElasticReserveConfig(cooldown=0.0)
    pool = LeasePool(6, 4)
    controller = ElasticReserveController(baseline_reserved=2, config=config)
    assert controller.rebalance(0.0, pool, []) == -2
    assert controller.rebalance(1.0, pool, []) == -2
    assert controller.rebalance(2.0, pool, []) == 0
    assert (pool.num_reserved, pool.num_transient) == (2, 8)


def test_idle_drift_up_when_below_baseline():
    config = ElasticReserveConfig(cooldown=0.0)
    pool = LeasePool(1, 9)
    controller = ElasticReserveController(baseline_reserved=4, config=config)
    assert controller.rebalance(0.0, pool, []) == 2
    assert controller.rebalance(1.0, pool, []) == 1
    assert (pool.num_reserved, pool.num_transient) == (4, 6)


def test_idle_keeps_extra_reserve_under_pressure():
    config = ElasticReserveConfig(cooldown=0.0)
    pool = LeasePool(6, 4)
    controller = ElasticReserveController(baseline_reserved=2, config=config)
    controller.record_revocations(10.0, 2)  # 2/4 revoked: pressure 0.5
    assert controller.rebalance(20.0, pool, []) == 0
    assert pool.num_reserved == 6
