"""Unit tests for the lifetime-predictor protocol (repro.predict).

The calibration tests pin the two properties every predictor must have
before the master may act on it: survival curves are monotone
(non-increasing in horizon, valid probabilities everywhere) and the
online hazard model reproduces the empirical lifetime percentiles of the
Google-trace analysis it was fitted from.
"""

import math

import numpy as np
import pytest

from repro.cluster.manager import TransientPool
from repro.cluster.resources import Container, ContainerKind, NodeSpec
from repro.predict import (HazardPredictor, PortfolioPredictor,
                           StaticTablePredictor, make_predictor)
from repro.trace.google_trace import TraceConfig, generate_trace
from repro.trace.lifetimes import analyze_trace
from repro.trace.models import (ExponentialLifetimeModel, NoEvictionModel,
                                PercentileLifetimeModel)


def make_container(launched_at=0.0, pool=None):
    return Container(kind=ContainerKind.TRANSIENT, spec=NodeSpec(),
                     launched_at=launched_at, pool=pool)


PERCENTILE_MODEL = PercentileLifetimeModel(
    [(0.10, 60.0), (0.50, 120.0), (0.90, 19 * 60.0)])


# ----------------------------------------------------------------------
# StaticTablePredictor


class TestStaticTable:
    def test_survival_monotone_non_increasing_in_horizon(self):
        predictor = StaticTablePredictor(PERCENTILE_MODEL)
        for age in (0.0, 30.0, 90.0, 600.0):
            curve = [predictor.survival(age, h)
                     for h in np.linspace(0.0, 2000.0, 50)]
            assert all(0.0 <= s <= 1.0 for s in curve)
            assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_zero_horizon_survival_is_one(self):
        predictor = StaticTablePredictor(PERCENTILE_MODEL)
        assert predictor.survival(100.0, 0.0) == pytest.approx(1.0)

    def test_exponential_is_memoryless(self):
        predictor = StaticTablePredictor(ExponentialLifetimeModel(300.0))
        fresh = predictor.survival(0.0, 100.0)
        for age in (10.0, 250.0, 1000.0):
            assert predictor.survival(age, 100.0) == pytest.approx(fresh)

    def test_exponential_expected_remaining_is_the_mean(self):
        predictor = StaticTablePredictor(ExponentialLifetimeModel(300.0))
        for age in (0.0, 200.0):
            assert predictor.expected_remaining(age) == \
                pytest.approx(300.0, rel=0.05)

    def test_no_eviction_model_is_riskless(self):
        predictor = StaticTablePredictor(NoEvictionModel())
        assert predictor.survival(0.0, 1e6) == 1.0
        assert predictor.eviction_probability(500.0) == 0.0
        assert math.isinf(predictor.expected_remaining(0.0))

    def test_eviction_probability_clamped_and_complementary(self):
        predictor = StaticTablePredictor(PERCENTILE_MODEL)
        for age in (0.0, 90.0):
            for horizon in (10.0, 300.0, 5000.0):
                p = predictor.eviction_probability(age, horizon)
                assert 0.0 <= p <= 1.0
                assert p == pytest.approx(
                    1.0 - predictor.survival(age, horizon))

    def test_risk_rank_orders_riskiest_first(self):
        # Inside the steep 60s-120s stretch of the percentile table the
        # hazard grows with age, so the older container ranks first.
        predictor = StaticTablePredictor(PERCENTILE_MODEL, horizon=60.0)
        young = make_container(launched_at=600.0)  # age 0
        old = make_container(launched_at=540.0)    # age 60
        assert predictor.eviction_probability(60.0, 60.0) > \
            predictor.eviction_probability(0.0, 60.0)
        ranked = predictor.risk_rank([young, old], now=600.0)
        assert ranked == [old, young]

    def test_risk_rank_breaks_ties_on_container_id(self):
        predictor = StaticTablePredictor(NoEvictionModel())
        containers = [make_container() for _ in range(5)]
        ranked = predictor.risk_rank(list(reversed(containers)), now=100.0)
        assert ranked == sorted(containers, key=lambda c: c.container_id)


# ----------------------------------------------------------------------
# HazardPredictor


class TestHazard:
    def test_cold_start_follows_the_prior(self):
        prior = StaticTablePredictor(PERCENTILE_MODEL)
        predictor = HazardPredictor(prior=prior)
        assert not predictor.fitted
        assert predictor.survival(60.0, 120.0) == \
            pytest.approx(prior.survival(60.0, 120.0))
        assert predictor.expected_remaining(0.0) == \
            pytest.approx(prior.expected_remaining(0.0))

    def test_cold_start_without_prior_is_riskless(self):
        predictor = HazardPredictor()
        assert predictor.survival(0.0, 1e6) == 1.0
        assert math.isinf(predictor.expected_remaining(0.0))

    def test_fitted_after_min_observations(self):
        predictor = HazardPredictor(min_observations=3)
        predictor.observe(100.0, censored=True)
        for lifetime in (50.0, 80.0, 110.0):
            predictor.observe(lifetime)
        assert predictor.fitted
        assert predictor.observation_count == 3  # censored ones don't count

    def test_survival_monotone_non_increasing(self):
        predictor = HazardPredictor(min_observations=4, bin_seconds=10.0,
                                    max_age=600.0)
        for lifetime in (40.0, 90.0, 150.0, 310.0, 470.0):
            predictor.observe(lifetime)
        for age in (0.0, 50.0, 200.0):
            curve = [predictor.survival(age, h)
                     for h in np.linspace(0.0, 1200.0, 60)]
            assert all(0.0 <= s <= 1.0 for s in curve)
            assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_recovers_exponential_quantiles(self, rng):
        model = ExponentialLifetimeModel(200.0)
        predictor = HazardPredictor(bin_seconds=20.0, max_age=1200.0)
        for _ in range(4000):
            predictor.observe(model.sample(rng))
        for q in (0.25, 0.5, 0.75):
            expected = -200.0 * math.log(1.0 - q)
            assert predictor.quantile(q) == pytest.approx(expected, rel=0.15)

    def test_censoring_lowers_the_hazard(self):
        """Treating survivors as deaths overstates risk; the Nelson-Aalen
        fit must count their exposure without their 'death'."""
        censored = HazardPredictor(min_observations=4, bin_seconds=30.0,
                                   max_age=600.0)
        naive = HazardPredictor(min_observations=4, bin_seconds=30.0,
                                max_age=600.0)
        for lifetime in (60.0, 120.0, 180.0, 240.0):
            censored.observe(lifetime)
            naive.observe(lifetime)
        for _ in range(8):
            censored.observe(300.0, censored=True)
            naive.observe(300.0)
        assert censored.survival(0.0, 300.0) > naive.survival(0.0, 300.0)

    def test_reproduces_google_trace_percentiles(self):
        """Fitted on the §2.1 safety-margin intervals, the hazard model's
        percentile table must land near the empirical one (censoring
        shifts the upper quantiles up a little; that is correct)."""
        trace = generate_trace(
            TraceConfig(num_containers=10, duration_hours=12.0), seed=3)
        analysis = analyze_trace(trace, safety_margin=0.01)
        assert analysis.eviction_count >= 8
        predictor = HazardPredictor.from_analysis(
            analysis, bin_seconds=120.0, max_age=4 * 3600.0)
        assert predictor.fitted
        for q in (0.25, 0.5, 0.75, 0.9):
            empirical = analysis.percentile(q * 100)
            assert predictor.quantile(q) == \
                pytest.approx(empirical, rel=0.25)

    def test_observation_invalidates_the_fit(self):
        predictor = HazardPredictor(min_observations=1, bin_seconds=30.0,
                                    max_age=600.0)
        predictor.observe(60.0)
        before = predictor.survival(0.0, 120.0)
        for _ in range(20):
            predictor.observe(600.0, censored=True)
        assert predictor.survival(0.0, 120.0) > before

    def test_validation(self):
        with pytest.raises(ValueError):
            HazardPredictor(bin_seconds=0.0)
        with pytest.raises(ValueError):
            HazardPredictor(bin_seconds=60.0, max_age=30.0)
        predictor = HazardPredictor()
        with pytest.raises(ValueError):
            predictor.observe(-1.0)
        with pytest.raises(ValueError):
            predictor.quantile(0.0)
        with pytest.raises(ValueError):
            predictor.quantile(1.0)

    def test_quantile_infinite_when_hazard_free(self):
        predictor = HazardPredictor(min_observations=1, bin_seconds=30.0,
                                    max_age=120.0)
        predictor.observe(500.0, censored=True)
        predictor.observe(10.0)
        predictor2 = HazardPredictor(min_observations=0)
        assert math.isinf(predictor2.quantile(0.99))


# ----------------------------------------------------------------------
# make_predictor registry


class TestRegistry:
    def test_default_and_static_names(self):
        for name in (None, "static"):
            predictor = make_predictor(name, PERCENTILE_MODEL)
            assert isinstance(predictor, StaticTablePredictor)
            assert predictor.model is PERCENTILE_MODEL

    def test_hazard_gets_the_static_prior(self):
        predictor = make_predictor("hazard", PERCENTILE_MODEL, horizon=90.0)
        assert isinstance(predictor, HazardPredictor)
        assert isinstance(predictor.prior, StaticTablePredictor)
        assert predictor.horizon == 90.0
        # Cold start: indistinguishable from the static table.
        static = make_predictor("static", PERCENTILE_MODEL, horizon=90.0)
        assert predictor.survival(30.0, 90.0) == \
            pytest.approx(static.survival(30.0, 90.0))

    def test_portfolio_needs_pools(self):
        with pytest.raises(ValueError, match="pools"):
            make_predictor("portfolio", PERCENTILE_MODEL)
        pools = (TransientPool("spot", 4, ExponentialLifetimeModel(600.0),
                               600.0),)
        predictor = make_predictor("portfolio", PERCENTILE_MODEL,
                                   pools=pools)
        assert isinstance(predictor, PortfolioPredictor)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("oracle", PERCENTILE_MODEL)
