"""Property-based tests of the routing layer: records and byte shares must
stay consistent for every dependency type, parallelism, and record set."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dataflow.dag import (DependencyType, LogicalDAG, Operator,
                                SourceKind, destination_indices,
                                route_output, route_sizes, source_indices)

keyed_records = st.lists(
    st.tuples(st.integers(-5, 5), st.integers(0, 100)), max_size=30)


def make_edge(dep, src_par, dst_par):
    dag = LogicalDAG()
    src = dag.add_operator(Operator(
        "s", parallelism=src_par, source_kind=SourceKind.READ,
        input_ref="s", partition_bytes=[1] * src_par))
    dst = dag.add_operator(Operator("d", parallelism=dst_par))
    return dag.connect(src, dst, dep)


@settings(max_examples=100, deadline=None)
@given(dep=st.sampled_from(list(DependencyType)),
       par=st.integers(1, 6), dst_par=st.integers(1, 6),
       src_idx=st.integers(0, 5), records=keyed_records)
def test_no_record_lost_or_duplicated(dep, par, dst_par, src_idx, records):
    if dep is DependencyType.ONE_TO_ONE:
        dst_par = par
    src_idx = src_idx % par
    edge = make_edge(dep, par, dst_par)
    routed = route_output(edge, src_idx, records)
    flattened = [r for bucket in routed.values() for r in bucket]
    if dep is DependencyType.ONE_TO_MANY:
        assert flattened == records * dst_par
    else:
        assert sorted(flattened) == sorted(records)


@settings(max_examples=100, deadline=None)
@given(dep=st.sampled_from(list(DependencyType)),
       par=st.integers(1, 6), dst_par=st.integers(1, 6),
       src_idx=st.integers(0, 5),
       size=st.floats(0.0, 1e9, allow_nan=False))
def test_size_shares_conserve_bytes(dep, par, dst_par, src_idx, size):
    if dep is DependencyType.ONE_TO_ONE:
        dst_par = par
    src_idx = src_idx % par
    edge = make_edge(dep, par, dst_par)
    shares = route_sizes(edge, src_idx, size)
    if dep is DependencyType.ONE_TO_MANY:
        assert all(v == size for v in shares.values())
        assert len(shares) == dst_par
    else:
        assert sum(shares.values()) == pytest.approx(size)


@settings(max_examples=100, deadline=None)
@given(dep=st.sampled_from(list(DependencyType)),
       par=st.integers(1, 6), dst_par=st.integers(1, 6),
       src_idx=st.integers(0, 5), records=keyed_records)
def test_routed_buckets_within_destination_indices(dep, par, dst_par,
                                                   src_idx, records):
    if dep is DependencyType.ONE_TO_ONE:
        dst_par = par
    src_idx = src_idx % par
    edge = make_edge(dep, par, dst_par)
    allowed = set(destination_indices(edge, src_idx))
    routed = route_output(edge, src_idx, records)
    assert set(routed) <= allowed


@settings(max_examples=100, deadline=None)
@given(dep=st.sampled_from(list(DependencyType)),
       par=st.integers(1, 6), dst_par=st.integers(1, 6))
def test_every_parent_has_a_destination(dep, par, dst_par):
    if dep is DependencyType.ONE_TO_ONE:
        dst_par = par
    edge = make_edge(dep, par, dst_par)
    covered = set()
    for src_idx in range(par):
        dsts = destination_indices(edge, src_idx)
        assert dsts, "every parent must feed someone"
        covered.update(dsts)
    # And conversely every destination index is fed by someone.
    fed = {dst for dst in range(dst_par) if source_indices(edge, dst)}
    if dep in (DependencyType.ONE_TO_MANY, DependencyType.MANY_TO_MANY):
        assert fed == set(range(dst_par))
