"""Property-based end-to-end tests: exactly-once output under arbitrary
eviction schedules, for all three engines (§3.2.5).

hypothesis drives the eviction schedule (seed + mean lifetime); the engines
must always terminate with the local runner's output.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import (ClusterConfig, LocalRunner, PadoEngine,
                   SparkCheckpointEngine, SparkEngine)
from repro.dataflow import Pipeline, SumCombiner
from repro.engines.base import Program
from repro.trace.models import ExponentialLifetimeModel
from tests.conftest import records_equal


def tiny_program() -> Program:
    p = Pipeline("wc")
    lines = p.read("read", partitions=[["a b", "c"], ["a"], ["b b c"],
                                       ["d a"]])
    (lines.flat_map("split", str.split)
          .map("pair", lambda w: (w, 1))
          .reduce_by_key("count", SumCombiner(), parallelism=2))
    return Program(p.to_dag(), "wc")


EXPECTED = sorted(LocalRunner().run(tiny_program().dag).collect("count"))

ENGINE_FACTORIES = [PadoEngine, SparkEngine, SparkCheckpointEngine]


@pytest.mark.parametrize("engine_cls", ENGINE_FACTORIES)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000),
       mean_lifetime=st.floats(1.5, 60.0))
def test_exactly_once_output_any_schedule(engine_cls, seed, mean_lifetime):
    engine = engine_cls()
    cluster = ClusterConfig(
        num_reserved=2, num_transient=3,
        eviction=ExponentialLifetimeModel(mean_lifetime))
    result = engine.run(tiny_program(), cluster, seed=seed,
                        time_limit=6 * 3600)
    assert result.completed, (engine.name, seed, mean_lifetime)
    assert records_equal(sorted(result.collected("count")), EXPECTED), \
        (engine.name, seed, mean_lifetime)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_pado_commit_counts_bounded(seed):
    """Commits happen at least once per transient task but never explode
    beyond launched attempts."""
    engine = PadoEngine()
    cluster = ClusterConfig(num_reserved=2, num_transient=3,
                            eviction=ExponentialLifetimeModel(4.0))
    result = engine.run(tiny_program(), cluster, seed=seed,
                        time_limit=6 * 3600)
    assert result.completed
    commits = result.extras["commits"]
    assert commits >= 1
    assert commits <= result.launched_tasks
