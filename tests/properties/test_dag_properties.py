"""Property-based tests on logical DAGs, placement, and partitioning.

Random DAGs are generated with hypothesis; the invariants of Algorithms 1
and 2 must hold for all of them.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.compiler.partitioning import (check_partitioning,
                                              partition_stages)
from repro.core.compiler.placement import check_placement, place_operators
from repro.dataflow.dag import (DependencyType, LogicalDAG, OpCost, Operator,
                                Placement, SourceKind)

DEP_TYPES = list(DependencyType)


@st.composite
def random_dag(draw):
    """A random valid logical DAG: sources feed a layered set of
    computational operators with random edge types."""
    num_sources = draw(st.integers(1, 3))
    num_ops = draw(st.integers(1, 8))
    dag = LogicalDAG()
    operators = []
    for i in range(num_sources):
        kind = draw(st.sampled_from([SourceKind.READ, SourceKind.CREATED]))
        parallelism = 1 if kind is SourceKind.CREATED else \
            draw(st.integers(1, 4))
        op = Operator(
            f"src{i}", parallelism=parallelism, source_kind=kind,
            input_ref=f"src{i}" if kind is SourceKind.READ else None,
            partition_bytes=([10] * parallelism
                             if kind is SourceKind.READ else None),
            cost=OpCost(fixed_output_bytes=10))
        operators.append(dag.add_operator(op))
    for i in range(num_ops):
        parallelism = draw(st.integers(1, 4))
        op = dag.add_operator(Operator(f"op{i}", parallelism=parallelism))
        operators.append(op)
        # Connect to 1-2 random earlier operators (acyclic by construction).
        num_parents = draw(st.integers(1, min(2, len(operators) - 1)))
        candidates = operators[:-1]
        parents = draw(st.permutations(candidates))[:num_parents]
        for parent in parents:
            legal = [d for d in DEP_TYPES
                     if d is not DependencyType.ONE_TO_ONE
                     or parent.parallelism == op.parallelism]
            dep = draw(st.sampled_from(legal))
            dag.connect(parent, op, dep)
    # Drop computational operators that ended up parentless.
    return _prune_orphans(dag)


def _prune_orphans(dag):
    pruned = LogicalDAG()
    keep = [op for op in dag.operators
            if op.is_source or dag.in_edges(op)]
    clones = {}
    for op in keep:
        clone = Operator(op.name, parallelism=op.parallelism,
                         source_kind=op.source_kind, input_ref=op.input_ref,
                         partition_bytes=op.partition_bytes, cost=op.cost)
        clones[op.name] = pruned.add_operator(clone)
    for op in keep:
        for edge in dag.in_edges(op):
            if edge.src.name in clones:
                pruned.connect(clones[edge.src.name], clones[op.name],
                               edge.dep_type)
    return pruned


@settings(max_examples=60, deadline=None)
@given(random_dag())
def test_placement_invariants(dag):
    place_operators(dag)
    check_placement(dag)  # raises if any invariant is broken
    for op in dag.operators:
        assert op.placement in (Placement.RESERVED, Placement.TRANSIENT)


@settings(max_examples=60, deadline=None)
@given(random_dag())
def test_every_wide_consumer_on_reserved(dag):
    place_operators(dag)
    for op in dag.operators:
        if any(e.dep_type.is_wide for e in dag.in_edges(op)):
            assert op.placement is Placement.RESERVED


@settings(max_examples=60, deadline=None)
@given(random_dag())
def test_partitioning_invariants(dag):
    place_operators(dag)
    stage_dag = partition_stages(dag)
    check_partitioning(stage_dag)


@settings(max_examples=60, deadline=None)
@given(random_dag())
def test_partitioning_covers_and_roots(dag):
    place_operators(dag)
    stage_dag = partition_stages(dag)
    # Every operator appears in >= 1 stage; every reserved operator roots
    # exactly one stage.
    for op in dag.operators:
        stages = stage_dag.stages_containing(op)
        assert stages, op.name
        if op.placement is Placement.RESERVED:
            assert sum(1 for s in stage_dag.stages
                       if s.root_op is op) == 1


@settings(max_examples=60, deadline=None)
@given(random_dag())
def test_stage_dag_acyclic_and_consistent(dag):
    place_operators(dag)
    stage_dag = partition_stages(dag)
    order = stage_dag.topological()
    position = {id(s): i for i, s in enumerate(order)}
    for stage in stage_dag.stages:
        for child in stage.children:
            assert position[id(stage)] < position[id(child)]
        for parent in stage.parents:
            assert position[id(parent)] < position[id(stage)]


@settings(max_examples=60, deadline=None)
@given(random_dag())
def test_fusion_partitions_operators(dag):
    from repro.core.compiler.fusion import fuse_operators
    place_operators(dag)
    chains = fuse_operators(dag, dag.operators,
                            require_same_placement=False)
    names = [op.name for chain in chains for op in chain.ops]
    assert sorted(names) == sorted(op.name for op in dag.operators)
    for chain in chains:
        # Chain-internal edges are all one-to-one.
        for prev, nxt in zip(chain.ops, chain.ops[1:]):
            edges = [e for e in dag.in_edges(nxt) if e.src is prev]
            assert len(edges) == 1
            assert edges[0].dep_type is DependencyType.ONE_TO_ONE


@settings(max_examples=60, deadline=None)
@given(random_dag())
def test_lifetime_placement_matches_weight_order(dag):
    """§6 placement invariant: among operators assigned to transient
    classes, recomputation weight and class lifetime must sort the same
    way — no light operator may occupy a longer-lived (more valuable)
    class than a heavier one."""
    import math

    from repro.core.compiler.lifetime_placement import (
        ResourceClass, place_with_lifetime_classes)
    from repro.core.compiler.placement import recomputation_weight

    classes = [ResourceClass("reserved", math.inf),
               ResourceClass("long", 3600.0),
               ResourceClass("mid", 600.0),
               ResourceClass("short", 120.0)]
    assignment = place_with_lifetime_classes(dag, classes)
    for op in dag.operators:
        assert op.name in assignment
        if any(e.dep_type.is_wide for e in dag.in_edges(op)):
            assert assignment[op.name].is_reserved, op.name
    flexible = sorted(
        (recomputation_weight(dag, op),
         assignment[op.name].expected_lifetime)
        for op in dag.operators if not assignment[op.name].is_reserved)
    for (w1, l1), (w2, l2) in zip(flexible, flexible[1:]):
        if w1 < w2:
            assert l1 <= l2
