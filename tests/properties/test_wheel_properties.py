"""Heap-vs-wheel equivalence properties.

The calendar queue in :mod:`repro.cluster.events` claims that parking an
event in a bucket and spilling the bucket later is indistinguishable from
pushing the event straight onto the heap: entries keep their
``(time, priority, seq)`` triple, and a bucket merges before anything at
or past its start can pop. These tests drive two simulators through the
*same* API-call sequence — one stock (wheel active), one with
``_wheel_put`` rerouted to a plain heap push — and assert the observable
behaviour is identical, including tombstoned handles and same-timestamp
tie-breaks.
"""

from heapq import heappush

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cluster.events import Simulator


def _heap_only(sim: Simulator) -> Simulator:
    """Disable the wheel on one instance: bucket routing degenerates to a
    direct heap push of the identical entry."""
    sim._wheel_put = lambda entry: heappush(sim._heap, entry)  # type: ignore[method-assign]
    return sim


# Quantized delays force time collisions across bucket boundaries (width
# 64 s), exercising the seq tie-break at the merge point.
_DELAYS = st.floats(0.0, 512.0, allow_nan=False).map(lambda d: round(d / 16) * 16.0)

_OPS = st.lists(
    st.tuples(
        _DELAYS,
        st.integers(-2, 2),                    # priority
        st.sampled_from(["wheel", "fast", "at_seq", "handle"]),
        st.booleans(),                         # cancel (handle ops only)
    ),
    max_size=60,
)


def _apply(sim: Simulator, ops, fired):
    handles = []
    for i, (delay, priority, kind, _cancel) in enumerate(ops):
        cb = (lambda s=sim, i=i: fired.append((s.now, i)))
        if kind == "wheel":
            sim.schedule_wheel(delay, cb, priority=priority)
        elif kind == "fast":
            sim.schedule_fast(delay, cb, priority=priority)
        elif kind == "at_seq":
            seq = sim.take_seq()
            sim.schedule_at_seq(sim.now + delay, seq, cb, priority=priority)
        else:
            handles.append((i, sim.schedule(delay, cb, priority=priority)))
    for i, handle in handles:
        if ops[i][3]:
            handle.cancel()


@settings(max_examples=200, deadline=None)
@given(_OPS)
def test_wheel_and_heap_fire_identically(ops):
    ref, wheel = _heap_only(Simulator()), Simulator()
    ref_fired, wheel_fired = [], []
    _apply(ref, ops, ref_fired)
    _apply(wheel, ops, wheel_fired)
    ref.run()
    wheel.run()
    assert wheel_fired == ref_fired
    assert wheel.events_processed == ref.events_processed
    assert wheel.now == ref.now
    assert wheel.pending_events == 0


@settings(max_examples=100, deadline=None)
@given(_OPS, st.lists(_DELAYS, max_size=10))
def test_wheel_equivalence_with_dynamic_rescheduling(ops, followups):
    # Callbacks that schedule further events exercise spills that happen
    # mid-run, with fresh near-term events racing already-bucketed ones.
    def drive(sim):
        fired = []

        def fire(i, depth):
            fired.append((sim.now, i, depth))
            if depth < len(followups):
                sim.schedule_wheel(followups[depth],
                                   lambda: fire(i, depth + 1))
        for i, (delay, priority, kind, _cancel) in enumerate(ops):
            if kind == "wheel":
                sim.schedule_wheel(delay, lambda i=i: fire(i, 0),
                                   priority=priority)
            else:
                sim.schedule_fast(delay, lambda i=i: fire(i, 0),
                                  priority=priority)
        sim.run()
        return fired

    assert drive(Simulator()) == drive(_heap_only(Simulator()))


@settings(max_examples=100, deadline=None)
@given(_OPS, st.floats(0.0, 600.0, allow_nan=False))
def test_wheel_respects_run_until(ops, cutoff):
    ref, wheel = _heap_only(Simulator()), Simulator()
    ref_fired, wheel_fired = [], []
    _apply(ref, ops, ref_fired)
    _apply(wheel, ops, wheel_fired)
    ref.run(until=cutoff)
    wheel.run(until=cutoff)
    assert wheel_fired == ref_fired
    assert wheel.now == ref.now == cutoff
    assert wheel.pending_events == ref.pending_events
    ref.run()
    wheel.run()
    assert wheel_fired == ref_fired
