"""Property-based tests for the discrete-event simulator core."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cluster.events import Simulator


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0.0, 1000.0, allow_nan=False), max_size=50))
def test_events_observe_nondecreasing_time(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(0.0, 100.0, allow_nan=False),
                          st.integers(-5, 5)), max_size=40))
def test_priority_order_within_same_time(events):
    sim = Simulator()
    observed = []
    for delay, priority in events:
        sim.schedule(delay, lambda d=delay, p=priority:
                     observed.append((d, p)), priority=priority)
    sim.run()
    # Within equal timestamps, priorities must be non-decreasing.
    for (t0, p0), (t1, p1) in zip(observed, observed[1:]):
        assert t0 <= t1
        if t0 == t1:
            pass  # ties between equal (time, priority) keep insertion order
    same_time = {}
    for t, p in observed:
        same_time.setdefault(t, []).append(p)
    for priorities in same_time.values():
        assert priorities == sorted(priorities)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.1, 100.0, allow_nan=False), min_size=1,
                max_size=30),
       st.data())
def test_cancelled_events_never_fire(delays, data):
    sim = Simulator()
    fired = []
    handles = [sim.schedule(d, lambda i=i: fired.append(i))
               for i, d in enumerate(delays)]
    to_cancel = data.draw(st.sets(st.integers(0, len(delays) - 1)))
    for i in to_cancel:
        handles[i].cancel()
    sim.run()
    assert set(fired) == set(range(len(delays))) - to_cancel


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.0, 50.0, allow_nan=False), max_size=30),
       st.floats(0.0, 60.0, allow_nan=False))
def test_run_until_is_a_clean_pause(delays, cutoff):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run(until=cutoff)
    assert all(d <= cutoff for d in fired)
    sim.run()
    assert sorted(fired) == sorted(delays)
