"""Property-based tests for the LRU cache."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.runtime.cache import LruCache

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 20),
                  st.floats(1.0, 40.0)),
        st.tuples(st.just("get"), st.integers(0, 20), st.just(0.0)),
    ),
    max_size=200)


@settings(max_examples=100, deadline=None)
@given(ops, st.floats(10.0, 100.0))
def test_capacity_never_exceeded(operations, capacity):
    cache = LruCache(capacity)
    for op, key, size in operations:
        if op == "put":
            cache.put(key, size, payload=key)
        else:
            cache.get(key)
        assert cache.used_bytes <= capacity + 1e-9
        assert cache.used_bytes >= 0


@settings(max_examples=100, deadline=None)
@given(ops, st.floats(10.0, 100.0))
def test_used_bytes_matches_entries(operations, capacity):
    cache = LruCache(capacity)
    shadow = {}
    for op, key, size in operations:
        if op == "put":
            cache.put(key, size, payload=key)
            if size <= capacity:
                shadow[key] = size
        else:
            cache.get(key)
        # Entries in the cache always return exactly what was stored.
        for key2 in list(shadow):
            entry = cache.get(key2) if key2 in cache else None
            if entry is not None:
                assert entry == (shadow[key2], key2)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 9), min_size=1, max_size=100))
def test_most_recent_key_always_retained(keys):
    """After any access sequence, the most recently inserted key (that
    fits) is still cached."""
    cache = LruCache(50.0)
    for key in keys:
        cache.put(key, 10.0, payload=None)
        assert key in cache
