"""Calibration tests: the trace pipeline lands near the paper's §2.1 numbers.

These run the full pipeline — synthesize a trace, B-spline it to 1-minute
samples, derive transient lifetimes under the three safety margins — and
check the resulting statistics against Figure 1 / Tables 1-2. Tolerances are
loose (the source trace is synthetic); exact measured-vs-paper values are
recorded in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.trace import (TraceConfig, analyze_trace, collected_memory_table,
                         generate_trace, refine_trace)
from repro.trace.models import TABLE2_COLLECTED_MEMORY

MARGINS = {"0.1%": 0.001, "1%": 0.01, "5%": 0.05}


@pytest.fixture(scope="module")
def refined_trace():
    config = TraceConfig(num_containers=30, duration_hours=48.0)
    return refine_trace(generate_trace(config, seed=0))


@pytest.fixture(scope="module")
def analyses(refined_trace):
    return {label: analyze_trace(refined_trace, margin)
            for label, margin in MARGINS.items()}


def test_table2_collected_memory(refined_trace):
    """Table 2: collected idle memory fractions per safety margin."""
    table = collected_memory_table(refined_trace)
    for label, expected in TABLE2_COLLECTED_MEMORY.items():
        assert table[label] == pytest.approx(expected, abs=0.04), label
    # Monotone: looser margin collects less.
    assert table["baseline"] >= table["0.1%"] >= table["1%"] >= table["5%"]


def test_table1_lifetime_ordering(analyses):
    """Table 1's qualitative structure: tighter margins give strictly
    shorter lifetimes at the median and the 90th percentile."""
    p50 = {k: a.percentile(50) for k, a in analyses.items()}
    p90 = {k: a.percentile(90) for k, a in analyses.items()}
    assert p50["0.1%"] < p50["1%"] < p50["5%"]
    assert p90["0.1%"] < p90["1%"] < p90["5%"]


def test_table1_magnitudes(analyses):
    """Lifetimes are in the paper's ballpark (within ~3x at each anchor)."""
    expectations_minutes = {
        ("0.1%", 50): 2, ("0.1%", 90): 19,
        ("1%", 50): 10, ("1%", 90): 64,
        ("5%", 50): 20, ("5%", 90): 276,
    }
    for (label, q), paper_minutes in expectations_minutes.items():
        measured = analyses[label].percentile(q) / 60.0
        assert paper_minutes / 3.5 <= measured <= paper_minutes * 3.5, \
            (label, q, measured)


def test_figure1_high_margin_cdf_shape(analyses):
    """Figure 1: under the 0.1% margin most containers die within 30 min."""
    analysis = analyses["0.1%"]
    ts = np.array([30 * 60.0])
    assert analysis.cdf(ts)[0] > 0.85


def test_figure1_cdfs_ordered(analyses):
    """At any time horizon, tighter margins have evicted at least as large
    a fraction of containers (CDFs don't cross, as in Figure 1)."""
    ts = np.array([60.0, 300.0, 600.0, 1800.0, 3600.0])
    tight = analyses["0.1%"].cdf(ts)
    medium = analyses["1%"].cdf(ts)
    loose = analyses["5%"].cdf(ts)
    assert np.all(tight >= medium - 0.05)
    assert np.all(medium >= loose - 0.05)


def test_evictions_happen_within_minutes(analyses):
    """§1: evictions can occur only a few minutes after allocation."""
    assert analyses["0.1%"].percentile(10) <= 5 * 60.0
