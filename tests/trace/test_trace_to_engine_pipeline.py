"""Full-pipeline integration: trace analysis feeds engine experiments.

The paper's §5 setup: lifetimes derived from the (Google) trace drive the
eviction schedule of the engine cluster. We run the whole chain on the
synthetic trace — generate, refine, analyze, package as a lifetime model,
execute a job against it.
"""

import pytest

from repro import ClusterConfig, PadoEngine
from repro.trace import (TraceConfig, analyze_trace, generate_trace,
                         refine_trace)
from repro.workloads import mr_synthetic_program


@pytest.fixture(scope="module")
def trace_model():
    config = TraceConfig(num_containers=10, duration_hours=24.0)
    trace = refine_trace(generate_trace(config, seed=3))
    analysis = analyze_trace(trace, safety_margin=0.001)
    return analysis.to_lifetime_model("from-trace")


def test_trace_derived_model_drives_engine(trace_model):
    cluster = ClusterConfig(num_reserved=2, num_transient=4,
                            eviction=trace_model)
    result = PadoEngine().run(mr_synthetic_program(scale=0.05), cluster,
                              seed=4, time_limit=48 * 3600)
    assert result.completed
    assert result.evictions > 0


def test_trace_model_is_sampleable_and_positive(trace_model, rng):
    for _ in range(100):
        assert trace_model.sample(rng) > 0


def test_tighter_margin_gives_harder_engine_conditions():
    config = TraceConfig(num_containers=10, duration_hours=24.0)
    trace = refine_trace(generate_trace(config, seed=3))
    results = {}
    for margin in (0.001, 0.05):
        model = analyze_trace(trace, margin).to_lifetime_model()
        cluster = ClusterConfig(num_reserved=2, num_transient=4,
                                eviction=model)
        results[margin] = PadoEngine().run(
            mr_synthetic_program(scale=0.05), cluster, seed=4,
            time_limit=48 * 3600)
    assert results[0.001].completed and results[0.05].completed
    assert results[0.001].evictions >= results[0.05].evictions
