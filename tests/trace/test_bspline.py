"""Unit tests for B-spline trace refinement (§2.1)."""

import numpy as np
import pytest

from repro.trace.bspline import (REFINED_INTERVAL, refine_container,
                                 refine_series, refine_trace)
from repro.trace.google_trace import TraceConfig, generate_trace


def test_refines_5min_to_1min():
    times = np.arange(0, 3600.1, 300.0)
    values = np.sin(times / 1000.0)
    fine_t, fine_v = refine_series(times, values)
    assert fine_t[1] - fine_t[0] == REFINED_INTERVAL
    assert fine_t[0] == times[0]
    assert fine_t[-1] <= times[-1] + 1e-9
    assert len(fine_t) == len(fine_v) == 61


def test_spline_interpolates_original_samples():
    times = np.arange(0, 3000.1, 300.0)
    values = np.cos(times / 500.0)
    fine_t, fine_v = refine_series(times, values)
    for t, v in zip(times, values):
        idx = int(round((t - times[0]) / REFINED_INTERVAL))
        assert fine_v[idx] == pytest.approx(v, abs=1e-9)


def test_spline_tracks_smooth_signal_between_samples():
    times = np.arange(0, 6000.1, 300.0)
    values = np.sin(times / 2000.0)
    fine_t, fine_v = refine_series(times, values)
    np.testing.assert_allclose(fine_v, np.sin(fine_t / 2000.0), atol=1e-3)


def test_short_series_degrades_spline_degree():
    times = np.array([0.0, 300.0])
    values = np.array([1.0, 2.0])
    fine_t, fine_v = refine_series(times, values)
    # Linear interpolation between the two points.
    np.testing.assert_allclose(fine_v, 1.0 + fine_t / 300.0, atol=1e-9)


def test_single_point_passthrough():
    t, v = refine_series(np.array([0.0]), np.array([5.0]))
    assert list(t) == [0.0] and list(v) == [5.0]


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        refine_series(np.arange(3), np.arange(4))


def test_bad_interval_rejected():
    with pytest.raises(ValueError):
        refine_series(np.arange(3.0), np.arange(3.0), target_interval=0.0)


def test_refine_container_clips_to_capacity():
    trace = generate_trace(TraceConfig(num_containers=2, duration_hours=6.0),
                           seed=5)
    refined = refine_container(trace.containers[0])
    assert np.all(refined.usage_bytes >= 0)
    assert np.all(refined.usage_bytes <= refined.capacity_bytes)
    assert refined.capacity_bytes == trace.containers[0].capacity_bytes


def test_refine_trace_updates_interval():
    trace = generate_trace(TraceConfig(num_containers=2, duration_hours=6.0),
                           seed=6)
    refined = refine_trace(trace)
    assert refined.interval_seconds == REFINED_INTERVAL
    assert len(refined.containers) == 2
    ratio = (len(refined.containers[0].times) - 1) / \
        (len(trace.containers[0].times) - 1)
    assert ratio == pytest.approx(5.0, rel=0.01)
