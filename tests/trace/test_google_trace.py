"""Unit tests for the synthetic Google-trace generator."""

import numpy as np
import pytest

from repro.trace.google_trace import (LCContainerUsage, TraceConfig,
                                      generate_trace)


def small_config(**overrides):
    defaults = dict(num_containers=6, duration_hours=12.0)
    defaults.update(overrides)
    return TraceConfig(**defaults)


def test_trace_shape():
    config = small_config()
    trace = generate_trace(config, seed=1)
    assert len(trace.containers) == 6
    expected_steps = int(12 * 3600 / config.interval_seconds) + 1
    for container in trace.containers:
        assert len(container.times) == expected_steps
        assert container.times[1] - container.times[0] == \
            config.interval_seconds


def test_usage_within_physical_bounds():
    trace = generate_trace(small_config(), seed=2)
    for container in trace.containers:
        assert np.all(container.usage_bytes >= 0)
        assert np.all(container.usage_bytes <= container.capacity_bytes)


def test_idle_bytes_complement_usage():
    trace = generate_trace(small_config(), seed=3)
    container = trace.containers[0]
    np.testing.assert_allclose(
        container.idle_bytes + container.usage_bytes,
        container.capacity_bytes)


def test_deterministic_given_seed():
    a = generate_trace(small_config(), seed=7)
    b = generate_trace(small_config(), seed=7)
    for ca, cb in zip(a.containers, b.containers):
        np.testing.assert_array_equal(ca.usage_bytes, cb.usage_bytes)


def test_different_seeds_differ():
    a = generate_trace(small_config(), seed=7)
    b = generate_trace(small_config(), seed=8)
    assert not np.array_equal(a.containers[0].usage_bytes,
                              b.containers[0].usage_bytes)


def test_mean_idle_fraction_near_configured_overprovisioning():
    """LC jobs leave roughly (1 - mean_usage) of their allocation idle —
    the source of Table 2's ~26% baseline."""
    trace = generate_trace(TraceConfig(num_containers=30,
                                       duration_hours=48.0), seed=4)
    assert 0.15 < trace.mean_idle_fraction() < 0.40


def test_config_validation():
    with pytest.raises(ValueError):
        TraceConfig(num_containers=0)
    with pytest.raises(ValueError):
        TraceConfig(duration_hours=-1.0)
    with pytest.raises(ValueError):
        TraceConfig(mean_usage=1.5)


def test_usage_series_alignment_checked():
    with pytest.raises(ValueError):
        LCContainerUsage(capacity_bytes=1.0, times=np.arange(3),
                         usage_bytes=np.arange(4))
