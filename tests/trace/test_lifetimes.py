"""Unit tests for the safety-margin lifetime derivation (§2.1)."""

import numpy as np
import pytest

from repro.trace.google_trace import LCContainerUsage
from repro.trace.lifetimes import (analyze_container, analyze_trace,
                                   collected_memory_table,
                                   lifetime_percentile_table)
from repro.trace.google_trace import GoogleTrace

GB = 2**30


def make_container(usage_fractions, capacity=10 * GB, interval=60.0):
    usage = np.asarray(usage_fractions, dtype=float) * capacity
    times = np.arange(len(usage)) * interval
    return LCContainerUsage(capacity_bytes=capacity, times=times,
                            usage_bytes=usage)


def test_flat_usage_yields_one_uninterrupted_container():
    container = make_container([0.5] * 10)
    intervals, _ = analyze_container(container, safety_margin=0.01)
    assert len(intervals) == 1
    assert not intervals[0].evicted  # right-censored at trace end


def test_usage_spike_evicts():
    # Idle = 50% initially; spike to 95% usage leaves less than the
    # transient allocation + buffer -> eviction at the spike.
    container = make_container([0.5, 0.5, 0.95, 0.5, 0.5])
    intervals, _ = analyze_container(container, safety_margin=0.01)
    evicted = [iv for iv in intervals if iv.evicted]
    assert len(evicted) == 1
    assert evicted[0].start == 0.0
    assert evicted[0].end == 2 * 60.0
    assert evicted[0].lifetime == 2 * 60.0
    # A replacement starts once idle memory reappears.
    assert len(intervals) == 2


def test_allocation_grows_when_lc_usage_decreases():
    container = make_container([0.6, 0.4, 0.2])
    intervals, _ = analyze_container(container, safety_margin=0.0,
                                     min_allocation_fraction=0.0)
    assert intervals[0].allocation_bytes == pytest.approx(0.8 * 10 * GB)


def test_tighter_margin_evicts_more():
    rng = np.random.default_rng(0)
    usage = 0.6 + 0.04 * rng.standard_normal(500)
    container = make_container(np.clip(usage, 0.05, 0.99))
    tight, _ = analyze_container(container, safety_margin=0.001)
    loose, _ = analyze_container(container, safety_margin=0.10)
    tight_evictions = sum(1 for iv in tight if iv.evicted)
    loose_evictions = sum(1 for iv in loose if iv.evicted)
    assert tight_evictions > loose_evictions


def test_invalid_margin_rejected():
    container = make_container([0.5])
    with pytest.raises(ValueError):
        analyze_container(container, safety_margin=1.0)
    with pytest.raises(ValueError):
        analyze_container(container, safety_margin=-0.1)


def test_replacement_respects_min_allocation():
    # After the spike, idle is only 4% of capacity: below the 10% minimum,
    # so no replacement container starts.
    container = make_container([0.5, 0.96, 0.96])
    intervals, _ = analyze_container(container, safety_margin=0.01,
                                     min_allocation_fraction=0.10)
    assert len(intervals) == 1
    assert intervals[0].evicted


def test_collected_fraction_accounting():
    # Constant 50% usage, zero margin, no minimum: the transient container
    # holds exactly the idle half for the whole trace.
    container = make_container([0.5] * 11)
    analysis = analyze_trace(
        GoogleTrace(containers=[container], interval_seconds=60.0),
        safety_margin=0.0, min_allocation_fraction=0.0)
    assert analysis.collected_fraction == pytest.approx(0.5)


def test_analysis_percentiles_and_cdf():
    container = make_container([0.5, 0.95, 0.5, 0.95, 0.5, 0.95])
    analysis = analyze_trace(
        GoogleTrace(containers=[container], interval_seconds=60.0),
        safety_margin=0.01)
    # Each spike evicts; a small replacement starts at each spike since 4%
    # of capacity is still collectable after the 1% buffer.
    assert analysis.eviction_count == 3
    lifetimes = analysis.lifetimes
    assert all(l > 0 for l in lifetimes)
    cdf = analysis.cdf(np.array([0.0, 1e9]))
    assert cdf[0] == 0.0 and cdf[-1] == 1.0
    model = analysis.to_lifetime_model()
    assert model.percentile(50) > 0


def test_collected_memory_table_shape():
    containers = [make_container([0.7] * 30) for _ in range(3)]
    trace = GoogleTrace(containers=containers, interval_seconds=60.0)
    table = collected_memory_table(trace)
    assert set(table) == {"baseline", "0.1%", "1%", "5%"}
    # Baseline (all idle memory) collects the most.
    assert table["baseline"] >= table["0.1%"] >= table["1%"] >= table["5%"]


def test_lifetime_percentile_table_keys():
    rng = np.random.default_rng(1)
    usage = np.clip(0.6 + 0.05 * rng.standard_normal(2000), 0.05, 0.99)
    trace = GoogleTrace(containers=[make_container(usage)],
                        interval_seconds=60.0)
    table = lifetime_percentile_table(trace, margins=(0.001, 0.01),
                                      percentiles=(10, 50))
    assert set(table) == {("0.1%", 10), ("0.1%", 50), ("1%", 10), ("1%", 50)}
    assert table[("0.1%", 50)] <= table[("1%", 50)]
