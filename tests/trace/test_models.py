"""Unit tests for lifetime models and the paper's eviction regimes."""

import math

import numpy as np
import pytest

from repro.trace.models import (EmpiricalLifetimeModel, EvictionRate,
                                ExponentialLifetimeModel, NoEvictionModel,
                                PercentileLifetimeModel,
                                TABLE1_LIFETIME_MINUTES, MINUTES)


def test_no_eviction_model_samples_infinity(rng):
    model = NoEvictionModel()
    assert math.isinf(model.sample(rng))
    assert model.cdf(1e12) == 0.0


def test_exponential_model_mean(rng):
    model = ExponentialLifetimeModel(100.0)
    samples = [model.sample(rng) for _ in range(5000)]
    assert np.mean(samples) == pytest.approx(100.0, rel=0.1)
    assert model.cdf(100.0) == pytest.approx(1 - math.exp(-1))


def test_exponential_model_rejects_bad_mean():
    with pytest.raises(ValueError):
        ExponentialLifetimeModel(0.0)


class TestPercentileModel:
    def make(self):
        return PercentileLifetimeModel(
            [(0.10, 60.0), (0.50, 120.0), (0.90, 19 * 60.0)])

    def test_quantile_hits_anchors_exactly(self):
        model = self.make()
        assert model.quantile(0.10) == pytest.approx(60.0)
        assert model.quantile(0.50) == pytest.approx(120.0)
        assert model.quantile(0.90) == pytest.approx(19 * 60.0)

    def test_quantile_monotone(self):
        model = self.make()
        values = [model.quantile(u) for u in np.linspace(0, 1, 101)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_cdf_inverts_quantile(self):
        model = self.make()
        for u in (0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95):
            assert model.cdf(model.quantile(u)) == pytest.approx(u, abs=1e-9)

    def test_sampled_percentiles_match_anchors(self, rng):
        model = self.make()
        samples = sorted(model.sample(rng) for _ in range(20000))
        assert np.percentile(samples, 50) == pytest.approx(120.0, rel=0.1)
        assert np.percentile(samples, 90) == pytest.approx(19 * 60, rel=0.1)

    def test_rejects_bad_anchors(self):
        with pytest.raises(ValueError):
            PercentileLifetimeModel([])
        with pytest.raises(ValueError):
            PercentileLifetimeModel([(1.5, 60.0)])
        with pytest.raises(ValueError):
            PercentileLifetimeModel([(0.1, 100.0), (0.5, 50.0)])
        with pytest.raises(ValueError):
            PercentileLifetimeModel([(0.5, -1.0)])


class TestEvictionRate:
    def test_safety_margins_match_paper(self):
        assert EvictionRate.HIGH.safety_margin == 0.001
        assert EvictionRate.MEDIUM.safety_margin == 0.01
        assert EvictionRate.LOW.safety_margin == 0.05
        assert EvictionRate.NONE.safety_margin is None

    def test_none_rate_yields_no_eviction_model(self):
        assert isinstance(EvictionRate.NONE.lifetime_model(),
                          NoEvictionModel)

    @pytest.mark.parametrize("rate,margin", [
        (EvictionRate.HIGH, "0.1%"),
        (EvictionRate.MEDIUM, "1%"),
        (EvictionRate.LOW, "5%"),
    ])
    def test_models_pinned_to_table1(self, rate, margin, rng):
        """The engine experiments run on lifetime CDFs whose 10/50/90th
        percentiles equal Table 1 of the paper."""
        model = rate.lifetime_model()
        samples = sorted(model.sample(rng) for _ in range(20000))
        for q in (10, 50, 90):
            expected = TABLE1_LIFETIME_MINUTES[(margin, q)] * MINUTES
            measured = np.percentile(samples, q)
            assert measured == pytest.approx(expected, rel=0.12)

    def test_high_rate_mostly_evicts_within_half_hour(self, rng):
        """§2.1: under the 0.1% margin most transient containers are
        evicted within half an hour."""
        model = EvictionRate.HIGH.lifetime_model()
        assert model.cdf(30 * MINUTES) > 0.9


class TestEmpiricalModel:
    def test_resamples_observed_values(self, rng):
        model = EmpiricalLifetimeModel([10.0, 20.0, 30.0])
        for _ in range(50):
            assert model.sample(rng) in (10.0, 20.0, 30.0)

    def test_cdf_and_percentile(self):
        model = EmpiricalLifetimeModel([10.0, 20.0, 30.0, 40.0])
        assert model.cdf(25.0) == 0.5
        assert model.percentile(50) == pytest.approx(25.0)

    def test_rejects_empty_or_negative(self):
        with pytest.raises(ValueError):
            EmpiricalLifetimeModel([])
        with pytest.raises(ValueError):
            EmpiricalLifetimeModel([1.0, -2.0])


class TestWaveModel:
    def make(self):
        from repro.trace.models import WaveLifetimeModel
        return WaveLifetimeModel([(60.0, 0.5), (120.0, 1.0)])

    def test_sample_requires_launch_time(self, rng):
        """Regression: ``sample()`` silently assumed launch at time zero,
        so mid-run replacements died too early. It must refuse now."""
        from repro.errors import ModelError
        with pytest.raises(ModelError, match="sample_at"):
            self.make().sample(rng)

    def test_sample_without_waves_is_eviction_free(self, rng):
        from repro.trace.models import WaveLifetimeModel
        assert math.isinf(WaveLifetimeModel([]).sample(rng))

    def test_sample_at_lands_on_wave_boundaries(self, rng):
        model = self.make()
        # The second wave is certain: a container launched between the
        # waves dies exactly on it, never in between.
        for _ in range(20):
            assert model.sample_at(90.0, rng) == pytest.approx(30.0)
        # Launched at a wave tick, it only faces *later* waves.
        assert model.sample_at(120.0, rng) == math.inf

    def test_sample_at_certain_first_wave(self, rng):
        from repro.trace.models import WaveLifetimeModel
        model = WaveLifetimeModel([(45.0, 1.0)])
        assert model.sample_at(0.0, rng) == pytest.approx(45.0)

    def test_cdf_is_the_survival_product(self):
        model = self.make()
        assert model.cdf(59.0) == 0.0
        assert model.cdf(60.0) == pytest.approx(0.5)
        assert model.cdf(120.0) == pytest.approx(1.0)

    def test_validation(self):
        from repro.trace.models import WaveLifetimeModel
        with pytest.raises(ValueError):
            WaveLifetimeModel([(-1.0, 0.5)])
        with pytest.raises(ValueError):
            WaveLifetimeModel([(60.0, 0.0)])
        with pytest.raises(ValueError):
            WaveLifetimeModel([(60.0, 1.5)])
