"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "compile_workloads.py",
    "ml_training.py",
])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_engine_comparison_example_small_scale():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "engine_comparison.py"),
         "mr", "0.05"],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Pado is" in result.stdout


def test_trace_analysis_example():
    result = subprocess.run(
        [sys.executable,
         str(EXAMPLES_DIR / "transient_datacenter_analysis.py")],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Table 2" in result.stdout
    assert "Figure 1" in result.stdout
