"""Synthetic Google-cluster-trace generation.

The paper analyzes the ClusterData2011_2 trace: average memory usage of
latency-critical (LC) job containers recorded at 5-minute intervals (§2.1).
That trace is not redistributable here, so we synthesize per-container memory
usage series with the statistical features that drive the paper's analysis:

* high over-provisioning — mean usage well below allocation, leaving ~26% of
  LC memory idle on average (Table 2's baseline);
* slow diurnal load swings;
* small, auto-correlated minute-scale fluctuations (these evict transient
  containers under tight safety margins);
* occasional sharp load spikes (these evict under loose margins too).

The downstream analysis (:mod:`repro.trace.lifetimes`) consumes only the
``(capacity, usage series)`` pairs, exactly what the real trace provides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The real trace's sampling interval (seconds).
TRACE_INTERVAL = 300.0
#: Seconds per day, for the diurnal component.
_DAY = 86400.0


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for the synthetic LC-job load generator.

    Fractions are relative to the container's memory allocation. Defaults are
    tuned so that the derived statistics land near the paper's Figure 1 /
    Tables 1-2 (see ``tests/trace/test_paper_calibration.py``).
    """

    num_containers: int = 40
    duration_hours: float = 48.0
    interval_seconds: float = TRACE_INTERVAL
    mean_usage: float = 0.725
    diurnal_amplitude: float = 0.06
    noise_step: float = 0.009
    noise_decay: float = 0.95
    spike_rate_per_hour: float = 0.25
    spike_magnitude: float = 0.16
    spike_duration_minutes: float = 18.0
    min_usage: float = 0.05
    max_usage: float = 0.995

    def __post_init__(self) -> None:
        if self.num_containers <= 0:
            raise ValueError("need at least one LC container")
        if self.duration_hours <= 0:
            raise ValueError("trace duration must be positive")
        if not 0.0 < self.mean_usage < 1.0:
            raise ValueError("mean usage must be a fraction in (0, 1)")


@dataclass
class LCContainerUsage:
    """Memory usage of one latency-critical container over time."""

    capacity_bytes: float
    times: np.ndarray
    usage_bytes: np.ndarray

    def __post_init__(self) -> None:
        if len(self.times) != len(self.usage_bytes):
            raise ValueError("times and usage series must align")

    @property
    def idle_bytes(self) -> np.ndarray:
        """Unused memory available for transient containers."""
        return self.capacity_bytes - self.usage_bytes


@dataclass
class GoogleTrace:
    """A collection of LC-container usage series (one per container)."""

    containers: list[LCContainerUsage]
    interval_seconds: float

    @property
    def total_capacity(self) -> float:
        return sum(c.capacity_bytes for c in self.containers)

    def mean_idle_fraction(self) -> float:
        """Average idle memory as a fraction of total LC allocation
        (Table 2's baseline: collecting *all* idle memory)."""
        idle = sum(float(np.mean(c.idle_bytes)) for c in self.containers)
        return idle / self.total_capacity


def generate_trace(config: TraceConfig = TraceConfig(),
                   seed: int = 0) -> GoogleTrace:
    """Synthesize a Google-style trace of LC container memory usage."""
    rng = np.random.default_rng(seed)
    num_steps = int(config.duration_hours * 3600.0
                    / config.interval_seconds) + 1
    times = np.arange(num_steps) * config.interval_seconds
    containers = []
    for _ in range(config.num_containers):
        containers.append(_generate_container(config, times, rng))
    return GoogleTrace(containers=containers,
                       interval_seconds=config.interval_seconds)


def _generate_container(config: TraceConfig, times: np.ndarray,
                        rng: np.random.Generator) -> LCContainerUsage:
    capacity = float(rng.uniform(8.0, 64.0)) * 2**30  # 8-64 GB allocations
    base = config.mean_usage + float(rng.normal(0.0, 0.03))
    phase = float(rng.uniform(0.0, 2.0 * np.pi))
    diurnal = config.diurnal_amplitude * np.sin(
        2.0 * np.pi * times / _DAY + phase)

    noise = _ar1_noise(len(times), config.noise_step, config.noise_decay, rng)
    spikes = _spike_train(config, times, rng)

    usage_frac = np.clip(base + diurnal + noise + spikes,
                         config.min_usage, config.max_usage)
    return LCContainerUsage(capacity_bytes=capacity, times=times.copy(),
                            usage_bytes=usage_frac * capacity)


def _ar1_noise(n: int, step: float, decay: float,
               rng: np.random.Generator) -> np.ndarray:
    """Auto-correlated minute-scale load fluctuations."""
    shocks = rng.normal(0.0, step, size=n)
    noise = np.empty(n)
    acc = 0.0
    for i in range(n):
        acc = decay * acc + shocks[i]
        noise[i] = acc
    return noise


def _spike_train(config: TraceConfig, times: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
    """Occasional sharp LC load spikes (the reason for over-provisioning)."""
    duration_hours = times[-1] / 3600.0 if len(times) > 1 else 0.0
    expected = config.spike_rate_per_hour * duration_hours
    num_spikes = int(rng.poisson(expected)) if expected > 0 else 0
    spikes = np.zeros(len(times))
    for _ in range(num_spikes):
        start = float(rng.uniform(0.0, times[-1]))
        length = float(rng.exponential(config.spike_duration_minutes * 60.0))
        magnitude = float(rng.uniform(0.5, 1.5)) * config.spike_magnitude
        mask = (times >= start) & (times <= start + length)
        spikes[mask] += magnitude
    return spikes
