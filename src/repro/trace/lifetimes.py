"""Borg-style safety-margin analysis of transient container lifetimes (§2.1).

Given per-LC-container memory usage series, this module reproduces the
paper's derivation of transient-container lifetimes:

* a buffer of ``capacity * safety_margin`` is left untouched;
* a transient container is set up with the remaining unused memory;
* when LC usage later *decreases*, the transient container is reallocated
  with the increased unused memory (its allocation only grows);
* when the LC job needs more memory than the buffer can absorb — i.e. idle
  memory falls below ``allocation + buffer`` — the transient container is
  evicted, and a new one starts once enough idle memory reappears.

From the resulting eviction events we build lifetime CDFs (Figure 1),
percentile tables (Table 1) and collected-memory fractions (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.trace.google_trace import GoogleTrace, LCContainerUsage
from repro.trace.models import EmpiricalLifetimeModel


@dataclass
class TransientInterval:
    """One transient container's life on an LC container."""

    start: float
    end: Optional[float]          # None if still alive at trace end
    allocation_bytes: float       # final (largest) allocation

    @property
    def evicted(self) -> bool:
        return self.end is not None

    @property
    def lifetime(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start


@dataclass
class LifetimeAnalysis:
    """Result of the safety-margin analysis over a whole trace."""

    safety_margin: float
    intervals: list[TransientInterval]
    collected_fraction: float
    trace_duration: float

    @property
    def lifetimes(self) -> list[float]:
        """Completed (evicted) lifetimes in seconds."""
        return [iv.lifetime for iv in self.intervals if iv.evicted]

    @property
    def eviction_count(self) -> int:
        return sum(1 for iv in self.intervals if iv.evicted)

    def percentile(self, q: float) -> float:
        """q-th percentile (0-100) of completed lifetimes, in seconds."""
        lifetimes = self.lifetimes
        if not lifetimes:
            raise ValueError("no completed lifetimes observed")
        return float(np.percentile(lifetimes, q))

    def cdf(self, t_seconds: np.ndarray) -> np.ndarray:
        """Empirical CDF of completed lifetimes evaluated at ``t_seconds``."""
        lifetimes = np.sort(np.asarray(self.lifetimes, dtype=float))
        if len(lifetimes) == 0:
            return np.zeros(len(t_seconds))
        return np.searchsorted(lifetimes, np.asarray(t_seconds),
                               side="right") / len(lifetimes)

    def to_lifetime_model(self, name: str = "trace") -> EmpiricalLifetimeModel:
        """Package the completed lifetimes as a sampleable model."""
        return EmpiricalLifetimeModel(self.lifetimes, name=name)


def analyze_container(container: LCContainerUsage, safety_margin: float,
                      min_allocation_fraction: float = 0.01
                      ) -> tuple[list[TransientInterval], float]:
    """Run the safety-margin state machine over one LC container.

    Returns the transient intervals and the time-integrated transient
    allocation (byte-seconds) used for collected-memory accounting.
    """
    if not 0.0 <= safety_margin < 1.0:
        raise ValueError("safety margin must be a fraction in [0, 1)")
    capacity = container.capacity_bytes
    buffer_bytes = capacity * safety_margin
    min_alloc = capacity * min_allocation_fraction
    times = container.times
    idle = container.idle_bytes

    intervals: list[TransientInterval] = []
    collected_byte_seconds = 0.0
    current: Optional[TransientInterval] = None

    for i in range(len(times)):
        # The buffer stays untouched: a transient container is sized to
        # (idle - buffer), so the LC job can grow by up to the buffer
        # before a resource conflict evicts it.
        available = idle[i] - buffer_bytes
        if current is None:
            if available >= min_alloc:
                current = TransientInterval(start=float(times[i]), end=None,
                                            allocation_bytes=float(available))
        else:
            if idle[i] < current.allocation_bytes:
                # LC usage grew beyond the buffer: conflict -> eviction.
                current.end = float(times[i])
                intervals.append(current)
                current = None
                # A replacement may start at this same instant if enough
                # idle memory remains after the spike.
                if available >= min_alloc:
                    current = TransientInterval(
                        start=float(times[i]), end=None,
                        allocation_bytes=float(available))
            elif available > current.allocation_bytes:
                # LC usage decreased: grow the transient allocation.
                current.allocation_bytes = float(available)
        if current is not None and i + 1 < len(times):
            step = float(times[i + 1] - times[i])
            collected_byte_seconds += current.allocation_bytes * step
    if current is not None:
        intervals.append(current)  # right-censored (alive at trace end)
    return intervals, collected_byte_seconds


def analyze_trace(trace: GoogleTrace, safety_margin: float,
                  min_allocation_fraction: float = 0.01) -> LifetimeAnalysis:
    """Apply the safety-margin analysis to every LC container in a trace."""
    all_intervals: list[TransientInterval] = []
    collected = 0.0
    duration = 0.0
    capacity_byte_seconds = 0.0
    for container in trace.containers:
        intervals, byte_seconds = analyze_container(
            container, safety_margin, min_allocation_fraction)
        all_intervals.extend(intervals)
        collected += byte_seconds
        span = float(container.times[-1] - container.times[0])
        duration = max(duration, span)
        capacity_byte_seconds += container.capacity_bytes * span
    fraction = collected / capacity_byte_seconds if capacity_byte_seconds else 0.0
    return LifetimeAnalysis(safety_margin=safety_margin,
                            intervals=all_intervals,
                            collected_fraction=fraction,
                            trace_duration=duration)


def collected_memory_table(trace: GoogleTrace,
                           margins: Sequence[float] = (0.001, 0.01, 0.05)
                           ) -> dict[str, float]:
    """Reproduce Table 2: collected idle memory fraction per safety margin.

    The "baseline" row collects all idle memory (margin 0, no minimum
    allocation), matching the paper's definition.
    """
    table = {"baseline": analyze_trace(
        trace, 0.0, min_allocation_fraction=0.0).collected_fraction}
    for margin in margins:
        label = _margin_label(margin)
        table[label] = analyze_trace(trace, margin).collected_fraction
    return table


def lifetime_percentile_table(trace: GoogleTrace,
                              margins: Sequence[float] = (0.001, 0.01, 0.05),
                              percentiles: Sequence[int] = (10, 50, 90)
                              ) -> dict[tuple[str, int], float]:
    """Reproduce Table 1: lifetime percentiles (minutes) per safety margin."""
    table: dict[tuple[str, int], float] = {}
    for margin in margins:
        analysis = analyze_trace(trace, margin)
        for q in percentiles:
            table[(_margin_label(margin), q)] = analysis.percentile(q) / 60.0
    return table


def _margin_label(margin: float) -> str:
    percent = margin * 100.0
    if percent == int(percent):
        return f"{int(percent)}%"
    return f"{percent:g}%"
