"""Transient-container lifetime models.

The paper derives lifetime CDFs from the Google cluster trace under three
safety margins (Figure 1, Table 1) and drives its EC2 experiments by sampling
container lifetimes from those CDFs (§5.1.1). This module provides:

* :class:`PercentileLifetimeModel` — an inverse-CDF model pinned to the
  paper's Table 1 percentile anchors, used by all engine experiments so that
  the eviction regimes match the paper exactly;
* :class:`EmpiricalLifetimeModel` — built from lifetimes our own trace
  analysis extracts (Figure 1 reproduction);
* :class:`ExponentialLifetimeModel` and :class:`NoEvictionModel` for
  ablations and the "none" eviction rate.
"""

from __future__ import annotations

import bisect
import enum
import math
from typing import Optional, Sequence

import numpy as np

MINUTES = 60.0


class LifetimeModel:
    """Samples transient-container lifetimes in seconds."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample_at(self, now: float, rng: np.random.Generator) -> float:
        """Lifetime for a container launched at ``now``.

        Time-homogeneous models ignore the launch time and delegate to
        :meth:`sample` — the path every resource-manager launch takes.
        Launch-time-dependent models (:class:`WaveLifetimeModel`)
        override this and reject plain :meth:`sample` calls.
        """
        return self.sample(rng)

    def cdf(self, t_seconds: float) -> float:
        """Fraction of containers with lifetime <= ``t_seconds``."""
        raise NotImplementedError


class NoEvictionModel(LifetimeModel):
    """Containers never evicted — the paper's "none" eviction rate."""

    def sample(self, rng: np.random.Generator) -> float:
        return math.inf

    def cdf(self, t_seconds: float) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoEvictionModel()"


class ExponentialLifetimeModel(LifetimeModel):
    """Memoryless lifetimes with the given mean (seconds)."""

    def __init__(self, mean_seconds: float) -> None:
        if mean_seconds <= 0:
            raise ValueError("mean lifetime must be positive")
        self.mean_seconds = mean_seconds

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_seconds))

    def cdf(self, t_seconds: float) -> float:
        if t_seconds <= 0:
            return 0.0
        return 1.0 - math.exp(-t_seconds / self.mean_seconds)

    def __repr__(self) -> str:
        return f"ExponentialLifetimeModel(mean={self.mean_seconds:.0f}s)"


class PercentileLifetimeModel(LifetimeModel):
    """Inverse-CDF sampling through percentile anchor points.

    Between anchors the quantile function interpolates linearly in
    log-lifetime, which matches the heavy-tailed shape of the Figure 1 CDFs.
    Anchors are ``(fraction, lifetime_seconds)`` pairs; an implicit
    ``(0, min_lifetime)`` and ``(1, max_lifetime)`` bracket the range.
    """

    def __init__(self, anchors: Sequence[tuple[float, float]],
                 min_lifetime: float = 0.5 * MINUTES,
                 max_lifetime: Optional[float] = None,
                 name: str = "percentile") -> None:
        pts = sorted(anchors)
        if not pts:
            raise ValueError("need at least one percentile anchor")
        for frac, life in pts:
            if not 0.0 < frac < 1.0:
                raise ValueError(f"anchor fraction {frac} outside (0, 1)")
            if life <= 0:
                raise ValueError("anchor lifetimes must be positive")
        lifetimes = [life for _, life in pts]
        if lifetimes != sorted(lifetimes):
            raise ValueError("anchor lifetimes must be non-decreasing")
        if max_lifetime is None:
            # Extrapolate the tail one more log-step beyond the last anchor.
            max_lifetime = lifetimes[-1] * 3.0
        if min_lifetime > lifetimes[0]:
            min_lifetime = lifetimes[0]
        self.name = name
        self._fracs = [0.0] + [f for f, _ in pts] + [1.0]
        self._logs = ([math.log(min_lifetime)]
                      + [math.log(life) for life in lifetimes]
                      + [math.log(max_lifetime)])

    def quantile(self, u: float) -> float:
        """Lifetime (seconds) at cumulative fraction ``u``."""
        if not 0.0 <= u <= 1.0:
            raise ValueError("quantile fraction must lie in [0, 1]")
        idx = bisect.bisect_right(self._fracs, u) - 1
        if idx >= len(self._fracs) - 1:
            return math.exp(self._logs[-1])
        f0, f1 = self._fracs[idx], self._fracs[idx + 1]
        g0, g1 = self._logs[idx], self._logs[idx + 1]
        w = 0.0 if f1 == f0 else (u - f0) / (f1 - f0)
        return math.exp(g0 + w * (g1 - g0))

    def sample(self, rng: np.random.Generator) -> float:
        return self.quantile(float(rng.random()))

    def cdf(self, t_seconds: float) -> float:
        if t_seconds <= math.exp(self._logs[0]):
            return 0.0
        if t_seconds >= math.exp(self._logs[-1]):
            return 1.0
        log_t = math.log(t_seconds)
        idx = bisect.bisect_right(self._logs, log_t) - 1
        g0, g1 = self._logs[idx], self._logs[idx + 1]
        f0, f1 = self._fracs[idx], self._fracs[idx + 1]
        w = 0.0 if g1 == g0 else (log_t - g0) / (g1 - g0)
        return f0 + w * (f1 - f0)

    def __repr__(self) -> str:
        return f"PercentileLifetimeModel({self.name})"


class EmpiricalLifetimeModel(LifetimeModel):
    """Resamples from observed lifetimes (seconds)."""

    def __init__(self, lifetimes_seconds: Sequence[float],
                 name: str = "empirical") -> None:
        if len(lifetimes_seconds) == 0:
            raise ValueError("need at least one observed lifetime")
        arr = np.asarray(sorted(lifetimes_seconds), dtype=float)
        if np.any(arr <= 0):
            raise ValueError("lifetimes must be positive")
        self._sorted = arr
        self.name = name

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self._sorted))

    def cdf(self, t_seconds: float) -> float:
        return float(np.searchsorted(self._sorted, t_seconds, side="right")
                     / len(self._sorted))

    def percentile(self, q: float) -> float:
        """q-th percentile (0-100) of the observed lifetimes."""
        return float(np.percentile(self._sorted, q))

    def __repr__(self) -> str:
        return f"EmpiricalLifetimeModel({self.name}, n={len(self._sorted)})"


class WaveLifetimeModel(LifetimeModel):
    """Lifetimes pinned to a cluster-wide schedule of eviction waves.

    The multi-tenant layer (:mod:`repro.cluster.tenancy`) models transient
    reclamation as *correlated waves*: at known times the latency-critical
    side reclaims memory across the whole datacenter at once, so every
    co-located job loses containers in the same tick. ``waves`` is a
    sequence of ``(offset_seconds, severity)`` pairs, offsets measured from
    the start of the job's simulation; a container alive at a wave dies in
    it with probability ``severity``, otherwise survives to face the next
    wave. A container that survives every wave lives forever.

    Sampling is launch-time aware: the resource manager calls
    :meth:`sample_at` with the container's launch time so replacements
    provisioned mid-run still die exactly on wave boundaries. The plain
    :meth:`sample` entry point is therefore ill-posed once any wave is
    scheduled — it used to silently assume launch at time zero, which
    made every mid-run replacement die too early — and now raises
    :class:`~repro.errors.ModelError` unless the schedule is empty.
    """

    def __init__(self, waves: Sequence[tuple[float, float]]) -> None:
        pts = sorted((float(t), float(s)) for t, s in waves)
        for t, severity in pts:
            if t < 0:
                raise ValueError("wave offsets must be non-negative")
            if not 0.0 < severity <= 1.0:
                raise ValueError("wave severity must lie in (0, 1]")
        self.waves = tuple(pts)

    def sample_at(self, now: float, rng: np.random.Generator) -> float:
        """Lifetime (seconds from ``now``) for a container launched at
        ``now``: the delay until the first wave that claims it."""
        for t, severity in self.waves:
            if t <= now:
                continue
            if severity >= 1.0 or float(rng.random()) < severity:
                return t - now
        return math.inf

    def sample(self, rng: np.random.Generator) -> float:
        if self.waves:
            from repro.errors import ModelError
            raise ModelError(
                "WaveLifetimeModel lifetimes depend on launch time; "
                "call sample_at(now, rng) instead of sample()")
        return math.inf

    def cdf(self, t_seconds: float) -> float:
        """Probability a container launched at time zero dies by
        ``t_seconds``: one minus the survival product over elapsed waves."""
        survive = 1.0
        for t, severity in self.waves:
            if t <= t_seconds:
                survive *= 1.0 - severity
        return 1.0 - survive

    def __repr__(self) -> str:
        return f"WaveLifetimeModel(waves={len(self.waves)})"


class EvictionRate(enum.Enum):
    """The paper's four eviction regimes (Figure 1 / Table 1).

    Each maps a Borg-style safety margin to the Table 1 lifetime percentiles:
    0.1% margin = high eviction, 1% = medium, 5% = low.
    """

    NONE = "none"
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @property
    def safety_margin(self) -> Optional[float]:
        return {EvictionRate.NONE: None, EvictionRate.LOW: 0.05,
                EvictionRate.MEDIUM: 0.01, EvictionRate.HIGH: 0.001}[self]

    def lifetime_model(self) -> LifetimeModel:
        """Lifetime model pinned to the paper's Table 1 percentiles."""
        if self is EvictionRate.NONE:
            return NoEvictionModel()
        anchors = {
            EvictionRate.HIGH: [(0.10, 1 * MINUTES), (0.50, 2 * MINUTES),
                                (0.90, 19 * MINUTES)],
            EvictionRate.MEDIUM: [(0.10, 1 * MINUTES), (0.50, 10 * MINUTES),
                                  (0.90, 64 * MINUTES)],
            EvictionRate.LOW: [(0.10, 1 * MINUTES), (0.50, 20 * MINUTES),
                               (0.90, 276 * MINUTES)],
        }[self]
        return PercentileLifetimeModel(anchors, name=self.value)


#: Table 1 of the paper: (safety margin, percentile) -> lifetime minutes.
TABLE1_LIFETIME_MINUTES = {
    ("0.1%", 10): 1, ("0.1%", 50): 2, ("0.1%", 90): 19,
    ("1%", 10): 1, ("1%", 50): 10, ("1%", 90): 64,
    ("5%", 10): 1, ("5%", 50): 20, ("5%", 90): 276,
}

#: Table 2 of the paper: safety margin -> collected idle memory fraction of
#: total memory allocated to LC jobs ("baseline" collects all idle memory).
TABLE2_COLLECTED_MEMORY = {
    "baseline": 0.260, "0.1%": 0.259, "1%": 0.253, "5%": 0.227,
}
