"""Google-trace analysis substrate (§2.1 of the paper).

Synthesizes LC-job memory usage traces, refines them from 5-minute to
1-minute granularity with B-splines, derives transient-container lifetimes
under Borg-style safety margins, and provides the lifetime models that drive
every engine experiment.
"""

from repro.trace.bspline import (REFINED_INTERVAL, refine_container,
                                 refine_series, refine_trace)
from repro.trace.google_trace import (GoogleTrace, LCContainerUsage,
                                      TraceConfig, generate_trace)
from repro.trace.lifetimes import (LifetimeAnalysis, TransientInterval,
                                   analyze_container, analyze_trace,
                                   collected_memory_table,
                                   lifetime_percentile_table)
from repro.trace.models import (EmpiricalLifetimeModel, EvictionRate,
                                ExponentialLifetimeModel, LifetimeModel,
                                NoEvictionModel, PercentileLifetimeModel,
                                TABLE1_LIFETIME_MINUTES,
                                TABLE2_COLLECTED_MEMORY, WaveLifetimeModel)

__all__ = [
    "EmpiricalLifetimeModel", "EvictionRate", "ExponentialLifetimeModel",
    "GoogleTrace", "LCContainerUsage", "LifetimeAnalysis", "LifetimeModel",
    "NoEvictionModel", "PercentileLifetimeModel", "REFINED_INTERVAL",
    "TABLE1_LIFETIME_MINUTES", "TABLE2_COLLECTED_MEMORY", "TraceConfig",
    "TransientInterval", "WaveLifetimeModel", "analyze_container",
    "analyze_trace",
    "collected_memory_table", "generate_trace", "lifetime_percentile_table",
    "refine_container", "refine_series", "refine_trace",
]
