"""B-spline refinement of coarse trace samples (§2.1).

The Google trace records memory usage at 5-minute intervals, which the paper
found "overly coarse-grained compared to real-world environments"; it applies
a B-spline fit to obtain 1-minute samples before deriving eviction times. We
reproduce that step with scipy's B-spline interpolation.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import make_interp_spline

from repro.trace.google_trace import GoogleTrace, LCContainerUsage

#: The paper refines the trace to 1-minute granularity.
REFINED_INTERVAL = 60.0


def refine_series(times: np.ndarray, values: np.ndarray,
                  target_interval: float = REFINED_INTERVAL,
                  degree: int = 3) -> tuple[np.ndarray, np.ndarray]:
    """Resample ``values`` onto a finer grid with a degree-``degree`` B-spline.

    Returns ``(fine_times, fine_values)``. Falls back to lower spline degrees
    when there are too few samples to support a cubic fit.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(times) != len(values):
        raise ValueError("times and values must have the same length")
    if len(times) < 2:
        return times.copy(), values.copy()
    if target_interval <= 0:
        raise ValueError("target interval must be positive")
    degree = min(degree, len(times) - 1)
    spline = make_interp_spline(times, values, k=degree)
    num = int(round((times[-1] - times[0]) / target_interval)) + 1
    fine_times = times[0] + np.arange(num) * target_interval
    fine_times = fine_times[fine_times <= times[-1] + 1e-9]
    fine_values = spline(fine_times)
    return fine_times, np.asarray(fine_values, dtype=float)


def refine_container(container: LCContainerUsage,
                     target_interval: float = REFINED_INTERVAL
                     ) -> LCContainerUsage:
    """Refine one container's usage series, clipping to physical bounds."""
    fine_times, fine_usage = refine_series(container.times,
                                           container.usage_bytes,
                                           target_interval)
    fine_usage = np.clip(fine_usage, 0.0, container.capacity_bytes)
    return LCContainerUsage(capacity_bytes=container.capacity_bytes,
                            times=fine_times, usage_bytes=fine_usage)


def refine_trace(trace: GoogleTrace,
                 target_interval: float = REFINED_INTERVAL) -> GoogleTrace:
    """Refine every container series in a trace (paper: 5 min -> 1 min)."""
    refined = [refine_container(c, target_interval) for c in trace.containers]
    return GoogleTrace(containers=refined, interval_seconds=target_interval)
