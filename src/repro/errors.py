"""Exception hierarchy for the Pado reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DagError(ReproError):
    """A logical DAG is malformed (cycle, dangling edge, bad parallelism)."""


class CompilerError(ReproError):
    """The Pado compiler could not place or partition a logical DAG."""


class SchedulingError(ReproError):
    """The task scheduler reached an inconsistent state."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ResourceError(ReproError):
    """Container allocation or resource accounting failed."""


class ModelError(ReproError):
    """A lifetime model or predictor was queried in an invalid way."""


class ExecutionError(ReproError):
    """A job could not make progress (e.g. unrecoverable data loss)."""


class WorkloadError(ReproError):
    """A workload builder received invalid parameters."""
