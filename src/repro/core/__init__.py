"""Pado's core: the compiler (§3.1) and the runtime (§3.2)."""

from repro.core.compiler import CompiledJob, compile_program
from repro.core.runtime import PadoEngine, PadoRuntimeConfig

__all__ = ["CompiledJob", "PadoEngine", "PadoRuntimeConfig",
           "compile_program"]
