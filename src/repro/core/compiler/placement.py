"""Operator placement — Algorithm 1 of the paper (§3.1.1).

The compiler walks the logical DAG in topological order and marks each
operator to run on reserved or transient containers:

* computational operators with **any** incoming many-to-many or many-to-one
  dependency are placed on **reserved** containers — a single eviction of
  such a task would force recomputation of many parent tasks;
* computational operators whose in-edges are **all** one-to-one **and** all
  come from reserved operators are placed on **reserved** containers, to
  exploit data locality on the reserved side;
* every other computational operator is placed on **transient** containers,
  aggressively using eviction-prone resources where cascading recomputation
  risk is low;
* source operators that read bulk data from storage go to **transient**
  containers (many containers to load data in parallel); sources that create
  lightweight data in memory go to **reserved** containers.
"""

from __future__ import annotations

from repro.dataflow.dag import (DependencyType, LogicalDAG, Operator,
                                Placement, SourceKind)
from repro.errors import CompilerError


def place_operators(dag: LogicalDAG) -> LogicalDAG:
    """Mark every operator in ``dag`` with a placement (mutates the DAG).

    Transcription of Algorithm 1. Returns the same DAG for chaining.
    """
    dag.validate()
    for op in dag.topological_sort():
        in_edges = dag.in_edges(op)
        if in_edges:  # computational operator
            if any(e.dep_type.is_wide for e in in_edges):
                op.placement = Placement.RESERVED
            elif (all(e.dep_type is DependencyType.ONE_TO_ONE
                      for e in in_edges)
                  and all(e.src.placement is Placement.RESERVED
                          for e in in_edges)):
                op.placement = Placement.RESERVED
            else:
                op.placement = Placement.TRANSIENT
        else:  # source operator
            if op.source_kind is SourceKind.READ:
                op.placement = Placement.TRANSIENT
            elif op.source_kind is SourceKind.CREATED:
                op.placement = Placement.RESERVED
            else:
                raise CompilerError(
                    f"source operator {op.name!r} has no source kind")
    return dag


def check_placement(dag: LogicalDAG) -> None:
    """Verify the invariants Algorithm 1 guarantees; raises on violation.

    Used as a post-condition in tests and before partitioning: every
    operator is placed, and every wide-edge consumer is on reserved
    containers (the property that eliminates cascading recomputations).
    """
    for op in dag.operators:
        if op.placement is Placement.UNPLACED:
            raise CompilerError(f"operator {op.name!r} was never placed")
        if op.placement is Placement.RESERVED:
            continue
        for edge in dag.in_edges(op):
            if edge.dep_type.is_wide:
                raise CompilerError(
                    f"wide-edge consumer {op.name!r} placed on transient "
                    f"containers")


def recomputation_weight(dag: LogicalDAG, op: Operator) -> int:
    """Number of parent tasks that must be recomputed if one task of ``op``
    is evicted and all parent outputs are lost (the intuition behind
    Algorithm 1, §3.1.1). Used by the lifetime-aware placement extension."""
    weight = 0
    for edge in dag.in_edges(op):
        if edge.dep_type in (DependencyType.MANY_TO_MANY,):
            weight += edge.src.parallelism
        elif edge.dep_type is DependencyType.MANY_TO_ONE:
            # Each child task collects a 1/parallelism share of parents.
            weight += max(1, edge.src.parallelism // op.parallelism)
        else:
            weight += 1
    return weight
