"""Lifetime-aware operator placement — the §6 extension.

The paper's Discussion suggests combining Pado with Harvest-style lifetime
estimation: rather than a binary reserved/transient split, resources come in
*classes* with estimated lifetimes, and operators with higher recomputation
costs are placed on longer-lived classes. This module implements that
fine-grained placement as an optional alternative to Algorithm 1.

The heuristic: compute each operator's recomputation weight (how many parent
tasks one eviction forces to re-run — the same intuition as Algorithm 1),
rank operators by weight, and assign them to resource classes so that weight
ordering matches lifetime ordering, with eviction-free classes absorbing all
wide-edge consumers (preserving Algorithm 1's safety guarantee).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.compiler.placement import recomputation_weight
from repro.dataflow.dag import (DependencyType, LogicalDAG, Operator,
                                Placement, SourceKind)
from repro.errors import CompilerError


@dataclass(frozen=True)
class ResourceClass:
    """A pool of containers with an estimated lifetime (§6).

    ``expected_lifetime`` of ``math.inf`` marks an eviction-free (reserved)
    class.
    """

    name: str
    expected_lifetime: float

    @property
    def is_reserved(self) -> bool:
        return math.isinf(self.expected_lifetime)


def place_with_lifetime_classes(
        dag: LogicalDAG,
        classes: Sequence[ResourceClass]) -> dict[str, ResourceClass]:
    """Assign each operator to a resource class.

    Wide-edge consumers and created sources always land on a reserved class
    (there must be one). Remaining operators are spread across the transient
    classes by recomputation weight: heavier operators get longer-lived
    classes. Also mirrors the assignment into ``op.placement`` so the result
    remains a valid input for Algorithm 2.
    """
    if not classes:
        raise CompilerError("need at least one resource class")
    reserved = [c for c in classes if c.is_reserved]
    if not reserved:
        raise CompilerError("need one eviction-free (reserved) class")
    reserved_class = reserved[0]
    transient_classes = sorted(
        (c for c in classes if not c.is_reserved),
        key=lambda c: c.expected_lifetime)
    dag.validate()

    assignment: dict[str, ResourceClass] = {}
    flexible: list[tuple[int, Operator]] = []
    for op in dag.topological_sort():
        in_edges = dag.in_edges(op)
        if in_edges and any(e.dep_type.is_wide for e in in_edges):
            assignment[op.name] = reserved_class
        elif not in_edges and op.source_kind is SourceKind.CREATED:
            assignment[op.name] = reserved_class
        elif (in_edges
              and all(e.dep_type is DependencyType.ONE_TO_ONE
                      for e in in_edges)
              and all(assignment.get(e.src.name) is reserved_class
                      for e in in_edges)):
            assignment[op.name] = reserved_class  # data locality rule
        else:
            flexible.append((recomputation_weight(dag, op), op))

    if flexible and transient_classes:
        # Heavier operators -> longer-lived classes: split the weight ranking
        # into as many quantile groups as there are transient classes.
        flexible.sort(key=lambda pair: pair[0])
        per_class = max(1, math.ceil(len(flexible) / len(transient_classes)))
        for rank, (_, op) in enumerate(flexible):
            class_idx = min(rank // per_class, len(transient_classes) - 1)
            assignment[op.name] = transient_classes[class_idx]
    else:
        for _, op in flexible:
            assignment[op.name] = reserved_class

    for op in dag.operators:
        op.placement = (Placement.RESERVED
                        if assignment[op.name].is_reserved
                        else Placement.TRANSIENT)
    return assignment


def classes_from_pools(pools: Optional[Sequence],
                       predictor=None) -> list[ResourceClass]:
    """Derive the :class:`ResourceClass` list from the cluster's actual
    transient pools via a predictor.

    This is what promotes the §6 pass from hand-fed constants to a real
    compilation path: the reserved class is always present, and each
    :class:`~repro.cluster.manager.TransientPool` contributes one class
    whose expected lifetime comes from the predictor's fresh-container
    mean residual estimate (``expected_remaining(0)``) — falling back to
    the pool's static hint, or, with no pools at all, to a single
    transient class summarizing the homogeneous fleet.
    """
    classes = [ResourceClass("reserved", math.inf)]
    if pools:
        for pool in pools:
            lifetime = pool.expected_lifetime
            if predictor is not None:
                estimate = None
                per_class = getattr(predictor, "class_expected_remaining",
                                    None)
                if per_class is not None:
                    try:
                        estimate = per_class(pool.name, 0.0)
                    except KeyError:
                        estimate = None
                if estimate is None:
                    estimate = predictor.expected_remaining(0.0)
                if math.isfinite(estimate) and estimate > 0:
                    lifetime = estimate
            classes.append(ResourceClass(pool.name, lifetime))
    else:
        lifetime = math.inf
        if predictor is not None:
            lifetime = predictor.expected_remaining(0.0)
        if math.isinf(lifetime):
            # Homogeneous eviction-free fleet: everything flexible may as
            # well be "transient" with an unbounded estimate — use a large
            # finite stand-in so the class is not mistaken for reserved.
            lifetime = 1e12
        classes.append(ResourceClass("transient", lifetime))
    return classes
