"""Operator fusion (§3.2.2).

The execution plan generator fuses neighbouring operators placed on the same
container type into a single physical unit — e.g. a chain of transient Map
operators runs as one task, exploiting data locality. A fused chain is a
maximal linear run of operators connected by one-to-one edges *within the
fused set*; members may still receive external inputs (such as a broadcast
model) which become inputs of the fused task.

The same machinery pipelines narrow operators inside Spark stages, so the
baselines get the optimization too — matching real Spark semantics.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.dataflow.dag import (DependencyType, Edge, LogicalDAG, Operator,
                                Placement)
from repro.errors import CompilerError


class FusedOperator:
    """A chain of operators executed as one physical task per index."""

    def __init__(self, dag: LogicalDAG, ops: Sequence[Operator]) -> None:
        if not ops:
            raise CompilerError("a fused chain needs at least one operator")
        parallelism = ops[0].parallelism
        for op in ops:
            if op.parallelism != parallelism:
                raise CompilerError(
                    "fused operators must share parallelism "
                    f"({op.name!r} differs)")
        self._dag = dag
        self.ops = list(ops)
        self._members = {op.name for op in ops}
        self._name = "+".join(op.name for op in self.ops)

    @property
    def name(self) -> str:
        return self._name

    @property
    def head(self) -> Operator:
        return self.ops[0]

    @property
    def terminal(self) -> Operator:
        return self.ops[-1]

    @property
    def parallelism(self) -> int:
        return self.head.parallelism

    @property
    def placement(self) -> Placement:
        return self.terminal.placement

    @property
    def combiner(self) -> Optional[Any]:
        return self.terminal.combiner

    def contains(self, op: Operator) -> bool:
        return op.name in self._members

    def external_in_edges(self) -> list[Edge]:
        """Logical edges entering the chain from outside it."""
        return [e for op in self.ops for e in self._dag.in_edges(op)
                if e.src.name not in self._members]

    def is_source_chain(self) -> bool:
        return self.head.is_source

    # ------------------------------------------------------------------
    # real-data execution

    def apply(self, task_index: int,
              external_inputs: dict[str, list]) -> list:
        """Run the whole chain for one task index.

        ``external_inputs`` maps external parent operator names to the
        records routed to this task index.
        """
        produced: dict[str, list] = {}
        for op in self.ops:
            if op.fn is None:
                raise CompilerError(
                    f"operator {op.name!r} has no function for real-data "
                    f"execution")
            inputs: dict[str, list] = {}
            for edge in self._dag.in_edges(op):
                parent = edge.src.name
                if parent in self._members:
                    inputs[parent] = produced[parent]
                else:
                    inputs[parent] = list(external_inputs.get(parent, []))
            if op.is_source:
                inputs["__task_index__"] = [task_index]
            produced[op.name] = list(op.fn(inputs))
        return produced[self.terminal.name]

    # ------------------------------------------------------------------
    # synthetic execution

    def synthetic_output_bytes(
            self, external_bytes: dict[str, float]) -> float:
        """Flow input byte counts through the chain's cost hints."""
        produced: dict[str, float] = {}
        for op in self.ops:
            if op.is_source:
                # Source operators' "input" is what they fetched from the
                # input store (or created), recorded under their own name.
                in_bytes = external_bytes.get(op.name, 0.0)
            else:
                in_bytes = 0.0
                for edge in self._dag.in_edges(op):
                    parent = edge.src.name
                    if parent in self._members:
                        in_bytes += produced[parent]
                    else:
                        in_bytes += external_bytes.get(parent, 0.0)
            produced[op.name] = float(op.cost.output_bytes(in_bytes))
        return produced[self.ops[-1].name]

    def compute_seconds(self, total_input_bytes: float,
                        cpu_throughput: float) -> float:
        """Simulated compute duration for one task of this chain."""
        seconds = 0.0
        remaining = total_input_bytes
        for op in self.ops:
            seconds += op.cost.fixed_compute_seconds
            seconds += remaining * op.cost.compute_factor / cpu_throughput
            remaining = float(op.cost.output_bytes(remaining))
        return seconds

    def __repr__(self) -> str:
        return f"<Fused [{self.name}] x{self.parallelism}>"


def fuse_operators(dag: LogicalDAG, ops: Sequence[Operator],
                   require_same_placement: bool = True
                   ) -> list[FusedOperator]:
    """Partition ``ops`` into maximal fusible chains.

    An operator joins its parent's chain when the connecting edge is
    one-to-one, it is the parent's only consumer within ``ops``, that edge is
    its only in-edge from within ``ops``, and (if required) both share a
    placement. Returns chains in topological order of their heads.
    """
    members = {op.name for op in ops}
    order = [op for op in dag.topological_sort() if op.name in members]
    if len(order) != len(ops):
        raise CompilerError("fusion set contains duplicate operators")

    chain_of: dict[str, list[Operator]] = {}
    chains: list[list[Operator]] = []
    for op in order:
        internal_in = [e for e in dag.in_edges(op) if e.src.name in members]
        fusible_parent: Optional[Operator] = None
        if len(internal_in) == 1:
            edge = internal_in[0]
            parent = edge.src
            parent_internal_out = [
                e for e in dag.out_edges(parent) if e.dst.name in members]
            same_placement = (not require_same_placement
                              or parent.placement is op.placement)
            if (edge.dep_type is DependencyType.ONE_TO_ONE
                    and len(parent_internal_out) == 1
                    and same_placement
                    and chain_of[parent.name][-1] is parent):
                fusible_parent = parent
        if fusible_parent is not None:
            chain = chain_of[fusible_parent.name]
            chain.append(op)
            chain_of[op.name] = chain
        else:
            chain = [op]
            chains.append(chain)
            chain_of[op.name] = chain
    return [FusedOperator(dag, chain) for chain in chains]
