"""Compiler entry point: placement + partitioning + validation (§3.1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler.partitioning import (StageDAG, check_partitioning,
                                              partition_stages)
from repro.core.compiler.placement import check_placement, place_operators
from repro.dataflow.dag import LogicalDAG


@dataclass
class CompiledJob:
    """A compiled dataflow program ready for the Pado runtime."""

    logical: LogicalDAG
    stage_dag: StageDAG

    @property
    def num_stages(self) -> int:
        return len(self.stage_dag.stages)

    def placement_summary(self) -> dict[str, str]:
        """Operator name -> placement, handy for tests and examples."""
        return {op.name: op.placement.value for op in self.logical.operators}

    def describe(self) -> str:
        """Human-readable compilation report (mirrors Figure 3)."""
        lines = []
        for stage in self.stage_dag.topological():
            ops = ", ".join(
                f"{op.name}[{op.placement.value}]" for op in stage.operators)
            parents = ",".join(str(p.stage_id) for p in stage.parents) or "-"
            lines.append(
                f"stage {stage.stage_id} (parents: {parents}): {ops}")
        return "\n".join(lines)


def compile_program(dag: LogicalDAG) -> CompiledJob:
    """Run the full Pado compilation: Algorithm 1 then Algorithm 2,
    with the invariants of both checked."""
    place_operators(dag)
    check_placement(dag)
    stage_dag = partition_stages(dag)
    check_partitioning(stage_dag)
    return CompiledJob(logical=dag, stage_dag=stage_dag)
