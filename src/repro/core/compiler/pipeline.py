"""Compiler entry point: placement + partitioning + validation (§3.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.compiler.partitioning import (StageDAG, check_partitioning,
                                              partition_stages)
from repro.core.compiler.placement import check_placement, place_operators
from repro.dataflow.dag import LogicalDAG
from repro.errors import CompilerError


@dataclass
class CompiledJob:
    """A compiled dataflow program ready for the Pado runtime."""

    logical: LogicalDAG
    stage_dag: StageDAG
    #: Operator name -> resource-class name, filled in by the §6
    #: lifetime-placement path (None under Algorithm 1). The runtime
    #: scheduler uses it to match tasks to §6 pool classes.
    class_of: Optional[dict[str, str]] = None

    @property
    def num_stages(self) -> int:
        return len(self.stage_dag.stages)

    def placement_summary(self) -> dict[str, str]:
        """Operator name -> placement, handy for tests and examples."""
        return {op.name: op.placement.value for op in self.logical.operators}

    def describe(self) -> str:
        """Human-readable compilation report (mirrors Figure 3)."""
        lines = []
        for stage in self.stage_dag.topological():
            ops = ", ".join(
                f"{op.name}[{op.placement.value}]" for op in stage.operators)
            parents = ",".join(str(p.stage_id) for p in stage.parents) or "-"
            lines.append(
                f"stage {stage.stage_id} (parents: {parents}): {ops}")
        return "\n".join(lines)


def compile_program(dag: LogicalDAG, placement: str = "algorithm1",
                    classes: Optional[Sequence] = None) -> CompiledJob:
    """Run the full Pado compilation with a selectable placement pass.

    ``placement="algorithm1"`` (default) is the paper's binary
    reserved/transient split. ``placement="lifetime"`` runs the §6
    lifetime-class pass instead, spreading flexible operators over the
    given :class:`~repro.core.compiler.lifetime_placement.ResourceClass`
    list (heavier recomputation weight → longer-lived class) and
    recording the operator→class map in
    :attr:`CompiledJob.class_of`. Algorithm 2 partitions the placed DAG
    identically in both paths.
    """
    if placement == "algorithm1":
        place_operators(dag)
        class_of = None
    elif placement == "lifetime":
        from repro.core.compiler.lifetime_placement import \
            place_with_lifetime_classes
        if classes is None:
            raise CompilerError(
                "placement='lifetime' needs a ResourceClass list "
                "(see classes_from_pools)")
        assignment = place_with_lifetime_classes(dag, classes)
        class_of = {name: cls.name for name, cls in assignment.items()}
    else:
        raise CompilerError(f"unknown placement pass {placement!r}; "
                            f"choose 'algorithm1' or 'lifetime'")
    check_placement(dag)
    stage_dag = partition_stages(dag)
    check_partitioning(stage_dag)
    return CompiledJob(logical=dag, stage_dag=stage_dag, class_of=class_of)
