"""Logical DAG partitioning into Pado Stages — Algorithm 2 (§3.1.2).

The compiler traverses the placed DAG in topological order and creates a new
stage at every operator placed on reserved containers, and at every sink.
Each stage then recursively absorbs its transient ancestors; a reserved
parent instead records a stage-level dependency (its stage becomes a parent
of the new stage).

Consequences the runtime relies on (and tests assert):

* every stage contains at most one reserved operator — the operator that
  created it — and that operator is the stage's terminal unless the stage is
  a transient sink;
* stage outputs always land on reserved containers or the job sink, so an
  eviction never forces recomputation of a *parent* stage (§3.2.5);
* a transient operator with several reserved consumers is absorbed into each
  consumer's stage (its tasks re-run per stage — e.g. the ALS Read operator
  feeds both aggregation stages).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataflow.dag import Edge, LogicalDAG, Operator, Placement
from repro.errors import CompilerError


class Stage:
    """A unit of execution: transient ancestors flowing into one reserved
    operator (or a transient sink)."""

    def __init__(self, stage_id: int) -> None:
        self.stage_id = stage_id
        self.operators: list[Operator] = []   # insertion order; root first
        self.parents: list["Stage"] = []
        self.children: list["Stage"] = []

    @property
    def root_op(self) -> Operator:
        """The operator that created the stage (its terminal computation)."""
        return self.operators[0]

    @property
    def reserved_ops(self) -> list[Operator]:
        return [op for op in self.operators
                if op.placement is Placement.RESERVED]

    @property
    def transient_ops(self) -> list[Operator]:
        return [op for op in self.operators
                if op.placement is Placement.TRANSIENT]

    def contains(self, op: Operator) -> bool:
        return any(member is op for member in self.operators)

    def add(self, op: Operator) -> None:
        if not self.contains(op):
            self.operators.append(op)

    def add_child(self, child: "Stage") -> None:
        if child is self:
            return
        if not any(c is child for c in self.children):
            self.children.append(child)
            child.parents.append(self)

    def __repr__(self) -> str:
        names = ",".join(op.name for op in self.operators)
        return f"<Stage {self.stage_id} [{names}]>"


@dataclass
class StageDAG:
    """The DAG of Pado Stages handed to the runtime."""

    logical: LogicalDAG
    stages: list[Stage] = field(default_factory=list)

    def topological(self) -> list[Stage]:
        """Stages in dependency order (stable w.r.t. creation order)."""
        indegree = {id(s): len(s.parents) for s in self.stages}
        ready = [s for s in self.stages if indegree[id(s)] == 0]
        order: list[Stage] = []
        while ready:
            stage = ready.pop(0)
            order.append(stage)
            for child in stage.children:
                indegree[id(child)] -= 1
                if indegree[id(child)] == 0:
                    ready.append(child)
        if len(order) != len(self.stages):
            raise CompilerError("stage DAG contains a cycle")
        return order

    def stage_of_root(self, op: Operator) -> Stage:
        """The stage created at ``op`` (reserved operator or sink)."""
        for stage in self.stages:
            if stage.root_op is op:
                return stage
        raise CompilerError(f"no stage rooted at operator {op.name!r}")

    def stages_containing(self, op: Operator) -> list[Stage]:
        return [s for s in self.stages if s.contains(op)]

    def internal_edges(self, stage: Stage) -> list[Edge]:
        """Logical edges between two members of ``stage``."""
        return [e for op in stage.operators
                for e in self.logical.in_edges(op) if stage.contains(e.src)]

    def boundary_in_edges(self, stage: Stage) -> list[Edge]:
        """Logical edges entering ``stage`` from reserved operators of
        parent stages (the stage's steady data sources, §3.1.2)."""
        return [e for op in stage.operators
                for e in self.logical.in_edges(op)
                if not stage.contains(e.src)]


def partition_stages(dag: LogicalDAG) -> StageDAG:
    """Partition a placed logical DAG into Pado Stages (Algorithm 2)."""
    for op in dag.operators:
        if op.placement is Placement.UNPLACED:
            raise CompilerError(
                f"operator {op.name!r} must be placed before partitioning")
    stage_dag = StageDAG(logical=dag)
    root_stage: dict[str, Stage] = {}  # reserved op name -> its stage

    def recursive_add(stage: Stage, op: Operator) -> None:
        stage.add(op)
        for edge in dag.in_edges(op):
            parent = edge.src
            if parent.placement is Placement.TRANSIENT:
                if not stage.contains(parent):
                    recursive_add(stage, parent)
            else:  # reserved parent: link its stage as a parent stage
                root_stage[parent.name].add_child(stage)

    for op in dag.topological_sort():
        if op.placement is Placement.RESERVED or not dag.out_edges(op):
            if op.name in root_stage:
                continue  # reserved sink: one stage, not two
            stage = Stage(stage_id=len(stage_dag.stages))
            stage_dag.stages.append(stage)
            root_stage[op.name] = stage
            recursive_add(stage, op)
    return stage_dag


def check_partitioning(stage_dag: StageDAG) -> None:
    """Verify Algorithm 2's guarantees; raises on violation."""
    dag = stage_dag.logical
    covered: set[str] = set()
    for stage in stage_dag.stages:
        reserved = stage.reserved_ops
        if len(reserved) > 1:
            raise CompilerError(
                f"stage {stage.stage_id} holds {len(reserved)} reserved "
                f"operators; expected at most one")
        root = stage.root_op
        if reserved and reserved[0] is not root:
            raise CompilerError(
                f"stage {stage.stage_id}: reserved operator is not the root")
        if not reserved and dag.out_edges(root):
            raise CompilerError(
                f"stage {stage.stage_id} ends on a non-sink transient "
                f"operator {root.name!r}")
        for edge in stage_dag.boundary_in_edges(stage):
            if edge.src.placement is not Placement.RESERVED:
                raise CompilerError(
                    f"stage {stage.stage_id} fetches from transient operator "
                    f"{edge.src.name!r} outside the stage")
        covered.update(op.name for op in stage.operators)
    missing = {op.name for op in dag.operators} - covered
    if missing:
        raise CompilerError(f"operators not assigned to any stage: {missing}")
    stage_dag.topological()  # raises on stage-level cycles
