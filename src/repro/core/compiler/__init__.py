"""The Pado Compiler (§3.1): operator placement, stage partitioning,
operator fusion, and the lifetime-aware placement extension (§6)."""

from repro.core.compiler.fusion import FusedOperator, fuse_operators
from repro.core.compiler.lifetime_placement import (ResourceClass,
                                                    place_with_lifetime_classes)
from repro.core.compiler.partitioning import (Stage, StageDAG,
                                              check_partitioning,
                                              partition_stages)
from repro.core.compiler.pipeline import CompiledJob, compile_program
from repro.core.compiler.placement import (check_placement, place_operators,
                                           recomputation_weight)

__all__ = [
    "CompiledJob", "FusedOperator", "ResourceClass", "Stage", "StageDAG",
    "check_partitioning", "check_placement", "compile_program",
    "fuse_operators", "partition_stages", "place_operators",
    "place_with_lifetime_classes", "recomputation_weight",
]
