"""The task-attempt state machine shared by every engine master.

All three engines (Pado, Spark, Spark-checkpoint) move tasks through the
same lifecycle even though their recovery *policies* differ:

    PENDING -> QUEUED -> FETCHING -> COMPUTING -> DELIVERING -> DONE

``reset()`` abandons the current attempt from any state (eviction, fetch
failure, repair, master restart) and returns the task to its initial state
with the attempt counter bumped — the abandoned attempt number is what the
:class:`~repro.obs.events.Relaunch` event names. Engine-specific vocabulary
maps onto the canonical states:

===============  ==================  ===============  =================
canonical        Pado transient      Pado reserved    Spark
===============  ==================  ===============  =================
PENDING          pending             —                pending
QUEUED           queued              —                queued
FETCHING         assigned            receiving        assigned
COMPUTING        running             computing        running
DELIVERING       pushing             —                writing
DONE             committed           done             done
===============  ==================  ===============  =================

Forward transitions are validated (:class:`IllegalTransition` on a skip or
a backward move); only ``reset()`` may rewind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.exec.executor import SimExecutor

__all__ = ["TaskState", "TaskAttempt", "IllegalTransition", "ACTIVE_STATES"]


class IllegalTransition(ExecutionError):
    """A task was moved to a state unreachable from its current one."""


class TaskState:
    """Canonical task lifecycle states (string-valued for cheap trace
    readability; compared by identity in the hot path)."""

    PENDING = "pending"
    QUEUED = "queued"
    FETCHING = "fetching"
    COMPUTING = "computing"
    DELIVERING = "delivering"
    DONE = "done"


#: States in which an attempt occupies an executor — the states an eviction
#: must abort (a PENDING/QUEUED task has nothing to lose; a DONE task's
#: output survives in the output registry or on disk).
ACTIVE_STATES = (TaskState.FETCHING, TaskState.COMPUTING,
                 TaskState.DELIVERING)

_ALLOWED: dict[str, frozenset] = {
    TaskState.PENDING: frozenset({TaskState.QUEUED, TaskState.FETCHING}),
    TaskState.QUEUED: frozenset({TaskState.FETCHING}),
    TaskState.FETCHING: frozenset({TaskState.COMPUTING}),
    TaskState.COMPUTING: frozenset({TaskState.DELIVERING, TaskState.DONE}),
    TaskState.DELIVERING: frozenset({TaskState.DONE}),
    TaskState.DONE: frozenset(),
}


class TaskAttempt:
    """Base class for one task's state across attempts.

    Subclasses add the engine-specific identity (``key``) and per-attempt
    scratch (cleared via the ``_reset_scratch`` hook). The generic fields
    here are exactly the ones the shared :class:`~repro.core.exec.fetch.
    FetchService` barrier and the master-side assignment path manipulate.
    """

    #: State a fresh task (and a reset one) starts in. Pado's reserved
    #: receivers override this to FETCHING: they are placed directly,
    #: never queued.
    initial_state = TaskState.PENDING

    def __init__(self) -> None:
        self._status = self.initial_state
        self.executor: Optional["SimExecutor"] = None
        self.attempt = 0
        self.cache_keys: set = set()
        #: Cached external-input fetch specs; derived from static DAG
        #: topology, so attempts after the first skip re-deriving them.
        self.fetch_specs: Optional[list] = None
        # per-attempt fetch barrier:
        self.outstanding_fetches = 0
        self.fetch_failed = False
        self.failed_parents: set = set()
        self.input_bytes_by_parent: dict[str, float] = {}
        self.external_inputs: dict[str, list] = {}

    @property
    def key(self) -> tuple:
        raise NotImplementedError

    @property
    def status(self) -> str:
        return self._status

    @status.setter
    def status(self, new: str) -> None:
        old = self._status
        if new == old:
            return
        if new not in _ALLOWED.get(old, frozenset()):
            raise IllegalTransition(
                f"task {getattr(self, 'key', '?')} attempt {self.attempt}: "
                f"cannot move {old!r} -> {new!r}")
        self._status = new

    def begin_attempt(self, executor: "SimExecutor") -> None:
        """Bind this attempt to an executor slot and start fetching."""
        self.status = TaskState.FETCHING
        self.executor = executor
        self.fetch_failed = False
        self.input_bytes_by_parent = {}
        self.external_inputs = {}

    def reset(self) -> None:
        """Abandon the current attempt: bump the attempt counter and return
        to the initial state (the one rewind the state machine allows)."""
        self.attempt += 1
        self._status = self.initial_state
        self.executor = None
        self.outstanding_fetches = 0
        self.fetch_failed = False
        self.failed_parents = set()
        self.input_bytes_by_parent = {}
        self.external_inputs = {}
        self._reset_scratch()

    def _reset_scratch(self) -> None:
        """Hook: clear engine-specific per-attempt scratch state."""
