"""The task-attempt state machine shared by every engine master.

All three engines (Pado, Spark, Spark-checkpoint) move tasks through the
same lifecycle even though their recovery *policies* differ:

    PENDING -> QUEUED -> FETCHING -> COMPUTING -> DELIVERING -> DONE

``reset()`` abandons the current attempt from any state (eviction, fetch
failure, repair, master restart) and returns the task to its initial state
with the attempt counter bumped — the abandoned attempt number is what the
:class:`~repro.obs.events.Relaunch` event names. Engine-specific vocabulary
maps onto the canonical states:

===============  ==================  ===============  =================
canonical        Pado transient      Pado reserved    Spark
===============  ==================  ===============  =================
PENDING          pending             —                pending
QUEUED           queued              —                queued
FETCHING         assigned            receiving        assigned
COMPUTING        running             computing        running
DELIVERING       pushing             —                writing
DONE             committed           done             done
===============  ==================  ===============  =================

Forward transitions are validated (:class:`IllegalTransition` on a skip or
a backward move); only ``reset()`` may rewind.

Since the array-core refactor the machine's storage lives in a shared
:class:`~repro.core.exec.records.AttemptTable`: each task owns a dense
integer ``row`` into parallel status/attempt/countdown arrays, and the
class is a thin view whose properties index them. Engine masters pass
their table down so every task of a job shares one; a task constructed
without a table (unit tests, ad-hoc use) gets a private one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ExecutionError

from repro.core.exec import records
from repro.core.exec.records import ALLOWED_NEXT, CODE_OF, STATE_NAMES, \
    AttemptTable

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.exec.executor import SimExecutor

__all__ = ["TaskState", "TaskAttempt", "IllegalTransition", "ACTIVE_STATES"]


class IllegalTransition(ExecutionError):
    """A task was moved to a state unreachable from its current one."""


class TaskState:
    """Canonical task lifecycle states (string-valued for cheap trace
    readability; compared by identity in the hot path)."""

    PENDING = "pending"
    QUEUED = "queued"
    FETCHING = "fetching"
    COMPUTING = "computing"
    DELIVERING = "delivering"
    DONE = "done"


#: States in which an attempt occupies an executor — the states an eviction
#: must abort (a PENDING/QUEUED task has nothing to lose; a DONE task's
#: output survives in the output registry or on disk).
ACTIVE_STATES = (TaskState.FETCHING, TaskState.COMPUTING,
                 TaskState.DELIVERING)

# The allowed forward transitions live as integer-coded sets next to the
# packed arrays: see ``repro.core.exec.records.ALLOWED_NEXT``.


class TaskAttempt:
    """Base class for one task's state across attempts.

    Subclasses add the engine-specific identity (``key``) and per-attempt
    scratch (cleared via the ``_reset_scratch`` hook). The generic fields
    here are exactly the ones the shared :class:`~repro.core.exec.fetch.
    FetchService` barrier and the master-side assignment path manipulate —
    those live in the shared :class:`AttemptTable` row; object-valued
    scratch (sets, dicts, the fetch-spec cache) stays on the instance.
    """

    #: State a fresh task (and a reset one) starts in. Pado's reserved
    #: receivers override this to FETCHING: they are placed directly,
    #: never queued.
    initial_state = TaskState.PENDING

    def __init__(self, table: Optional[AttemptTable] = None) -> None:
        if table is None:
            table = AttemptTable()
        self.table = table
        self.row = table.add(self, CODE_OF[self.initial_state])
        self._executor: Optional["SimExecutor"] = None
        self.cache_keys: set = set()
        #: Cached external-input fetch specs; derived from static DAG
        #: topology, so attempts after the first skip re-deriving them.
        self.fetch_specs: Optional[list] = None
        self.failed_parents: set = set()
        self.input_bytes_by_parent: dict[str, float] = {}
        self.external_inputs: dict[str, list] = {}

    @property
    def key(self) -> tuple:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # table-backed fields

    @property
    def status(self) -> str:
        return STATE_NAMES[self.table.status[self.row]]

    @status.setter
    def status(self, new: str) -> None:
        table, row = self.table, self.row
        old_code = table.status[row]
        new_code = CODE_OF[new]
        if new_code == old_code:
            return
        if new_code not in ALLOWED_NEXT[old_code]:
            raise IllegalTransition(
                f"task {getattr(self, 'key', '?')} attempt {self.attempt}: "
                f"cannot move {STATE_NAMES[old_code]!r} -> {new!r}")
        table.set_status(row, new_code)
        if new_code == records.DONE and self._executor is not None:
            table.unbind(row, self._executor.executor_id)

    @property
    def _status(self) -> str:
        return STATE_NAMES[self.table.status[self.row]]

    @_status.setter
    def _status(self, state: str) -> None:
        # Unvalidated write into the packed array — the escape hatch tests
        # use to place a task in an arbitrary state directly.
        self.table.set_status(self.row, CODE_OF[state])

    @property
    def attempt(self) -> int:
        return self.table.attempt[self.row]

    @property
    def outstanding_fetches(self) -> int:
        return self.table.outstanding[self.row]

    @outstanding_fetches.setter
    def outstanding_fetches(self, count: int) -> None:
        self.table.outstanding[self.row] = count

    @property
    def fetch_failed(self) -> bool:
        return self.table.fetch_failed[self.row]

    @fetch_failed.setter
    def fetch_failed(self, failed: bool) -> None:
        self.table.fetch_failed[self.row] = failed

    @property
    def executor(self) -> Optional["SimExecutor"]:
        return self._executor

    @executor.setter
    def executor(self, executor: Optional["SimExecutor"]) -> None:
        old = self._executor
        if old is executor:
            return
        table, row = self.table, self.row
        if old is not None:
            table.unbind(row, old.executor_id)
        self._executor = executor
        if executor is not None and table.status[row] != records.DONE:
            table.bind(row, executor.executor_id)

    # ------------------------------------------------------------------
    # lifecycle

    def begin_attempt(self, executor: "SimExecutor") -> None:
        """Bind this attempt to an executor slot and start fetching."""
        self.status = TaskState.FETCHING
        self.executor = executor
        table, row = self.table, self.row
        table.fetch_failed[row] = False
        self.input_bytes_by_parent = {}
        self.external_inputs = {}

    def reset(self) -> None:
        """Abandon the current attempt: bump the attempt counter and return
        to the initial state (the one rewind the state machine allows)."""
        table, row = self.table, self.row
        table.attempt[row] += 1
        table.set_status(row, CODE_OF[self.initial_state])
        self.executor = None
        table.outstanding[row] = 0
        table.fetch_failed[row] = False
        self.failed_parents = set()
        self.input_bytes_by_parent = {}
        self.external_inputs = {}
        self._reset_scratch()

    def _reset_scratch(self) -> None:
        """Hook: clear engine-specific per-attempt scratch state."""
