"""Registry of preserved task outputs with reachability and waiters.

Unifies what the Pado master called ``_OutputRecord`` (partitions preserved
on reserved executors, §3.2.4) and the Spark master's ``_Output`` (map
outputs on executor local disk, checkpoints on the stable store, §2.2):
one record type that knows where an output lives and whether a consumer
could still fetch it, plus the waiter queue both masters used to park
consumers on outputs being (re)computed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Optional

from repro.obs.events import FetchMiss

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.cluster.events import Simulator
    from repro.core.exec.executor import SimExecutor
    from repro.obs.tracer import Tracer

__all__ = ["OutputRecord", "OutputRegistry"]


class OutputRecord:
    """One task output: where it lives and whether it is still there."""

    __slots__ = ("executor", "size", "payload", "available",
                 "checkpointed", "checkpoint_inflight", "order")

    def __init__(self, executor: Optional["SimExecutor"], size: float,
                 payload: Optional[list]) -> None:
        self.executor = executor          # None = lives on the driver
        self.size = size
        self.payload = payload
        self.available = True
        self.checkpointed = False
        self.checkpoint_inflight = False
        #: Registration position in the registry (an overwrite-put keeps
        #: the original position, like a dict overwrite; pop + re-put gets
        #: a fresh one). The executor-loss sweep sorts its per-executor
        #: bucket by this so it returns keys in exactly the order a full
        #: registry scan would have.
        self.order = 0

    def reachable(self) -> bool:
        """Could a consumer still fetch this output?"""
        if self.checkpointed:
            return True  # durable on the stable store
        if not self.available:
            return False
        if self.executor is None:
            return True  # driver-resident
        return self.executor.alive


class OutputRegistry:
    """Keyed store of :class:`OutputRecord` plus consumer waiters.

    ``wait(key, cb)`` parks a callback until ``notify(key)`` — the seam
    both repair (Pado §3.2.6) and lineage recomputation (Spark §2.2) hang
    off. The registry never notifies implicitly on ``put``: the master
    decides when an output is announced (e.g. Spark checkpoints fire the
    engine hook before waiters run).
    """

    def __init__(self, tracer: "Optional[Tracer]" = None,
                 sim: "Optional[Simulator]" = None) -> None:
        self._records: dict[Hashable, OutputRecord] = {}
        self._waiters: dict[Hashable, list[Callable[[], None]]] = {}
        #: executor_id -> {key: record}: outputs living on that executor.
        #: Replaces the full-registry scan on executor loss with a bucket
        #: sweep (the record keeps no back-pointer churn: ``executor`` is
        #: never reassigned after construction).
        self._by_executor: dict[int, dict[Hashable, OutputRecord]] = {}
        self._next_order = 0
        self.tracer = tracer
        self.sim = sim

    # ------------------------------------------------------------------
    # mapping surface (tests and masters read through these)

    def put(self, key: Hashable, executor: Optional["SimExecutor"],
            size: float, payload: Optional[list]) -> OutputRecord:
        record = OutputRecord(executor, size, payload)
        old = self._records.get(key)
        if old is not None:
            record.order = old.order
            if old.executor is not None:
                bucket = self._by_executor.get(old.executor.executor_id)
                if bucket is not None:
                    bucket.pop(key, None)
        else:
            record.order = self._next_order
            self._next_order += 1
        self._records[key] = record
        if executor is not None:
            self._by_executor.setdefault(
                executor.executor_id, {})[key] = record
        return record

    def get(self, key: Hashable, default=None) -> Optional[OutputRecord]:
        return self._records.get(key, default)

    def pop(self, key: Hashable, default=None) -> Optional[OutputRecord]:
        record = self._records.pop(key, None)
        if record is None:
            return default
        if record.executor is not None:
            bucket = self._by_executor.get(record.executor.executor_id)
            if bucket is not None:
                bucket.pop(key, None)
        return record

    def __getitem__(self, key: Hashable) -> OutputRecord:
        return self._records[key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def items(self):
        return self._records.items()

    def values(self):
        return self._records.values()

    def keys(self):
        return self._records.keys()

    # ------------------------------------------------------------------
    # reachability and loss

    def reachable(self, key: Hashable) -> bool:
        record = self._records.get(key)
        return record is not None and record.reachable()

    def mark_executor_lost(self, executor: "SimExecutor") -> list:
        """Flag every non-checkpointed output on ``executor`` as lost;
        returns their keys in registration order.

        Sweeps only this executor's bucket — O(outputs on the executor)
        rather than O(all outputs) — sorted by registration order to match
        the full scan this replaced (the order feeds Spark's recompute
        submissions, so it is parity-critical)."""
        bucket = self._by_executor.get(executor.executor_id)
        if not bucket:
            return []
        lost = []
        for key, record in bucket.items():
            if record.executor is executor and not record.checkpointed:
                record.available = False
                lost.append((record.order, key))
        lost.sort(key=lambda pair: pair[0])
        return [key for _, key in lost]

    def trace_miss(self, op: str, index: int) -> None:
        """Emit a :class:`~repro.obs.events.FetchMiss` — the lazy discovery
        of preserved-data loss."""
        if self.tracer is not None:
            self.tracer.emit(FetchMiss(time=self.sim.now, op=op,
                                       index=index))

    # ------------------------------------------------------------------
    # waiters

    def wait(self, key: Hashable, callback: Callable[[], None]) -> None:
        self._waiters.setdefault(key, []).append(callback)

    def notify(self, key: Hashable) -> None:
        for waiter in self._waiters.pop(key, []):
            waiter()
