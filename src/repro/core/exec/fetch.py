"""Fetch orchestration: the per-attempt input barrier and retry policies.

Every engine master runs the same input barrier for a task attempt: plan a
set of fetches, count them down as each arrives or breaks, then either
start computing (all arrived) or abort the attempt (any broke). What
differs between engines is *policy* — what happens on a miss and on an
abort — which is exactly what :class:`RetryPolicy` captures:

* :class:`ImmediateRetry` — abort the whole attempt and resubmit at once
  (Pado; real Spark's FetchFailed handling);
* :class:`DelayedRefetch` — keep the attempt alive, re-issue only the lost
  fetch once the producer output is back (the optimistic Spark ablation);
* :class:`CappedAttempts` — give up after N attempts and surface a job
  failure instead of looping forever.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Optional

from repro.dataflow.dag import Edge, route_output, route_sizes
from repro.errors import ExecutionError

from repro.core.exec import records
from repro.core.exec.attempt import TaskAttempt

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.cluster.storage import InputStore
    from repro.core.exec.executor import SimExecutor
    from repro.core.runtime.scheduler import TaskScheduler

__all__ = ["FetchResult", "RetryPolicy", "ImmediateRetry", "DelayedRefetch",
           "CappedAttempts", "InflightIndex", "FetchService"]


class FetchResult:
    """Outcome of a preserved-output fetch."""

    __slots__ = ("ok", "size", "payload")

    def __init__(self, ok: bool, size: float,
                 payload: Optional[list]) -> None:
        self.ok = ok
        self.size = size
        self.payload = payload


class RetryPolicy:
    """What to do when an input fetch misses or an attempt aborts."""

    #: True: a missing producer output fails the whole attempt (the master
    #: aborts and resubmits). False: the attempt stays alive and only the
    #: lost fetch is re-issued once the output is recomputed.
    abort_on_miss = True

    def before_abort(self, task: TaskAttempt) -> None:
        """Called before an attempt is abandoned; may raise to surface a
        job failure instead of retrying."""


class ImmediateRetry(RetryPolicy):
    """Abort the attempt and resubmit immediately (default)."""


class DelayedRefetch(RetryPolicy):
    """Keep fetched partitions; re-pull only the lost ones later."""

    abort_on_miss = False


class CappedAttempts(RetryPolicy):
    """Fail the job once a task has been attempted ``max_attempts`` times."""

    def __init__(self, max_attempts: int) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts

    def before_abort(self, task: TaskAttempt) -> None:
        if task.attempt + 1 >= self.max_attempts:
            raise ExecutionError(
                f"task {task.key} exhausted {self.max_attempts} attempts")


class InflightIndex:
    """Coalesces concurrent fetches of one key to one transfer.

    The first caller opens the entry and performs the transfer; later
    callers ``join`` as waiters and are handed the result when the opener
    ``drain``\\ s the entry (Pado's shared cacheable-input fetch, §3.2.7;
    Spark's per-executor TorrentBroadcast block fetch).
    """

    def __init__(self) -> None:
        self._inflight: dict[Hashable, list] = {}

    def join(self, key: Hashable, waiter) -> bool:
        """True if a fetch of ``key`` is already in flight (``waiter`` was
        queued); False if the caller just opened the entry and must fetch."""
        waiters = self._inflight.get(key)
        if waiters is not None:
            waiters.append(waiter)
            return True
        self._inflight[key] = []
        return False

    def drain(self, key: Hashable) -> list:
        """Close the entry, returning the queued waiters."""
        return self._inflight.pop(key, [])


class FetchService:
    """The per-attempt input barrier shared by every master.

    Owns the countdown (``begin``/``arrived``/``broke``), the abort path
    (trace + reset + slot release + policy), executor-side input caching,
    and in-flight coalescing. The master supplies the policy callbacks:
    ``on_ready`` (all inputs arrived — start computing) and ``after_abort``
    (attempt abandoned — requeue per engine semantics).
    """

    def __init__(self, input_store: "InputStore",
                 scheduler: "TaskScheduler",
                 on_ready: Callable[[TaskAttempt], None],
                 after_abort: Callable[[TaskAttempt, set], None],
                 trace_relaunch: Callable[..., None],
                 retry: Optional[RetryPolicy] = None) -> None:
        self.input_store = input_store
        self.scheduler = scheduler
        self.on_ready = on_ready
        self.after_abort = after_abort
        self.trace_relaunch = trace_relaunch
        self.retry = retry if retry is not None else ImmediateRetry()
        self.inflight = InflightIndex()
        #: Executor whose tasks do not occupy scheduler slots (the Spark
        #: driver); its slots are never released on abort.
        self.slotless: Optional["SimExecutor"] = None

    # ------------------------------------------------------------------
    # the barrier

    def begin(self, task: TaskAttempt, fetches: list[Callable[[], None]],
              count: Optional[int] = None) -> None:
        """Arm the barrier for one attempt and issue the fetches.

        ``count`` is the number of arrivals the barrier waits for; it
        defaults to ``len(fetches)`` and must be supplied when one
        callable issues several fetches in bulk (the barrier must be armed
        for all of them before the first synchronous cache hit arrives).
        """
        task.outstanding_fetches = len(fetches) if count is None else count
        if not task.outstanding_fetches:
            self.on_ready(task)
            return
        for fetch in fetches:
            fetch()

    def arrived(self, task: TaskAttempt, attempt: int, parent: str,
                size: float, payload: Optional[list]) -> None:
        # Barrier countdowns fire once per transfer — index the packed
        # attempt arrays directly rather than going through the view
        # properties.
        table, row = task.table, task.row
        if table.attempt[row] != attempt \
                or table.status[row] != records.FETCHING:
            return  # stale arrival for an abandoned attempt
        task.input_bytes_by_parent[parent] = \
            task.input_bytes_by_parent.get(parent, 0.0) + size
        if payload is not None:
            task.external_inputs.setdefault(parent, []).extend(payload)
        remaining = table.outstanding[row] - 1
        table.outstanding[row] = remaining
        if remaining == 0:
            if table.fetch_failed[row]:
                self.abort_attempt(task)
            else:
                self.on_ready(task)

    def broke(self, task: TaskAttempt, attempt: int) -> None:
        table, row = task.table, task.row
        if table.attempt[row] != attempt \
                or table.status[row] != records.FETCHING:
            return
        table.fetch_failed[row] = True
        remaining = table.outstanding[row] - 1
        table.outstanding[row] = remaining
        if remaining == 0:
            self.abort_attempt(task)

    def arrived_routed(self, task: TaskAttempt, attempt: int, edge: Edge,
                       pidx: int, size: float,
                       payload: Optional[list]) -> None:
        """Record arrival of one parent partition, keeping only this task's
        share of the bytes (and records, in real-data mode)."""
        share = route_sizes(edge, pidx, size).get(task.index, 0.0)
        routed = None
        if payload is not None:
            routed = route_output(edge, pidx, payload).get(task.index, [])
        self.arrived(task, attempt, edge.src.name, share, routed)

    def abort_attempt(self, task: TaskAttempt,
                      cause: str = "fetch-failed") -> None:
        """Give up on this attempt (input unavailable); the retry policy
        decides whether the job keeps going."""
        executor = task.executor
        failed = set(task.failed_parents)
        self.retry.before_abort(task)
        self.trace_relaunch(task, cause)
        task.reset()
        if executor is not None and executor is not self.slotless \
                and executor.alive:
            executor.release_slot()
            self.scheduler.slot_released()
        self.after_abort(task, failed)

    # ------------------------------------------------------------------
    # common fetch kinds

    def fetch_source(self, task: TaskAttempt, attempt: int,
                     cache: bool = False) -> None:
        """Read the task's input-store partition (the chain head's split)."""
        executor = task.executor
        head = task.chain.head
        key = (head.input_ref, task.index)
        size = self.input_store.size_of(key)
        if cache:
            if self.cache_lookup(executor, key) is not None:
                self.arrived(task, attempt, head.name, size, None)
                return

        def done(result) -> None:
            if not result.ok:
                self.broke(task, attempt)
                return
            if cache:
                self.cache_store(executor, head, key, size, None)
            self.arrived(task, attempt, head.name, size, None)

        self.input_store.read(key, executor.endpoint, done)

    # ------------------------------------------------------------------
    # executor-side input cache (§3.2.7)

    def cache_lookup(self, executor: "SimExecutor",
                     key: tuple) -> Optional[tuple]:
        if executor.cache is None:
            return None
        return executor.cache.get(key)

    def cache_store(self, executor: "SimExecutor", consumer_op, key: tuple,
                    size: float, payload) -> None:
        if executor.cache is None or not consumer_op.cacheable:
            return
        executor.cache.put(key, size, payload)
