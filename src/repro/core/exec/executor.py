"""Executor bookkeeping shared by every engine (§3.2.4)."""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.events import Simulator
from repro.cluster.network import ContainerEndpoint, DiskModel, FifoPort
from repro.cluster.resources import Container
from repro.errors import ExecutionError

__all__ = ["SimExecutor"]


class SimExecutor:
    """Executor process bound to one container (§3.2.4).

    Transient-task execution occupies task slots (one per core); reserved
    receivers additionally serialize their processing through the ``cpu``
    FIFO, modelling the limited computational resources of the few reserved
    executors that §3.2.7 worries about.
    """

    def __init__(self, container: Container, sim: Simulator,
                 slots: Optional[int] = None, tracer: Optional[Any] = None) -> None:
        self.container = container
        self.endpoint = ContainerEndpoint(container)
        self.disk = DiskModel(sim, container, tracer=tracer)
        self.cpu = FifoPort(container.spec.cores
                            * container.spec.cpu_throughput)
        self.slots = slots if slots is not None else container.spec.cores
        self.free_slots = self.slots
        self.cache: Optional[Any] = None  # attached by engines that cache
        #: Installed by the scheduler: called whenever a slot frees up, so
        #: the free-executor set stays a superset without any scan. Hooked
        #: here (not on ``slot_released``) because some release paths never
        #: notify the scheduler.
        self.on_free: Optional[Any] = None

    @property
    def executor_id(self) -> int:
        return self.container.container_id

    @property
    def alive(self) -> bool:
        return self.container.alive

    @property
    def is_reserved(self) -> bool:
        return self.container.is_reserved

    def acquire_slot(self) -> bool:
        if self.free_slots <= 0:
            return False
        self.free_slots -= 1
        return True

    def release_slot(self) -> None:
        if self.free_slots >= self.slots:
            raise ExecutionError("slot released twice")
        self.free_slots += 1
        if self.on_free is not None:
            self.on_free(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "R" if self.is_reserved else "T"
        return f"<Executor {self.executor_id}{kind}>"
