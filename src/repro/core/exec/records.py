"""Record-packed per-task state shared by the engine masters.

At fig9xl scale (10k containers, ≥1M events) per-task Python objects
dominate allocation and attribute-lookup time on the hot paths. This
module packs the fields the fetch barrier and eviction sweeps touch —
state, attempt counter, outstanding-fetch countdown, failure flag — into
parallel arrays indexed by a dense integer row, one row per task, handed
out at task construction. :class:`~repro.core.exec.attempt.TaskAttempt`
stays the public face (the tracer and tests keep reading ``task.status``
strings), but it is a thin view: its properties index these arrays, and
the hot callers (:class:`~repro.core.exec.fetch.FetchService`, the
masters' relaunch sweeps) index them directly.

The table also maintains a per-executor index of rows whose attempt is
bound to that executor. Eviction used to scan every task of every stage
(O(tasks) per lost container); with the index a sweep touches only the
handful of attempts actually running there. Row ids are allocated in task
creation order, so ``sorted(bucket)`` reproduces the exact iteration
order of the old full scans — parity goldens stay bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.exec.attempt import TaskAttempt

__all__ = ["AttemptTable", "PENDING", "QUEUED", "FETCHING", "COMPUTING",
           "DELIVERING", "DONE", "STATE_NAMES", "CODE_OF"]

#: Integer state codes, ordered along the lifecycle so the active range
#: (occupying an executor slot) is the contiguous ``FETCHING..DELIVERING``.
PENDING, QUEUED, FETCHING, COMPUTING, DELIVERING, DONE = range(6)

STATE_NAMES = ("pending", "queued", "fetching", "computing", "delivering",
               "done")
CODE_OF = {name: code for code, name in enumerate(STATE_NAMES)}

#: Forward transitions allowed without a ``reset()`` (mirrors the table in
#: :mod:`repro.core.exec.attempt`).
ALLOWED_NEXT = (
    frozenset({QUEUED, FETCHING}),   # PENDING
    frozenset({FETCHING}),           # QUEUED
    frozenset({COMPUTING}),          # FETCHING
    frozenset({DELIVERING, DONE}),   # COMPUTING
    frozenset({DONE}),               # DELIVERING
    frozenset(),                     # DONE
)


class AttemptTable:
    """Parallel arrays of per-task attempt state, one row per task."""

    __slots__ = ("status", "attempt", "outstanding", "fetch_failed",
                 "tasks", "by_executor", "group", "_live_by_group",
                 "_next_group")

    def __init__(self) -> None:
        self.status: list[int] = []
        self.attempt: list[int] = []
        self.outstanding: list[int] = []
        self.fetch_failed: list[bool] = []
        #: Row -> owning view object (for sweeps that need the task back).
        self.tasks: list["TaskAttempt"] = []
        #: executor_id -> {row: None}: rows whose live attempt is bound to
        #: that executor (insertion-ordered; sweeps sort by row id).
        self.by_executor: dict[int, dict[int, None]] = {}
        #: Row -> task group (-1 = ungrouped). A group tracks how many of
        #: its rows are still "live" (status before DELIVERING, i.e. could
        #: still contribute output); the Pado master keys one group per
        #: stage run so the flush-on-stage-drained check is O(1) instead
        #: of rescanning every task of the stage.
        self.group: list[int] = []
        self._live_by_group: dict[int, int] = {}
        self._next_group = 0

    def add(self, task: "TaskAttempt", initial_code: int) -> int:
        """Allocate the next row for ``task``; returns the row id."""
        row = len(self.tasks)
        self.tasks.append(task)
        self.status.append(initial_code)
        self.attempt.append(0)
        self.outstanding.append(0)
        self.fetch_failed.append(False)
        self.group.append(-1)
        return row

    # ------------------------------------------------------------------
    # status writes and live-count groups

    def set_status(self, row: int, code: int) -> None:
        """The one write path for ``status`` — keeps the owning group's
        live count (rows before DELIVERING) in step with the array."""
        status = self.status
        old = status[row]
        status[row] = code
        group = self.group[row]
        if group >= 0 and (old < DELIVERING) != (code < DELIVERING):
            self._live_by_group[group] += 1 if code < DELIVERING else -1

    def new_group(self) -> int:
        group = self._next_group
        self._next_group = group + 1
        self._live_by_group[group] = 0
        return group

    def set_group(self, row: int, group: int) -> None:
        self.group[row] = group
        if self.status[row] < DELIVERING:
            self._live_by_group[group] += 1

    def live_count(self, group: int) -> int:
        """Rows of ``group`` whose status precedes DELIVERING — tasks that
        could still contribute output to their stage."""
        return self._live_by_group[group]

    # ------------------------------------------------------------------
    # per-executor attempt index

    def bind(self, row: int, executor_id: int) -> None:
        bucket = self.by_executor.get(executor_id)
        if bucket is None:
            self.by_executor[executor_id] = {row: None}
        else:
            bucket[row] = None

    def unbind(self, row: int, executor_id: int) -> None:
        bucket = self.by_executor.get(executor_id)
        if bucket is not None:
            bucket.pop(row, None)

    def rows_on(self, executor_id: int) -> list[int]:
        """Rows bound to ``executor_id``, in task-creation order (matching
        the full-scan iteration order the index replaced)."""
        bucket = self.by_executor.get(executor_id)
        if not bucket:
            return []
        return sorted(bucket)
