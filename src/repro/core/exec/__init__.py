"""repro.core.exec — the execution substrate under every engine master.

The Pado evaluation compares runtime *disciplines* (push-to-reserved
retention vs. pull + recompute vs. pull + checkpoint) over one cluster
substrate; this package is the corresponding seam in the code. It holds
the machinery every master repeats —

* :class:`TaskAttempt` / :class:`TaskState` — the task-attempt state
  machine with centralized attempt counting and validated transitions;
* :class:`FetchService` + :class:`RetryPolicy` — the per-attempt input
  barrier, coalesced fetches, and abort/retry orchestration;
* :class:`OutputRegistry` — preserved outputs with reachability queries
  and consumer waiters;
* :class:`SimExecutor` — slot/cpu/disk bookkeeping per container;

— so each engine master contributes only policy (Pado: push-to-reserved +
lifetime placement; Spark: lazy pull + lineage recompute; Spark-checkpoint:
pull + stable-store writes). See ``docs/ARCHITECTURE.md`` for the layer
diagram.
"""

from repro.core.exec.attempt import (ACTIVE_STATES, IllegalTransition,
                                     TaskAttempt, TaskState)
from repro.core.exec.executor import SimExecutor
from repro.core.exec.fetch import (CappedAttempts, DelayedRefetch,
                                   FetchResult, FetchService, ImmediateRetry,
                                   InflightIndex, RetryPolicy)
from repro.core.exec.outputs import OutputRecord, OutputRegistry

__all__ = [
    "ACTIVE_STATES", "CappedAttempts", "DelayedRefetch", "FetchResult",
    "FetchService", "IllegalTransition", "ImmediateRetry", "InflightIndex",
    "OutputRecord", "OutputRegistry", "RetryPolicy", "SimExecutor",
    "TaskAttempt", "TaskState",
]
