"""The Pado Runtime (§3.2): master, scheduler, executors, eviction/fault
tolerance, and the caching + partial-aggregation optimizations."""

from repro.core.runtime.aggregation import (AggregationBuffer, Contribution,
                                            FlushBatch, merge_payloads)
from repro.core.runtime.cache import LruCache
from repro.core.runtime.engine import PadoEngine
from repro.core.runtime.master import PadoMaster, PadoRuntimeConfig
from repro.core.runtime.plan import (ExecutionPlan, InterChainEdge,
                                     PhysicalStage, build_execution_plan)
from repro.core.runtime.scheduler import (CacheAwarePolicy,
                                          LifetimeAwarePolicy,
                                          RoundRobinPolicy,
                                          SchedulingPolicy, TaskScheduler)

__all__ = [
    "AggregationBuffer", "CacheAwarePolicy", "Contribution", "ExecutionPlan",
    "FlushBatch", "InterChainEdge", "LruCache", "PadoEngine", "PadoMaster",
    "LifetimeAwarePolicy", "PadoRuntimeConfig", "PhysicalStage",
    "RoundRobinPolicy",
    "SchedulingPolicy", "TaskScheduler", "build_execution_plan",
    "merge_payloads",
]
