"""The Pado master: stage execution, eviction tolerance, fault tolerance.

Orchestrates a compiled job on the simulated cluster (§3.2):

* stages run in topological order; for each stage the reserved-side receiver
  tasks are set up first, then the transient tasks are scheduled (§3.2.3);
* transient task outputs are pushed to reserved receivers the moment the
  task finishes computing — the task slot is released immediately and the
  push proceeds "on a separate thread" (§3.2.4);
* a task counts as done only after an output-commit message reaches the
  master; evictions relaunch exactly the uncommitted tasks of the running
  stage, never tasks of parent stages (§3.2.5);
* reserved-executor machine faults re-run the stages whose preserved outputs
  were lost, discovered lazily when a consumer's fetch misses (§3.2.6);
* optional task-input caching and task-output partial aggregation reduce the
  load on the small reserved side (§3.2.7).

The attempt lifecycle, fetch barrier, and output bookkeeping live in
:mod:`repro.core.exec` (shared with the Spark masters); this module adds
Pado's policy: push-to-reserved retention, receiver repair, and
lifetime-aware placement.

Partial aggregation affects simulated transfer sizes through the combiner's
``merged_size_bytes``; in real-data mode the routed records travel unmerged
inside the batch (the combine logic is associative, so merging at the
receiver — which the downstream operator does anyway — is semantically
identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.cluster.network import InfiniteEndpoint, TransferResult
from repro.core.compiler.fusion import FusedOperator
from repro.core.exec import (FetchResult, RetryPolicy, TaskAttempt,
                             TaskState)
from repro.core.runtime.aggregation import AggregationBuffer, Contribution
from repro.core.runtime.cache import LruCache
from repro.core.runtime.plan import (ExecutionPlan, InterChainEdge,
                                     PhysicalStage)
from repro.core.runtime.scheduler import SchedulingPolicy
from repro.dataflow.dag import (DependencyType, Edge, destination_indices,
                                route_output, route_sizes, source_indices,
                                transfer_fraction)
from repro.engines.base import (MasterBase, Program, SimContext,
                                SimExecutor)
from repro.errors import ExecutionError
from repro.obs.events import PredictedEviction, ProactivePush, StageEnd, \
    StageStart, TaskCommitted, TaskPushed, TaskStart


@dataclass(frozen=True)
class PadoRuntimeConfig:
    """Runtime knobs (§3.2.7 optimizations are on by default).

    The prediction knobs (all default-off) select the §6 lifetime
    extension: ``placement`` switches the compiler pass, ``predictor``
    names a :func:`repro.predict.base.make_predictor` model, and
    ``proactive_push`` arms the master's re-replication loop — every
    ``push_check_interval`` simulated seconds, local outputs sitting on
    containers whose predicted eviction probability within
    ``push_horizon`` exceeds ``push_threshold`` are copied to a reserved
    home ahead of the eviction (see docs/PREDICTION.md).
    """

    enable_caching: bool = True
    enable_partial_aggregation: bool = True
    aggregation_max_tasks: int = 2
    aggregation_max_delay: float = 30.0
    cache_fraction: float = 0.3
    scheduling_policy: Optional[SchedulingPolicy] = None
    progress_replication_interval: float = 30.0
    retry_policy: Optional[RetryPolicy] = None
    placement: str = "algorithm1"
    predictor: Optional[str] = None
    proactive_push: bool = False
    push_threshold: float = 0.4
    push_horizon: float = 120.0
    push_check_interval: float = 30.0


class _TransientTask(TaskAttempt):
    """State of one transient task across attempts."""

    def __init__(self, stage_run: "_StageRun", chain: FusedOperator,
                 index: int) -> None:
        super().__init__(stage_run.master.attempts)
        self.stage_run = stage_run
        self.chain = chain
        self.index = index
        self._reset_scratch()

    @property
    def key(self) -> tuple:
        return (self.chain.name, self.index)

    @property
    def weight(self) -> float:
        """Static compute weight of the fused chain — the §6 scheduling
        hint for lifetime-aware placement (heavier tasks cost more to lose
        to an eviction)."""
        return sum(op.cost.fixed_compute_seconds + op.cost.compute_factor
                   for op in self.chain.ops)

    def assign(self, executor: SimExecutor) -> None:
        """Called by the scheduler when a slot is acquired for this task."""
        self.stage_run.master._task_assigned(self, executor)

    def _reset_scratch(self) -> None:
        self.pending_deliveries: set = set()
        self.delivered_dsts: set = set()
        self.output_records: Optional[list] = None
        self.output_bytes = 0.0


class _ReservedTask(TaskAttempt):
    """State of one reserved receiver/compute task."""

    initial_state = TaskState.FETCHING  # placed directly, never queued

    def __init__(self, stage_run: "_StageRun", index: int) -> None:
        super().__init__(stage_run.master.attempts)
        self.stage_run = stage_run
        self.index = index
        self.expected: set = set()
        self.consumed_keys: set = set()  # producer keys at last DONE
        self._reset_scratch()

    @property
    def key(self) -> tuple:
        return ("__root__", self.index)

    def _reset_scratch(self) -> None:
        self.committed: set = set()
        self.arrived: dict[Hashable, tuple[float, Optional[list], str]] = {}
        self.boundary_outstanding = 0
        self.boundary_bytes_by_parent: dict[str, float] = {}
        self.boundary_payloads: dict[str, list] = {}


class _StageRun:
    """Runtime state of one physical stage."""

    WAITING = "waiting"
    RUNNING = "running"
    DONE = "done"

    def __init__(self, master: "PadoMaster", pstage: PhysicalStage) -> None:
        self.master = master
        self.pstage = pstage
        self.status = self.WAITING
        self.tasks: dict[tuple, _TransientTask] = {}
        self.root_tasks: list[_ReservedTask] = []
        self.local_outputs: dict[tuple, tuple[SimExecutor, float,
                                              Optional[list]]] = {}
        if pstage.has_reserved_root:
            for chain in pstage.transient_chains:
                for i in range(chain.parallelism):
                    self.tasks[(chain.name, i)] = _TransientTask(
                        self, chain, i)
            self.root_tasks = [_ReservedTask(self, i)
                               for i in range(pstage.root_chain.parallelism)]
        else:
            for chain in pstage.chains:
                for i in range(chain.parallelism):
                    self.tasks[(chain.name, i)] = _TransientTask(
                        self, chain, i)
        # One attempt-table group per run: live_count(group) == 0 is the
        # O(1) "no task of this stage can still contribute" check that
        # _maybe_flush_stage used to answer by scanning every task.
        self.group = master.attempts.new_group()
        for task in self.tasks.values():
            master.attempts.set_group(task.row, self.group)

    def chain_by_name(self, name: str) -> FusedOperator:
        for chain in self.pstage.chains:
            if chain.name == name:
                return chain
        raise ExecutionError(f"no chain {name!r} in stage {self.pstage.index}")


class PadoMaster(MasterBase):
    """Drives one job execution on a :class:`SimContext`."""

    def __init__(self, ctx: SimContext, program: Program,
                 plan: ExecutionPlan, config: PadoRuntimeConfig) -> None:
        super().__init__(ctx, scheduling_policy=config.scheduling_policy,
                         retry_policy=config.retry_policy)
        self.program = program
        self.plan = plan
        self.config = config
        self.master_endpoint = InfiniteEndpoint()
        self.sink_endpoint = InfiniteEndpoint()
        self.reserved_executors: list[SimExecutor] = []
        self._reserved_cursor = 0
        self.stage_runs = [_StageRun(self, ps) for ps in self.plan.stages]
        self._agg_buffers: dict[tuple, AggregationBuffer] = {}
        self._buffers_by_executor: dict[int, list[tuple]] = {}
        # Repair-time pinning of many-to-one routes: (stage, task key) -> dst.
        self._forced_mo_dst: dict[tuple, int] = {}
        self.commit_count = 0
        self.reserved_repairs = 0
        # Proactive re-replication state (enable_proactive_push). Replicas
        # are keyed (stage index, producer key) and hold the same
        # (executor, size, payload) shape as _StageRun.local_outputs, with
        # the executor a reserved one.
        self._push_predictor = None
        self._predicted: set[int] = set()
        self._replicas: dict[tuple, tuple] = {}
        self._replicating: set[tuple] = set()
        self.proactive_pushes = 0
        self.recomputes_avoided = 0
        self.predicted_evictions = 0
        # Progress metadata "replicated" for master fault tolerance (§3.2.6).
        self.replicated_done_stages: set[int] = set()
        self._snapshot_progress()

    # ==================================================================
    # MasterBase policy hooks

    def stage_index_of(self, task) -> int:
        return task.stage_run.pstage.index

    def _resubmit(self, task: _TransientTask) -> None:
        self._maybe_submit(task)

    def _extra_executors(self):
        return self.reserved_executors

    def original_task_count(self) -> int:
        return self.plan.total_tasks

    def result_extras(self) -> dict:
        extras = {
            "commits": self.commit_count,
            "reserved_repairs": self.reserved_repairs,
            "stages": len(self.stage_runs),
        }
        if self._push_predictor is not None:
            extras["proactive_pushes"] = self.proactive_pushes
            extras["recomputes_avoided"] = self.recomputes_avoided
            extras["predicted_evictions"] = self.predicted_evictions
        return extras

    # ==================================================================
    # startup and container management

    def start(self) -> None:
        self.ctx.rm.on_container(self._on_container)
        self.ctx.rm.on_eviction(self._on_container_lost)
        self.ctx.allocate(self.ctx.cluster.num_reserved)
        if not self.reserved_executors:
            raise ExecutionError("Pado needs at least one reserved container")
        for run in self.stage_runs:
            if not run.pstage.stage.parents:
                self._start_stage(run)

    def _on_container(self, container) -> None:
        executor = SimExecutor(container, self.sim, tracer=self.tracer)
        if self.config.enable_caching:
            capacity = container.spec.memory_bytes * self.config.cache_fraction
            executor.cache = LruCache(capacity)
        if container.is_reserved:
            self.reserved_executors.append(executor)
        else:
            self.scheduler.add_executor(executor)

    def _pick_reserved(self) -> SimExecutor:
        alive = [e for e in self.reserved_executors if e.alive]
        if not alive:
            raise ExecutionError("all reserved executors lost")
        self._reserved_cursor = (self._reserved_cursor + 1) % len(alive)
        return alive[self._reserved_cursor]

    # ==================================================================
    # proactive re-replication (predicted evictions)

    def enable_proactive_push(self, predictor) -> None:
        """Arm the predictor-driven re-replication loop.

        Every ``config.push_check_interval`` simulated seconds the master
        ranks live transient containers by predicted eviction probability
        within ``config.push_horizon`` and, for each container crossing
        ``config.push_threshold``, copies its retained local outputs to a
        reserved executor. When the eviction then lands, the replica is
        swapped into ``local_outputs`` and the producer never re-runs —
        the recompute is *avoided* rather than suffered (the lineage
        category ``recompute_avoided``).
        """
        self._push_predictor = predictor
        self.sim.schedule_fast(self.config.push_check_interval,
                               self._push_tick)

    def _push_tick(self) -> None:
        if self.completed:
            return
        predictor = self._push_predictor
        now = self.sim.now
        threshold = self.config.push_threshold
        horizon = self.config.push_horizon
        for container in predictor.risk_rank(
                self.ctx.rm.transient_containers(), now):
            age = max(0.0, now - container.launched_at)
            probability = predictor.eviction_probability(age, horizon)
            if probability < threshold:
                break  # ranked: everything after is safer still
            if container.container_id not in self._predicted:
                self._predicted.add(container.container_id)
                self.predicted_evictions += 1
                if self.tracer is not None:
                    self.tracer.emit(PredictedEviction(
                        time=now, container=container.container_id,
                        probability=probability, age=age))
            self._protect(container)
        self.sim.schedule_fast(self.config.push_check_interval,
                               self._push_tick)

    def _protect(self, container) -> None:
        """Replicate every local output held on an at-risk container."""
        executor = self._find_executor(container)
        if executor is None or not executor.alive:
            return
        # Aggregation batches buffered on the executor would die with it;
        # flush them out ahead of the predicted eviction.
        for key in list(self._buffers_by_executor.get(
                executor.executor_id, [])):
            buffer = self._agg_buffers.get(key)
            if buffer is not None and buffer.pending_count:
                buffer.flush()
        for run in self.stage_runs:
            if run.status is not _StageRun.RUNNING:
                continue
            stage_index = run.pstage.index
            # Sorted for reproducibility: replica transfers contend on
            # network ports, so issue order steers the simulation.
            for pkey in sorted(run.local_outputs):
                entry = run.local_outputs[pkey]
                if entry[0] is not executor:
                    continue
                rkey = (stage_index, pkey)
                if rkey in self._replicas or rkey in self._replicating:
                    continue
                if not self._replica_needed(run, pkey):
                    continue
                self._replicate(run, pkey, entry)

    def _replica_needed(self, run: _StageRun, pkey: tuple) -> bool:
        """Whether some intra-stage consumer has yet to pull this output.

        Once every consumer has its share on board, losing the retained
        copy costs nothing (nobody will call ``_ensure_local_output`` for
        it), so replicating it would only burn network the real fetches
        need.
        """
        producer = run.tasks.get(pkey)
        if producer is None:
            return False
        pstage = run.pstage
        for ice in pstage.consumers_of(producer.chain):
            if pstage.has_reserved_root and ice.consumer is pstage.root_chain:
                continue
            for cidx in route_sizes(ice.edge, pkey[1], 1.0):
                consumer = run.tasks.get((ice.consumer.name, cidx))
                if consumer is not None and consumer.status in (
                        TaskState.PENDING, TaskState.QUEUED,
                        TaskState.FETCHING):
                    return True
        return False

    def _replicate(self, run: _StageRun, pkey: tuple, entry: tuple) -> None:
        src_executor, size, payload = entry
        dst = self._pick_reserved()
        rkey = (run.pstage.index, pkey)
        self._replicating.add(rkey)

        def done(result: TransferResult) -> None:
            self._replicating.discard(rkey)
            if not result.ok:
                return  # source died mid-copy: the eviction path takes over
            if run.local_outputs.get(pkey) is not entry:
                return  # producer re-ran meanwhile; this copy is stale
            if not dst.alive:
                return
            self._replicas[rkey] = (dst, size, payload)
            self.proactive_pushes += 1
            self.ctx.bytes_pushed += int(size)
            if self.tracer is not None:
                self.tracer.emit(ProactivePush(
                    time=self.sim.now,
                    container=src_executor.container.container_id,
                    task=pkey[0], index=pkey[1], size_bytes=size,
                    executor=dst.executor_id))

        self.net.transfer(src_executor.endpoint, dst.endpoint, size, done)

    # ==================================================================
    # stage lifecycle

    def _start_stage(self, run: _StageRun) -> None:
        if run.status is not run.WAITING:
            return
        run.status = run.RUNNING
        pstage = run.pstage
        if self.tracer is not None:
            self.tracer.emit(StageStart(time=self.sim.now,
                                        stage=pstage.index,
                                        name=pstage.root_chain.name))
        if pstage.has_reserved_root:
            # §3.2.3: set up reserved receivers first.
            for task in run.root_tasks:
                self._launch_reserved_task(task)
        for chain in (pstage.transient_chains if pstage.has_reserved_root
                      else pstage.chains):
            for i in range(chain.parallelism):
                self._maybe_submit(run.tasks[(chain.name, i)])

    def _maybe_stage_done(self, run: _StageRun) -> None:
        if run.status is run.DONE:
            return
        pstage = run.pstage
        if pstage.has_reserved_root:
            if not all(t.status == TaskState.DONE for t in run.root_tasks):
                return
        else:
            root = pstage.root_chain
            for i in range(root.parallelism):
                if run.tasks[(root.name, i)].status != TaskState.DONE:
                    return
        run.status = run.DONE
        if self.tracer is not None:
            self.tracer.emit(StageEnd(time=self.sim.now,
                                      stage=pstage.index,
                                      name=pstage.root_chain.name))
        self._record_sink_outputs(run)
        for child_run in self.stage_runs:
            if any(p is run.pstage.stage for p in
                   child_run.pstage.stage.parents):
                if all(self._run_of(parent).status == _StageRun.DONE
                       for parent in child_run.pstage.stage.parents):
                    self._start_stage(child_run)
        if all(r.status == _StageRun.DONE for r in self.stage_runs):
            self.completed = True
            self.jct = self.sim.now

    def _run_of(self, stage) -> _StageRun:
        for run in self.stage_runs:
            if run.pstage.stage is stage:
                return run
        raise ExecutionError("unknown stage")

    def _record_sink_outputs(self, run: _StageRun) -> None:
        root = run.pstage.root_chain
        terminal = root.terminal
        if self.plan.compiled.logical.out_edges(terminal):
            return  # not a job sink
        parts: dict[int, list] = {}
        if run.pstage.has_reserved_root:
            for i in range(root.parallelism):
                record = self.outputs.get((terminal.name, i))
                if record is not None and record.payload is not None:
                    parts[i] = record.payload
        else:
            for i in range(root.parallelism):
                task = run.tasks[(root.name, i)]
                if task.output_records is not None:
                    parts[i] = task.output_records
        if parts:
            self.job_outputs[terminal.name] = parts

    # ==================================================================
    # reserved (receiver) tasks

    def _launch_reserved_task(self, task: _ReservedTask) -> None:
        run = task.stage_run
        pstage = run.pstage
        task.executor = self._pick_reserved()
        task.status = TaskState.FETCHING
        self.ctx.tasks_launched += 1
        if self.tracer is not None:
            self.tracer.emit(TaskStart(
                time=self.sim.now, stage=pstage.index, task="__root__",
                index=task.index, attempt=task.attempt,
                executor=task.executor.executor_id, resource="reserved"))
        # Expected producer commits with *static* routing. Many-to-one
        # pushes route dynamically by executor affinity (§3.2.7), so their
        # completion is tracked chain-wide in _maybe_reserved_compute.
        task.expected = set()
        for ice in pstage.producers_into(pstage.root_chain):
            if ice.edge.dep_type is DependencyType.MANY_TO_ONE:
                continue
            for pidx in source_indices(ice.edge, task.index):
                task.expected.add((ice.producer.name, pidx))
        # Boundary pulls from parent stages' reserved outputs.
        specs = []
        for edge in pstage.boundary_edges(pstage.root_chain):
            for pidx in source_indices(edge, task.index):
                specs.append((edge, pidx))
        task.boundary_outstanding = len(specs)
        attempt = task.attempt
        net = self.net
        net.begin_plan()
        try:
            for edge, pidx in specs:
                self._fetch_reserved_output(
                    edge.src.name, pidx, task.executor,
                    lambda result, e=edge, p=pidx:
                        self._reserved_boundary_done(task, attempt, e, p,
                                                     result),
                    fraction=transfer_fraction(edge))
        finally:
            net.commit_plan()
        self._maybe_reserved_compute(task)

    def _reserved_boundary_done(self, task: _ReservedTask, attempt: int,
                                edge: Edge, pidx: int,
                                result: FetchResult) -> None:
        if task.attempt != attempt or task.status != TaskState.FETCHING:
            return
        if not result.ok:
            # Our own executor died mid-fetch; the failure handler reassigns.
            return
        share = route_sizes(edge, pidx, result.size).get(task.index, 0.0)
        name = edge.src.name
        task.boundary_bytes_by_parent[name] = \
            task.boundary_bytes_by_parent.get(name, 0.0) + share
        if result.payload is not None:
            routed = route_output(edge, pidx, result.payload).get(
                task.index, [])
            task.boundary_payloads.setdefault(name, []).extend(routed)
        task.boundary_outstanding -= 1
        self._maybe_reserved_compute(task)

    def _maybe_reserved_compute(self, task: _ReservedTask) -> None:
        if task.status != TaskState.FETCHING:
            return
        if task.boundary_outstanding > 0:
            return
        if not task.expected <= task.committed:
            return
        # Affinity-routed (many-to-one) inputs are complete only once every
        # producer task of the chain has committed somewhere.
        run = task.stage_run
        for ice in run.pstage.producers_into(run.pstage.root_chain):
            if ice.edge.dep_type is not DependencyType.MANY_TO_ONE:
                continue
            for i in range(ice.producer.parallelism):
                if run.tasks[(ice.producer.name, i)].status != \
                        TaskState.DONE:
                    return
        task.status = TaskState.COMPUTING
        run = task.stage_run
        chain = run.pstage.root_chain
        spec = task.executor.container.spec
        input_bytes = sum(task.boundary_bytes_by_parent.values())
        input_bytes += sum(size for size, _, _ in task.arrived.values())
        seconds = chain.compute_seconds(input_bytes, spec.cpu_throughput)
        seconds += self.ctx.cluster.task_overhead_seconds
        attempt = task.attempt
        self._reserved_compute(
            task.executor, seconds,
            lambda: self._reserved_compute_done(task, attempt, input_bytes))

    def _reserved_compute(self, executor: SimExecutor, seconds: float,
                          callback: Callable[[], None]) -> None:
        """Serialize receiver processing through the executor's CPU (the
        reserved-side bottleneck of §3.2.7 / Figure 8c)."""
        _, end = executor.cpu.reserve(self.sim.now,
                                      seconds * executor.cpu.bandwidth)
        self.sim.schedule_at_fast(end, callback)

    def _reserved_compute_done(self, task: _ReservedTask, attempt: int,
                               input_bytes: float) -> None:
        if task.attempt != attempt or task.status != TaskState.COMPUTING:
            return
        if not task.executor.alive:
            return  # failure handler took over
        run = task.stage_run
        chain = run.pstage.root_chain
        payload = self._reserved_real_output(task, chain)
        if payload is not None:
            out_bytes = float(len(payload) * chain.terminal.record_bytes)
        else:
            external = dict(task.boundary_bytes_by_parent)
            for size, _, parent in task.arrived.values():
                external[parent] = external.get(parent, 0.0) + size
            out_bytes = chain.synthetic_output_bytes(external)
        task.executor.disk.write(out_bytes)  # preserved on local disk
        task.status = TaskState.DONE
        if self.tracer is not None:
            self.tracer.emit(TaskCommitted(
                time=self.sim.now, stage=run.pstage.index, task="__root__",
                index=task.index, attempt=attempt,
                executor=task.executor.executor_id))
        task.consumed_keys = set(task.arrived)
        self.outputs.put((chain.terminal.name, task.index), task.executor,
                         out_bytes, payload)
        self.outputs.notify((chain.terminal.name, task.index))
        self._maybe_stage_done(run)

    def _reserved_real_output(self, task: _ReservedTask,
                              chain: FusedOperator) -> Optional[list]:
        if not self.program.is_real():
            return None
        external: dict[str, list] = {}
        for name, records in task.boundary_payloads.items():
            external.setdefault(name, []).extend(records)
        for _, payload, parent in task.arrived.values():
            if payload is None:
                raise ExecutionError(
                    "real-data run received a payload-less push")
            external.setdefault(parent, []).extend(payload)
        return chain.apply(task.index, external)

    # ==================================================================
    # transient tasks

    def _maybe_submit(self, task: _TransientTask) -> None:
        """Submit a task once its intra-stage producer outputs exist."""
        if task.status != TaskState.PENDING:
            return
        run = task.stage_run
        for ice in run.pstage.producers_into(task.chain):
            for pidx in source_indices(ice.edge, task.index):
                pkey = (ice.producer.name, pidx)
                if pkey not in run.local_outputs:
                    self._ensure_local_output(run, pkey)
                    return
        task.status = TaskState.QUEUED
        task.cache_keys = self._cache_keys_for(task)
        self.scheduler.submit(task)

    def _ensure_local_output(self, run: _StageRun, pkey: tuple) -> None:
        """Recompute an intra-stage producer whose local output is missing."""
        producer = run.tasks[pkey]
        if producer.status == TaskState.PENDING:
            self._maybe_submit(producer)
        elif producer.status == TaskState.DONE:
            lost_on = producer.executor
            self._trace_relaunch(
                producer, "local-output-lost",
                cause_ref=(lost_on.container.container_id
                           if lost_on is not None and not lost_on.alive
                           else None))
            producer.reset()
            self._maybe_submit(producer)
        # QUEUED/FETCHING/COMPUTING/DELIVERING: already on its way.

    def _cache_keys_for(self, task: _TransientTask) -> set:
        if not self.config.enable_caching:
            return set()
        keys: set = set()
        chain = task.chain
        head = chain.head
        if chain.is_source_chain() and head.input_ref is not None \
                and head.cacheable:
            keys.add((head.input_ref, task.index))
        for edge in task.stage_run.pstage.boundary_edges(chain):
            if edge.dst.cacheable:
                for pidx in source_indices(edge, task.index):
                    keys.add((edge.src.name, pidx))
        return keys

    def _plan_fetches(self, task: _TransientTask,
                      attempt: int) -> tuple[list[Callable[[], None]], int]:
        fetches: list[Callable[[], None]] = []
        count = 0
        run = task.stage_run
        chain = task.chain
        # 1. source data from the input store
        if chain.is_source_chain() and chain.head.input_ref is not None:
            fetches.append(lambda: self.fetch.fetch_source(task, attempt,
                                                           cache=True))
            count += 1
        specs = task.fetch_specs
        if specs is None:
            # 2. boundary inputs from parent stages' reserved outputs
            boundary = [(edge, pidx)
                        for edge in run.pstage.boundary_edges(chain)
                        for pidx in source_indices(edge, task.index)]
            # 3. intra-stage inputs from other transient chains
            local = [(ice, pidx)
                     for ice in run.pstage.producers_into(chain)
                     for pidx in source_indices(ice.edge, task.index)]
            specs = task.fetch_specs = [boundary, local]
        boundary, local = specs
        if boundary or local:
            fetches.append(
                lambda: self._fetch_pulls(task, attempt, boundary, local))
            count += len(boundary) + len(local)
        return fetches, count

    def _fetch_pulls(self, task: _TransientTask, attempt: int,
                     boundary: list, local: list) -> None:
        """Issue all of an attempt's boundary and local pulls as one bulk
        network plan: transfers queue while the specs are walked and
        reserve together at commit."""
        net = self.net
        net.begin_plan()
        try:
            for edge, pidx in boundary:
                self._fetch_boundary(task, attempt, edge, pidx)
            for ice, pidx in local:
                self._fetch_local(task, attempt, ice, pidx)
        finally:
            net.commit_plan()

    # ------------------------------------------------------------------
    # fetches

    def _fetch_boundary(self, task: _TransientTask, attempt: int,
                        edge: Edge, pidx: int) -> None:
        executor = task.executor
        key = (edge.src.name, pidx)
        cached = self.fetch.cache_lookup(executor, key)
        if cached is not None:
            size, payload = cached
            self.fetch.arrived_routed(task, attempt, edge, pidx, size,
                                      payload)
            return
        # Concurrent tasks on one executor share a single in-flight fetch
        # of a cacheable key, so e.g. the model "only needs to be sent once
        # to the executors" (§3.2.7).
        coalesce = (self.config.enable_caching and edge.dst.cacheable)
        inflight_key = (executor.executor_id, key)
        if coalesce and self.fetch.inflight.join(
                inflight_key, (task, attempt, edge, pidx)):
            return

        def done(result: FetchResult) -> None:
            waiters = (self.fetch.inflight.drain(inflight_key)
                       if coalesce else [])
            if result.ok:
                self.fetch.cache_store(executor, edge.dst, key, result.size,
                                       result.payload)
                if task.attempt == attempt:
                    self.fetch.arrived_routed(task, attempt, edge, pidx,
                                              result.size, result.payload)
                for other, a2, e2, p2 in waiters:
                    self.fetch.arrived_routed(other, a2, e2, p2, result.size,
                                              result.payload)
            else:
                if task.attempt == attempt:
                    self.fetch.broke(task, attempt)
                for other, a2, _, _ in waiters:
                    self.fetch.broke(other, a2)

        self._fetch_reserved_output(edge.src.name, pidx, executor, done,
                                    fraction=transfer_fraction(edge))

    def _fetch_local(self, task: _TransientTask, attempt: int,
                     ice: InterChainEdge, pidx: int) -> None:
        run = task.stage_run
        pkey = (ice.producer.name, pidx)
        entry = run.local_outputs.get(pkey)
        if entry is None:
            # Producer output lost since submission: abort this attempt and
            # wait for the producer to be recomputed.
            self._ensure_local_output(run, pkey)
            self.fetch.broke(task, attempt)
            return
        producer_executor, size, payload = entry
        share = route_sizes(ice.edge, pidx, size).get(task.index, 0.0)
        routed_payload = None
        if payload is not None:
            routed_payload = route_output(ice.edge, pidx, payload).get(
                task.index, [])
        if producer_executor is task.executor:
            self.fetch.arrived(task, attempt, ice.producer.terminal.name,
                               share, routed_payload)
            return
        tag = (task, attempt, ice, pkey, producer_executor, share,
               routed_payload)
        net = self.net
        if net.plan_open:
            net.plan_transfer(producer_executor.endpoint,
                              task.executor.endpoint, share, tag,
                              self._local_pull_done)
        else:
            net.transfer(producer_executor.endpoint, task.executor.endpoint,
                         share,
                         lambda result: self._local_pull_done(tag, result))

    def _local_pull_done(self, tag: tuple, result: TransferResult) -> None:
        """Shared completion callback for intra-stage local pulls."""
        (task, attempt, ice, pkey, producer_executor, share,
         routed_payload) = tag
        if task.attempt != attempt:
            return
        if not result.ok:
            if not producer_executor.alive:
                run = task.stage_run
                run.local_outputs.pop(pkey, None)
                self._ensure_local_output(run, pkey)
            self.fetch.broke(task, attempt)
            return
        self.ctx.bytes_shuffled += int(share)
        self.fetch.arrived(task, attempt, ice.producer.terminal.name,
                           share, routed_payload)

    # ------------------------------------------------------------------
    # compute and push

    def _compute_done(self, task: _TransientTask, attempt: int) -> None:
        if task.attempt != attempt or task.status != TaskState.COMPUTING:
            return
        executor = task.executor
        if not executor.alive:
            return  # eviction handler already rescheduled the task
        if self.program.is_real():
            task.output_records = task.chain.apply(task.index,
                                                   task.external_inputs)
            task.output_bytes = float(
                len(task.output_records) * task.chain.terminal.record_bytes)
        else:
            bytes_in = dict(task.input_bytes_by_parent)
            if task.chain.is_source_chain():
                bytes_in.setdefault(
                    task.chain.head.name,
                    task.input_bytes_by_parent.get(task.chain.head.name, 0.0))
            task.output_bytes = task.chain.synthetic_output_bytes(bytes_in)
        # §3.2.4: the slot frees immediately; pushes ride a separate thread.
        executor.release_slot()
        self.scheduler.slot_released()
        task.status = TaskState.DELIVERING
        if self.tracer is not None:
            self.tracer.emit(TaskPushed(
                time=self.sim.now, stage=task.stage_run.pstage.index,
                task=task.chain.name, index=task.index, attempt=attempt,
                executor=executor.executor_id,
                size_bytes=task.output_bytes))
        self._dispatch_output(task)
        self._maybe_flush_stage(task.stage_run)

    def _dispatch_output(self, task: _TransientTask) -> None:
        run = task.stage_run
        pstage = run.pstage
        chain = task.chain
        deliveries: set = set()
        # Local retention for intra-stage transient consumers.
        consumer_edges = pstage.consumers_of(chain)
        has_transient_consumer = False
        for ice in consumer_edges:
            if pstage.has_reserved_root and ice.consumer is pstage.root_chain:
                continue
            has_transient_consumer = True
        if has_transient_consumer:
            if self._replicas:
                # A fresh attempt's output supersedes any proactive replica
                # of an earlier attempt.
                self._replicas.pop((pstage.index, task.key), None)
            run.local_outputs[task.key] = (task.executor, task.output_bytes,
                                           task.output_records)
        # Pushes into the reserved root.
        if pstage.has_reserved_root:
            for ice in consumer_edges:
                if ice.consumer is not pstage.root_chain:
                    continue
                self._push_to_root(task, ice, deliveries)
        elif chain is pstage.root_chain:
            # Transient sink: escape to the job sink storage.
            deliveries.add(("__sink__",))
            self._write_sink(task)
        task.pending_deliveries = deliveries
        # Unblock intra-stage consumers now that the local output exists.
        if has_transient_consumer:
            for ice in consumer_edges:
                if pstage.has_reserved_root and \
                        ice.consumer is pstage.root_chain:
                    continue
                for didx in destination_indices(ice.edge, task.index):
                    self._maybe_submit(run.tasks[(ice.consumer.name, didx)])
        if not deliveries:
            # Nothing to commit (purely local output); mark committed so the
            # stage can finish, but keep local data available.
            self._send_commit(task)

    def _maybe_flush_stage(self, run: _StageRun) -> None:
        """Flush aggregation buffers once the stage has no task left that
        could still contribute — waiting out the timer would only delay the
        stage without saving any transfer."""
        if self.attempts.live_count(run.group):
            return
        stage_index = run.pstage.index
        for key, buffer in list(self._agg_buffers.items()):
            if key[1] == stage_index:
                buffer.flush()

    def _push_to_root(self, task: _TransientTask, ice: InterChainEdge,
                      deliveries: set) -> None:
        run = task.stage_run
        edge = ice.edge
        combiner = run.pstage.root_chain.head.combiner
        use_agg = (self.config.enable_partial_aggregation
                   and combiner is not None and edge.dep_type.is_wide)
        if edge.dep_type is DependencyType.MANY_TO_ONE:
            # Executor-affinity routing (§3.2.7): every task on this
            # executor feeds the same receiver, maximizing partial
            # aggregation. Repairs pin routes via _forced_mo_dst.
            n = run.pstage.root_chain.parallelism
            forced = self._forced_mo_dst.get((run.pstage.index, task.key))
            dst = forced if forced is not None else \
                task.executor.executor_id % n
            dsts_and_shares = [(dst, task.output_bytes,
                                task.output_records)]
        else:
            shares = route_sizes(edge, task.index, task.output_bytes)
            routed_payloads: dict[int, list] = {}
            if task.output_records is not None:
                routed_payloads = route_output(edge, task.index,
                                               task.output_records)
            dsts_and_shares = []
            for dst in destination_indices(edge, task.index):
                payload = routed_payloads.get(dst)
                if task.output_records is not None and payload is None:
                    payload = []
                dsts_and_shares.append((dst, shares.get(dst, 0.0), payload))
        for dst, size, payload in dsts_and_shares:
            delivery = ("root", dst)
            deliveries.add(delivery)
            task.delivered_dsts.add(delivery)
            contribution = Contribution(producer_key=task.key,
                                        size_bytes=size, payload=payload)
            if use_agg:
                self._buffered_push(task, edge, dst, combiner, contribution)
            else:
                self._direct_push(task, edge, dst, [contribution], size)

    def _buffered_push(self, task: _TransientTask, edge: Edge, dst: int,
                       combiner, contribution: Contribution) -> None:
        run = task.stage_run
        executor = task.executor
        key = (executor.executor_id, run.pstage.index, dst)
        buffer = self._agg_buffers.get(key)
        if buffer is None:
            keyed = edge.dep_type is DependencyType.MANY_TO_MANY
            buffer = AggregationBuffer(
                self.sim, combiner, keyed,
                max_tasks=self.config.aggregation_max_tasks,
                max_delay=self.config.aggregation_max_delay,
                flush_fn=lambda batch, r=run, e=executor, d=dst:
                    self._flush_batch(r, e, d, batch))
            self._agg_buffers[key] = buffer
            self._buffers_by_executor.setdefault(
                executor.executor_id, []).append(key)
        buffer.add(contribution)

    def _flush_batch(self, run: _StageRun, executor: SimExecutor, dst: int,
                     batch) -> None:
        root = run.root_tasks[dst]

        def done(result: TransferResult) -> None:
            if not result.ok:
                return  # producer evicted; its tasks are being relaunched
            self.ctx.bytes_pushed += int(batch.merged_size_bytes)
            share = (batch.merged_size_bytes / len(batch.contributions)
                     if batch.contributions else 0.0)
            for contribution in batch.contributions:
                self._root_received(run, dst, contribution.producer_key,
                                    share, contribution.payload)
            for contribution in batch.contributions:
                self._delivery_done(run, contribution.producer_key,
                                    ("root", dst))

        self.net.transfer(executor.endpoint, root.executor.endpoint,
                          batch.merged_size_bytes, done)

    def _direct_push(self, task: _TransientTask, edge: Edge, dst: int,
                     contributions: list[Contribution], size: float) -> None:
        run = task.stage_run
        root = run.root_tasks[dst]

        def done(result: TransferResult) -> None:
            if not result.ok:
                return
            self.ctx.bytes_pushed += int(size)
            for contribution in contributions:
                self._root_received(run, dst, contribution.producer_key,
                                    contribution.size_bytes,
                                    contribution.payload)
                self._delivery_done(run, contribution.producer_key,
                                    ("root", dst))

        self.net.transfer(task.executor.endpoint, root.executor.endpoint,
                          size, done)

    def _root_received(self, run: _StageRun, dst: int, producer_key: tuple,
                       size: float, payload: Optional[list]) -> None:
        root = run.root_tasks[dst]
        if root.status != TaskState.FETCHING:
            return  # late duplicate after the receiver finished
        if producer_key in root.arrived:
            return  # exactly-once: ignore duplicate deliveries
        chain_name = producer_key[0]
        parent_op = run.chain_by_name(chain_name).terminal.name
        root.arrived[producer_key] = (size, payload, parent_op)

    def _delivery_done(self, run: _StageRun, producer_key: tuple,
                       delivery: tuple) -> None:
        task = run.tasks.get(producer_key)
        if task is None or task.status != TaskState.DELIVERING:
            return
        task.pending_deliveries.discard(delivery)
        if not task.pending_deliveries:
            self._send_commit(task)

    def _write_sink(self, task: _TransientTask) -> None:
        def done(result: TransferResult) -> None:
            if not result.ok:
                return
            self._delivery_done(task.stage_run, task.key, ("__sink__",))

        self.net.transfer(task.executor.endpoint, self.sink_endpoint,
                          task.output_bytes, done)

    def _send_commit(self, task: _TransientTask) -> None:
        """Output-commit message through the master (§3.2.5)."""
        attempt = task.attempt

        def done(result: TransferResult) -> None:
            if task.attempt != attempt or \
                    task.status != TaskState.DELIVERING:
                return
            if not result.ok:
                return  # evicted mid-commit: task will be relaunched
            self._committed(task)

        self.net.transfer(task.executor.endpoint, self.master_endpoint, 0.0,
                          done)

    def _committed(self, task: _TransientTask) -> None:
        task.status = TaskState.DONE
        self.commit_count += 1
        run = task.stage_run
        pstage = run.pstage
        if self.tracer is not None:
            self.tracer.emit(TaskCommitted(
                time=self.sim.now, stage=pstage.index,
                task=task.chain.name, index=task.index,
                attempt=task.attempt,
                executor=task.executor.executor_id))
        if pstage.has_reserved_root:
            for ice in pstage.consumers_of(task.chain):
                if ice.consumer is not pstage.root_chain:
                    continue
                if ice.edge.dep_type is DependencyType.MANY_TO_ONE:
                    # Exactly-once under re-routed attempts: stale arrivals
                    # of earlier attempts at other receivers are purged.
                    for root in run.root_tasks:
                        if ("root", root.index) not in task.delivered_dsts \
                                and root.status == TaskState.FETCHING:
                            root.arrived.pop(task.key, None)
                    for root in run.root_tasks:
                        self._maybe_reserved_compute(root)
                else:
                    for dst in destination_indices(ice.edge, task.index):
                        root = run.root_tasks[dst]
                        if root.status == TaskState.FETCHING:
                            root.committed.add(task.key)
                            self._maybe_reserved_compute(root)
        self._maybe_stage_done(run)

    # ==================================================================
    # reserved output fetch / repair

    def _fetch_reserved_output(self, op_name: str, pidx: int,
                               dst_executor: SimExecutor,
                               on_done: Callable[[FetchResult], None],
                               fraction: float = 1.0) -> None:
        """Pull a preserved stage output; repairs it first if it was lost
        to a reserved-executor fault (§3.2.6). ``fraction`` limits the bytes
        moved (a many-to-many consumer only needs its hash partition)."""
        key = (op_name, pidx)
        record = self.outputs.get(key)
        if record is None or not record.reachable():
            self.outputs.trace_miss(op_name, pidx)
            self.outputs.wait(
                key,
                lambda: self._fetch_reserved_output(op_name, pidx,
                                                    dst_executor, on_done,
                                                    fraction))
            self._repair_output(op_name, pidx)
            return
        if record.executor is dst_executor:
            on_done(FetchResult(True, record.size, record.payload))
            return
        moved = record.size * fraction
        tag = (op_name, pidx, dst_executor, on_done, fraction, record, moved)
        net = self.net
        if net.plan_open:
            net.plan_transfer(record.executor.endpoint,
                              dst_executor.endpoint, moved, tag,
                              self._reserved_pull_done)
        else:
            net.transfer(record.executor.endpoint, dst_executor.endpoint,
                         moved,
                         lambda result: self._reserved_pull_done(tag, result))

    def _reserved_pull_done(self, tag: tuple, result: TransferResult) -> None:
        """Shared completion callback for preserved-output pulls."""
        op_name, pidx, dst_executor, on_done, fraction, record, moved = tag
        if not result.ok:
            if not record.executor.alive:
                # Source died mid-transfer: repair and retry.
                self._fetch_reserved_output(op_name, pidx, dst_executor,
                                            on_done, fraction)
            else:
                on_done(FetchResult(False, 0.0, None))
            return
        self.ctx.bytes_shuffled += int(moved)
        on_done(FetchResult(True, record.size, record.payload))

    def _repair_output(self, op_name: str, pidx: int) -> None:
        """Re-run the reserved task (and its producers) whose preserved
        output was lost."""
        record = self.outputs.get((op_name, pidx))
        if record is not None and record.reachable():
            return
        pstage = self.plan.stage_of_reserved_op(op_name)
        run = self.stage_runs[pstage.index]
        root = run.root_tasks[pidx]
        if root.status != TaskState.DONE and root.executor is not None \
                and root.executor.alive:
            return  # already being (re)computed
        self.outputs.pop((op_name, pidx), None)
        self.reserved_repairs += 1
        consumed = set(root.consumed_keys)
        lost_ref = (record.executor.container.container_id
                    if record is not None else None)
        self._trace_relaunch(root, "repair", cause_ref=lost_ref)
        root.reset()
        # Relaunch every transient producer routing into this receiver.
        self._launch_reserved_task(root)
        to_relaunch = set(root.expected)
        # Affinity-routed producers: re-run exactly the historical subset
        # this receiver consumed, pinning their route back to it so the
        # repaired output matches what downstream consumers already saw.
        for ice in pstage.producers_into(pstage.root_chain):
            if ice.edge.dep_type is not DependencyType.MANY_TO_ONE:
                continue
            for i in range(ice.producer.parallelism):
                pkey = (ice.producer.name, i)
                if pkey in consumed:
                    self._forced_mo_dst[(pstage.index, pkey)] = root.index
                    to_relaunch.add(pkey)
        # Sorted: set iteration is hash-seeded per process, and relaunch
        # submission order steers scheduling — keep runs reproducible.
        for pkey in sorted(to_relaunch):
            producer = run.tasks[pkey]
            if producer.status in (TaskState.DONE, TaskState.DELIVERING):
                self._trace_relaunch(producer, "repair", cause_ref=lost_ref)
                producer.reset()
            if producer.status == TaskState.PENDING:
                self._maybe_submit(producer)

    # ==================================================================
    # container loss

    def _on_container_lost(self, container, replacement) -> None:
        if container.is_reserved:
            self._reserved_lost(container)
        else:
            self._transient_lost(container)

    def _transient_lost(self, container) -> None:
        executor = self._find_executor(container)
        if executor is None:
            return
        self.scheduler.remove_executor(executor)
        # Drop aggregation buffers (their contents died with the executor).
        for key in self._buffers_by_executor.pop(executor.executor_id, []):
            buffer = self._agg_buffers.pop(key, None)
            if buffer is not None:
                buffer.discard()
        for run in self.stage_runs:
            # Local outputs on the evicted executor are gone — unless a
            # proactive replica survives on the reserved side, in which
            # case it is swapped in and the producer never re-runs.
            lost = [k for k, (ex, _, _) in run.local_outputs.items()
                    if ex is executor]
            for k in lost:
                replica = self._replicas.pop((run.pstage.index, k), None)
                if replica is not None and replica[0].alive:
                    run.local_outputs[k] = replica
                    self.recomputes_avoided += 1
                    if self.tracer is not None:
                        self.tracer.emit(ProactivePush(
                            time=self.sim.now,
                            container=container.container_id,
                            task=k[0], index=k[1],
                            size_bytes=replica[1],
                            executor=replica[0].executor_id,
                            restored=True))
                else:
                    run.local_outputs.pop(k, None)
            # §3.2.5: relaunch only the uncommitted tasks scheduled there.
            # The purge/relaunch interleaving is stage by stage, so the
            # table sweep is restricted to this run's tasks.
            self._relaunch_lost(executor, "eviction",
                                cause_ref=container.container_id,
                                within=lambda t, run=run:
                                    t.stage_run is run)

    def _reserved_lost(self, container) -> None:
        executor = self._find_executor(container)
        if executor is None:
            return
        if executor in self.reserved_executors:
            self.reserved_executors.remove(executor)
        if not any(e.alive for e in self.reserved_executors):
            raise ExecutionError("all reserved executors lost; cannot recover")
        # Preserved outputs on the failed machine are lost; consumers will
        # trigger repairs lazily, but receivers of *running* stages must be
        # reassigned right away.
        if self._replicas:
            dead = [k for k, (dst, _, _) in self._replicas.items()
                    if dst is executor]
            for k in dead:
                del self._replicas[k]
        self.outputs.mark_executor_lost(executor)
        for run in self.stage_runs:
            if run.status != _StageRun.RUNNING:
                continue
            for root in run.root_tasks:
                if root.executor is executor and \
                        root.status != TaskState.DONE:
                    self._trace_relaunch(
                        root, "reserved-fault",
                        cause_ref=container.container_id)
                    root.reset()
                    self._launch_reserved_task(root)
                    to_relaunch = set(root.expected)
                    # Affinity-routed producers whose deliveries targeted the
                    # dead receiver must re-push (the stage is still running,
                    # so any receiver assignment remains valid).
                    for ice in run.pstage.producers_into(
                            run.pstage.root_chain):
                        if ice.edge.dep_type is not \
                                DependencyType.MANY_TO_ONE:
                            continue
                        for i in range(ice.producer.parallelism):
                            pkey = (ice.producer.name, i)
                            producer = run.tasks[pkey]
                            if ("root", root.index) in \
                                    producer.delivered_dsts:
                                to_relaunch.add(pkey)
                    # Sorted for reproducibility (see _repair_output).
                    for pkey in sorted(to_relaunch):
                        producer = run.tasks[pkey]
                        if producer.status in (TaskState.DONE,
                                               TaskState.DELIVERING):
                            self._trace_relaunch(
                                producer, "reserved-fault",
                                cause_ref=container.container_id)
                            producer.reset()
                        if producer.status == TaskState.PENDING:
                            self._maybe_submit(producer)

    # ==================================================================
    # master fault tolerance (§3.2.6)

    def _snapshot_progress(self) -> None:
        """Periodically replicate the progress record."""
        self.replicated_done_stages = {
            run.pstage.index for run in self.stage_runs
            if run.status == _StageRun.DONE}
        if not self.completed:
            self.sim.schedule_fast(self.config.progress_replication_interval,
                                   self._snapshot_progress)

    def fail_master(self) -> None:
        """Simulate a master crash + restart from replicated metadata.

        Stages whose completion was not yet replicated are re-run (their
        preserved data still exists, but the new master has no record of
        it); the currently running stages restart from scratch.
        """
        for run in self.stage_runs:
            if run.pstage.index in self.replicated_done_stages:
                continue
            if run.status == _StageRun.WAITING:
                continue
            self._restart_stage(run)
        for run in self.stage_runs:
            if run.status == _StageRun.WAITING and all(
                    self._run_of(p).status == _StageRun.DONE
                    for p in run.pstage.stage.parents):
                self._start_stage(run)

    def _restart_stage(self, run: _StageRun) -> None:
        root_name = run.pstage.root_chain.terminal.name
        for idx in range(run.pstage.root_chain.parallelism):
            self.outputs.pop((root_name, idx), None)
        run.local_outputs.clear()
        if self._replicas:
            stale = [k for k in self._replicas if k[0] == run.pstage.index]
            for k in stale:
                del self._replicas[k]
        run.status = _StageRun.WAITING
        for task in run.tasks.values():
            if task.status != TaskState.PENDING:
                executor = task.executor
                held_slot = task.status in (TaskState.FETCHING,
                                            TaskState.COMPUTING)
                self._trace_relaunch(task, "master-restart")
                task.reset()
                if held_slot and executor is not None and executor.alive:
                    executor.release_slot()
        for root in run.root_tasks:
            self._trace_relaunch(root, "master-restart")
            root.reset()
        if all(self._run_of(p).status == _StageRun.DONE
               for p in run.pstage.stage.parents):
            self._start_stage(run)
