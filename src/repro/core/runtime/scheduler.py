"""Task scheduling across transient executors (§3.2.3).

The task scheduler assigns pending transient tasks to executors with free
task slots. The policy is pluggable; the default mirrors the paper: pick an
executor that has the task's input data cached (cache-aware), otherwise
round-robin over executors with free slots, otherwise wait for a slot.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional, Protocol

from repro.errors import SchedulingError
from repro.obs.events import TaskQueued

if TYPE_CHECKING:  # avoid a circular import; used in annotations only
    from repro.cluster.events import Simulator
    from repro.engines.base import SimExecutor
    from repro.obs.tracer import Tracer


class SchedulableTask(Protocol):
    """What the scheduler needs to know about a task."""

    cache_keys: set          # input keys that may be cached on executors

    def assign(self, executor: "SimExecutor") -> None: ...


class SchedulingPolicy:
    """Chooses an executor (with a free slot) for a task."""

    def pick(self, task: SchedulableTask,
             candidates: list[SimExecutor]) -> Optional[SimExecutor]:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Plain round-robin over executors with free slots."""

    def __init__(self) -> None:
        self._cursor = 0

    def pick(self, task: SchedulableTask,
             candidates: list[SimExecutor]) -> Optional[SimExecutor]:
        if not candidates:
            return None
        self._cursor = (self._cursor + 1) % len(candidates)
        return candidates[self._cursor]


class CacheAwarePolicy(SchedulingPolicy):
    """Prefer executors holding the task's inputs in cache (§3.2.7),
    falling back to round-robin."""

    def __init__(self) -> None:
        self._fallback = RoundRobinPolicy()

    def pick(self, task: SchedulableTask,
             candidates: list[SimExecutor]) -> Optional[SimExecutor]:
        if not candidates:
            return None
        best: Optional[SimExecutor] = None
        best_hits = 0
        for executor in candidates:
            if executor.cache is None or not task.cache_keys:
                continue
            hits = sum(1 for key in task.cache_keys if key in executor.cache)
            if hits > best_hits:
                best, best_hits = executor, hits
        if best is not None:
            return best
        return self._fallback.pick(task, candidates)


class LifetimeAwarePolicy(SchedulingPolicy):
    """§6 extension: place heavy tasks on longer-lived resource classes.

    With heterogeneous transient pools, a task whose static compute weight
    exceeds ``heavy_threshold`` goes to the free executor whose pool has
    the longest *estimated* lifetime; lighter tasks go to the shortest-
    lived ones, keeping the durable capacity available for expensive work.
    Ties and cache affinity fall back to the cache-aware policy.
    """

    def __init__(self, heavy_threshold: float = 2.0) -> None:
        self.heavy_threshold = heavy_threshold
        self._fallback = CacheAwarePolicy()

    def pick(self, task: SchedulableTask,
             candidates: list["SimExecutor"]) -> Optional["SimExecutor"]:
        if not candidates:
            return None
        weight = getattr(task, "weight", 0.0)
        lifetimes = {e.container.expected_lifetime for e in candidates}
        if len(lifetimes) <= 1:
            # Homogeneous pool in view: nothing to discriminate on.
            return self._fallback.pick(task, candidates)
        if weight > self.heavy_threshold:
            target = max(candidates,
                         key=lambda e: e.container.expected_lifetime)
        else:
            target = min(candidates,
                         key=lambda e: e.container.expected_lifetime)
        return target


class TaskScheduler:
    """Queue of pending transient tasks plus the executor pool."""

    def __init__(self, policy: Optional[SchedulingPolicy] = None) -> None:
        self._policy = policy or CacheAwarePolicy()
        self._executors: dict[int, SimExecutor] = {}
        self._queue: deque = deque()
        self._tracer: "Optional[Tracer]" = None
        self._sim: "Optional[Simulator]" = None

    def attach_tracer(self, tracer: "Optional[Tracer]",
                      sim: "Simulator") -> None:
        """Emit :class:`~repro.obs.events.TaskQueued` events (queue-depth
        visibility) on ``tracer``, timestamped with ``sim`` time."""
        self._tracer = tracer
        self._sim = sim

    # ------------------------------------------------------------------
    # executor pool

    def add_executor(self, executor: SimExecutor) -> None:
        if executor.executor_id in self._executors:
            raise SchedulingError(
                f"executor {executor.executor_id} registered twice")
        self._executors[executor.executor_id] = executor
        self.dispatch()

    def remove_executor(self, executor: SimExecutor) -> None:
        self._executors.pop(executor.executor_id, None)

    @property
    def executors(self) -> list[SimExecutor]:
        return list(self._executors.values())

    @property
    def pending_count(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # task flow

    def submit(self, task: SchedulableTask) -> None:
        """Enqueue a task; it is assigned as soon as a slot frees up."""
        self._queue.append(task)
        if self._tracer is not None:
            name, index = getattr(task, "key", ("?", -1))
            self._tracer.emit(TaskQueued(
                time=self._sim.now, task=name, index=index,
                attempt=getattr(task, "attempt", 0),
                queue_depth=len(self._queue)))
        self.dispatch()

    def slot_released(self) -> None:
        """Notify that some executor freed a slot."""
        self.dispatch()

    def dispatch(self) -> None:
        """Assign as many queued tasks as free slots allow."""
        while self._queue:
            candidates = [e for e in self._executors.values()
                          if e.alive and e.free_slots > 0]
            if not candidates:
                return
            task = self._queue.popleft()
            executor = self._policy.pick(task, candidates)
            if executor is None:
                self._queue.appendleft(task)
                return
            if not executor.acquire_slot():
                raise SchedulingError("policy picked a full executor")
            task.assign(executor)
