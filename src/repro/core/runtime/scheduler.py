"""Task scheduling across transient executors (§3.2.3).

The task scheduler assigns pending transient tasks to executors with free
task slots. The policy is pluggable; the default mirrors the paper: pick an
executor that has the task's input data cached (cache-aware), otherwise
round-robin over executors with free slots, otherwise wait for a slot.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional, Protocol

from repro.core.runtime.cache import CacheIndex
from repro.errors import SchedulingError
from repro.obs.events import TaskQueued

if TYPE_CHECKING:  # avoid a circular import; used in annotations only
    from repro.cluster.events import Simulator
    from repro.engines.base import SimExecutor
    from repro.obs.tracer import Tracer


class SchedulableTask(Protocol):
    """What the scheduler needs to know about a task."""

    cache_keys: set          # input keys that may be cached on executors

    def assign(self, executor: "SimExecutor") -> None: ...


class SchedulingPolicy:
    """Chooses an executor (with a free slot) for a task."""

    def pick(self, task: SchedulableTask,
             candidates: list[SimExecutor]) -> Optional[SimExecutor]:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Plain round-robin over executors with free slots."""

    def __init__(self) -> None:
        self._cursor = 0

    def pick(self, task: SchedulableTask,
             candidates: list[SimExecutor]) -> Optional[SimExecutor]:
        if not candidates:
            return None
        self._cursor = (self._cursor + 1) % len(candidates)
        return candidates[self._cursor]


class CacheAwarePolicy(SchedulingPolicy):
    """Prefer executors holding the task's inputs in cache (§3.2.7),
    falling back to round-robin.

    When a :class:`~repro.core.runtime.cache.CacheIndex` is attached (the
    scheduler wires its own in), a task whose keys no registered cache
    holds skips the candidate scan entirely — the common cold case at
    scale — without changing which executor a scan would have chosen.
    """

    def __init__(self) -> None:
        self._fallback = RoundRobinPolicy()
        self.index = None

    def pick(self, task: SchedulableTask,
             candidates: list[SimExecutor]) -> Optional[SimExecutor]:
        if not candidates:
            return None
        cache_keys = task.cache_keys
        if cache_keys:
            index = self.index
            if index is not None \
                    and not any(index.holders(k) for k in cache_keys):
                return self._fallback.pick(task, candidates)
            best: Optional[SimExecutor] = None
            best_hits = 0
            max_hits = len(cache_keys)
            for executor in candidates:
                cache = executor.cache
                if cache is None:
                    continue
                entries = cache._entries
                hits = 0
                for key in cache_keys:
                    if key in entries:
                        hits += 1
                if hits > best_hits:
                    best, best_hits = executor, hits
                    if hits == max_hits:
                        break  # nothing later can strictly beat a full hit
            if best is not None:
                return best
        return self._fallback.pick(task, candidates)


class LifetimeAwarePolicy(SchedulingPolicy):
    """§6 extension: place heavy tasks on longer-lived resource classes.

    With heterogeneous transient pools, a task whose static compute weight
    exceeds ``heavy_threshold`` goes to the free executor whose pool has
    the longest *estimated* lifetime; lighter tasks go to the shortest-
    lived ones, keeping the durable capacity available for expensive work.
    Ties and cache affinity fall back to the cache-aware policy.
    """

    def __init__(self, heavy_threshold: float = 2.0) -> None:
        self.heavy_threshold = heavy_threshold
        self._fallback = CacheAwarePolicy()

    def pick(self, task: SchedulableTask,
             candidates: list["SimExecutor"]) -> Optional["SimExecutor"]:
        if not candidates:
            return None
        weight = getattr(task, "weight", 0.0)
        lifetimes = {e.container.expected_lifetime for e in candidates}
        if len(lifetimes) <= 1:
            # Homogeneous pool in view: nothing to discriminate on.
            return self._fallback.pick(task, candidates)
        if weight > self.heavy_threshold:
            target = max(candidates,
                         key=lambda e: e.container.expected_lifetime)
        else:
            target = min(candidates,
                         key=lambda e: e.container.expected_lifetime)
        return target


class RiskAwarePolicy(SchedulingPolicy):
    """Predictor-backed placement (the runtime half of ``--placement
    lifetime``).

    Where :class:`LifetimeAwarePolicy` compares static pool hints, this
    policy asks a :class:`~repro.predict.base.LifetimePredictor` for
    each candidate's *age-conditioned* mean residual lifetime. A task
    whose fused chain was assigned to a §6 resource class
    (``class_of``, from
    :attr:`~repro.core.compiler.pipeline.CompiledJob.class_of`) is
    first narrowed to executors of that pool; within the group, heavy
    tasks go to the executor predicted to survive longest and light
    tasks to the shortest-lived, falling back to cache-aware placement
    when predictions cannot discriminate.
    """

    def __init__(self, predictor, heavy_threshold: float = 2.0,
                 class_of: Optional[dict] = None) -> None:
        self.predictor = predictor
        self.heavy_threshold = heavy_threshold
        self.class_of = class_of or {}
        self._fallback = CacheAwarePolicy()
        #: Simulation clock, wired by :meth:`TaskScheduler.attach_tracer`
        #: so age queries use real simulated time.
        self.sim: "Optional[Simulator]" = None

    def _class_for(self, chain_name: str) -> Optional[str]:
        cls = self.class_of.get(chain_name)
        if cls is None and "+" in chain_name:
            # Fused chains are "+"-joined operator names; the terminal
            # operator's class stands for the chain.
            cls = self.class_of.get(chain_name.split("+")[-1])
        return cls

    def pick(self, task: SchedulableTask,
             candidates: list["SimExecutor"]) -> Optional["SimExecutor"]:
        if not candidates:
            return None
        now = self.sim.now if self.sim is not None else 0.0
        chain_name = getattr(task, "key", ("", -1))[0]
        wanted = self._class_for(chain_name)
        group = candidates
        if wanted is not None:
            matched = [e for e in candidates
                       if e.container.pool == wanted]
            if matched:
                group = matched
        remaining = {}
        per_class = getattr(self.predictor, "class_expected_remaining",
                            None)
        for executor in group:
            container = executor.container
            age = max(0.0, now - container.launched_at)
            if per_class is not None and container.pool is not None:
                try:
                    value = per_class(container.pool, age)
                except KeyError:
                    value = self.predictor.expected_remaining(age)
            else:
                value = self.predictor.expected_remaining(age)
            remaining[executor.executor_id] = value
        if len(set(remaining.values())) <= 1 and group is candidates:
            # Predictions cannot discriminate: keep cache affinity.
            return self._fallback.pick(task, group)
        weight = getattr(task, "weight", 0.0)
        if weight > self.heavy_threshold:
            return max(group,
                       key=lambda e: (remaining[e.executor_id],
                                      -e.executor_id))
        return min(group,
                   key=lambda e: (remaining[e.executor_id], e.executor_id))


class TaskScheduler:
    """Queue of pending transient tasks plus the executor pool."""

    def __init__(self, policy: Optional[SchedulingPolicy] = None) -> None:
        self._policy = policy or CacheAwarePolicy()
        #: Reverse key -> holders index shared by the executor caches the
        #: masters attach (see :class:`CacheIndex`); wired into every
        #: cache-aware policy in the fallback chain.
        self.cache_index = CacheIndex()
        chain = self._policy
        while chain is not None:
            if isinstance(chain, CacheAwarePolicy):
                chain.index = self.cache_index
            chain = getattr(chain, "_fallback", None)
        self._executors: dict[int, SimExecutor] = {}
        self._queue: deque = deque()
        self._tracer: "Optional[Tracer]" = None
        self._sim: "Optional[Simulator]" = None
        # Superset of executor ids that may have a free slot, maintained by
        # add_executor and the SimExecutor.on_free hook; stale ids (full,
        # dead, removed) are dropped lazily inside dispatch(). Container
        # ids are globally monotone and executors are registered in launch
        # order, so iterating this set sorted reproduces the registration
        # order a full pool scan would have used — if an id ever arrives
        # out of order we fall back to the scan (_ordered flag).
        self._free: dict[int, None] = {}
        self._ordered = True
        self._last_id = -1
        # Bumped on every pool/slot mutation. The candidate list is cached
        # across dispatch() calls and rebuilt only when the epoch moved (a
        # freed slot, an executor arrival/departure, or an acquired slot
        # invalidated it) — a burst of submissions within one event pays
        # for one pool scan, not one per task.
        self._epoch = 0
        self._cand_cache: Optional[list[SimExecutor]] = None
        self._cand_epoch = -1

    def attach_tracer(self, tracer: "Optional[Tracer]",
                      sim: "Simulator") -> None:
        """Emit :class:`~repro.obs.events.TaskQueued` events (queue-depth
        visibility) on ``tracer``, timestamped with ``sim`` time. Also
        hands the clock to any policy in the fallback chain that wants
        one (a declared ``sim`` attribute, e.g.
        :class:`RiskAwarePolicy` age queries)."""
        self._tracer = tracer
        self._sim = sim
        chain: Optional[SchedulingPolicy] = self._policy
        while chain is not None:
            if hasattr(chain, "sim"):
                chain.sim = sim
            chain = getattr(chain, "_fallback", None)

    # ------------------------------------------------------------------
    # executor pool

    def add_executor(self, executor: SimExecutor) -> None:
        executor_id = executor.executor_id
        if executor_id in self._executors:
            raise SchedulingError(
                f"executor {executor_id} registered twice")
        self._executors[executor_id] = executor
        if executor.cache is not None:
            executor.cache.attach_index(self.cache_index, executor_id)
        if executor_id < self._last_id:
            self._ordered = False
        self._last_id = executor_id
        executor.on_free = self._note_free
        self._free[executor_id] = None
        self._epoch += 1
        self.dispatch()

    def remove_executor(self, executor: SimExecutor) -> None:
        if self._executors.pop(executor.executor_id, None) is not None:
            executor.on_free = None
            if executor.cache is not None:
                # Its entries can no longer attract tasks; keep the
                # reverse index describing only pool members.
                executor.cache.detach_index()
        self._free.pop(executor.executor_id, None)
        self._epoch += 1

    def executor_for(self, executor_id: int) -> Optional[SimExecutor]:
        """O(1) pool lookup by id (= container id)."""
        return self._executors.get(executor_id)

    def _note_free(self, executor: SimExecutor) -> None:
        self._free[executor.executor_id] = None
        self._epoch += 1

    @property
    def executors(self) -> list[SimExecutor]:
        return list(self._executors.values())

    @property
    def pending_count(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # task flow

    def submit(self, task: SchedulableTask) -> None:
        """Enqueue a task; it is assigned as soon as a slot frees up."""
        self._queue.append(task)
        if self._tracer is not None:
            name, index = getattr(task, "key", ("?", -1))
            self._tracer.emit(TaskQueued(
                time=self._sim.now, task=name, index=index,
                attempt=getattr(task, "attempt", 0),
                queue_depth=len(self._queue)))
        self.dispatch()

    def slot_released(self) -> None:
        """Notify that some executor freed a slot."""
        self.dispatch()

    def dispatch(self) -> None:
        """Assign as many queued tasks as free slots allow.

        The candidate list is cached on the instance and reused while the
        epoch stands still: a consumed last slot prunes the picked
        executor in place, and any other pool mutation — a freed slot, an
        executor arriving or leaving, a reentrant dispatch triggered by
        the assignment callback — bumps ``_epoch`` and forces a rebuild.
        The pruned/rebuilt list is element-for-element what a fresh scan
        would produce, so policy decisions (and parity) are unchanged;
        every executor-death path removes the executor from the pool
        (bumping the epoch) before any dispatch can consult the cache.
        """
        queue = self._queue
        while queue:
            candidates = self._candidates()
            if not candidates:
                return
            task = queue.popleft()
            executor = self._policy.pick(task, candidates)
            if executor is None:
                queue.appendleft(task)
                return
            if not executor.acquire_slot():
                raise SchedulingError("policy picked a full executor")
            self._epoch += 1
            if executor.free_slots == 0:
                candidates.remove(executor)
            # The pruned list is still exactly what a rebuild would give.
            self._cand_epoch = self._epoch
            task.assign(executor)

    def _candidates(self) -> list[SimExecutor]:
        if self._cand_epoch == self._epoch:
            return self._cand_cache
        if not self._ordered:
            candidates = [e for e in self._executors.values()
                          if e.alive and e.free_slots > 0]
            self._cand_cache = candidates
            self._cand_epoch = self._epoch
            return candidates
        executors = self._executors
        free = self._free
        candidates = []
        stale = None
        for executor_id in sorted(free):
            executor = executors.get(executor_id)
            if executor is not None and executor.alive \
                    and executor.free_slots > 0:
                candidates.append(executor)
            else:
                if stale is None:
                    stale = []
                stale.append(executor_id)
        if stale is not None:
            for executor_id in stale:
                del free[executor_id]
        self._cand_cache = candidates
        self._cand_epoch = self._epoch
        return candidates
