"""Execution plan generation (§3.2.2).

Converts the compiler's DAG of Pado Stages into physical structure: within
each stage, neighbouring operators on the same container type are fused into
chains, chains expand into parallel tasks, and logical edges become data
movements — boundary edges are pulls from parent stages' reserved outputs or
the input store, intra-stage edges into the reserved root are eviction-
escaping pushes, and (rare) transient-to-transient intra-stage edges are
local pulls between executors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler.fusion import FusedOperator, fuse_operators
from repro.core.compiler.partitioning import Stage
from repro.core.compiler.pipeline import CompiledJob
from repro.dataflow.dag import Edge, Placement
from repro.errors import CompilerError


@dataclass
class InterChainEdge:
    """A logical edge between two fused chains of the same stage."""

    producer: FusedOperator
    edge: Edge                 # producer.terminal -> consumer.head
    consumer: FusedOperator


class PhysicalStage:
    """One stage's physical structure."""

    def __init__(self, index: int, stage: Stage,
                 chains: list[FusedOperator]) -> None:
        self.index = index
        self.stage = stage
        self.chains = chains
        roots = [c for c in chains if c.contains(stage.root_op)]
        if len(roots) != 1:
            raise CompilerError(
                f"stage {stage.stage_id}: root operator belongs to "
                f"{len(roots)} chains")
        self.root_chain = roots[0]
        if self.root_chain.placement is Placement.TRANSIENT:
            # Transient-sink stage: the root chain itself runs on transient
            # executors and writes to the job sink.
            self.transient_chains = list(chains)
        else:
            self.transient_chains = [c for c in chains
                                     if c is not self.root_chain]
        member_of = {op.name: c for c in chains for op in c.ops}
        self.inter_chain_edges: list[InterChainEdge] = []
        for chain in chains:
            for edge in chain.external_in_edges():
                producer = member_of.get(edge.src.name)
                if producer is not None:
                    self.inter_chain_edges.append(
                        InterChainEdge(producer=producer, edge=edge,
                                       consumer=chain))

    @property
    def has_reserved_root(self) -> bool:
        return self.root_chain.placement is Placement.RESERVED

    def boundary_edges(self, chain: FusedOperator) -> list[Edge]:
        """Edges into ``chain`` from reserved operators of parent stages."""
        member_names = {op.name for c in self.chains for op in c.ops}
        return [e for e in chain.external_in_edges()
                if e.src.name not in member_names]

    def consumers_of(self, chain: FusedOperator) -> list[InterChainEdge]:
        return [ice for ice in self.inter_chain_edges
                if ice.producer is chain]

    def producers_into(self, chain: FusedOperator) -> list[InterChainEdge]:
        return [ice for ice in self.inter_chain_edges
                if ice.consumer is chain]

    @property
    def task_count(self) -> int:
        """Physical tasks this stage launches in a failure-free run."""
        total = self.root_chain.parallelism if self.has_reserved_root else 0
        total += sum(c.parallelism for c in self.transient_chains)
        return total

    def __repr__(self) -> str:
        names = "; ".join(c.name for c in self.chains)
        return f"<PhysicalStage {self.index} [{names}]>"


class ExecutionPlan:
    """Physical plan for a whole job: stages in topological order."""

    def __init__(self, compiled: CompiledJob,
                 stages: list[PhysicalStage]) -> None:
        self.compiled = compiled
        self.stages = stages
        self._by_root_op: dict[str, PhysicalStage] = {}
        for pstage in stages:
            if pstage.has_reserved_root:
                self._by_root_op[pstage.stage.root_op.name] = pstage

    def stage_of_reserved_op(self, op_name: str) -> PhysicalStage:
        """The stage whose reserved root is ``op_name`` (boundary fetches)."""
        try:
            return self._by_root_op[op_name]
        except KeyError:
            raise CompilerError(
                f"no stage rooted at reserved operator {op_name!r}") from None

    def parent_indices(self, pstage: PhysicalStage) -> list[int]:
        order = {id(ps.stage): ps.index for ps in self.stages}
        return sorted(order[id(parent)] for parent in pstage.stage.parents)

    @property
    def total_tasks(self) -> int:
        return sum(ps.task_count for ps in self.stages)


def build_execution_plan(compiled: CompiledJob) -> ExecutionPlan:
    """Fuse each stage's operators and index the stages topologically."""
    stages = []
    for index, stage in enumerate(compiled.stage_dag.topological()):
        chains = fuse_operators(compiled.logical, stage.operators)
        stages.append(PhysicalStage(index=index, stage=stage, chains=chains))
    return ExecutionPlan(compiled=compiled, stages=stages)
