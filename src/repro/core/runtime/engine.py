"""The Pado engine facade: compile a program, run it on the simulator."""

from __future__ import annotations

from typing import Optional

from repro.core.compiler.pipeline import compile_program
from repro.core.runtime.master import PadoMaster, PadoRuntimeConfig
from repro.core.runtime.plan import build_execution_plan
from repro.engines.base import (ClusterConfig, EngineBase, JobResult,
                                Program, SimContext)


class PadoEngine(EngineBase):
    """Pado: compiler-placed execution over transient + reserved containers.

    Example
    -------
    >>> engine = PadoEngine()
    >>> result = engine.run(program, ClusterConfig(num_reserved=5,
    ...                                            num_transient=40))
    >>> result.jct_minutes  # doctest: +SKIP
    """

    name = "pado"

    def __init__(self, config: Optional[PadoRuntimeConfig] = None) -> None:
        self.config = config or PadoRuntimeConfig()

    def _start(self, ctx: SimContext, program: Program) -> PadoMaster:
        compiled = compile_program(program.dag)
        plan = build_execution_plan(compiled)
        master = PadoMaster(ctx, program, plan, self.config)
        master.start()
        return master

    def _is_done(self, master: PadoMaster) -> bool:
        return master.completed

    def _finish(self, ctx: SimContext, program: Program, master: PadoMaster,
                time_limit: Optional[float]) -> JobResult:
        completed = master.completed
        if completed:
            jct = master.jct
        else:
            jct = time_limit if time_limit is not None else ctx.sim.now
        outputs = master.job_outputs if program.is_real() else None
        return JobResult(
            engine=self.name,
            workload=program.name,
            completed=completed,
            jct_seconds=float(jct if jct is not None else ctx.sim.now),
            original_tasks=master.plan.total_tasks,
            launched_tasks=ctx.tasks_launched,
            evictions=ctx.rm.evictions,
            bytes_input_read=ctx.input_store.bytes_read,
            bytes_shuffled=ctx.bytes_shuffled,
            bytes_pushed=ctx.bytes_pushed,
            bytes_checkpointed=0,
            outputs=outputs,
            extras={
                "commits": master.commit_count,
                "reserved_repairs": master.reserved_repairs,
                "stages": len(master.stage_runs),
            },
        )
