"""The Pado engine facade: compile a program, run it on the simulator."""

from __future__ import annotations

from typing import Optional

from repro.core.compiler.pipeline import compile_program
from repro.core.runtime.master import PadoMaster, PadoRuntimeConfig
from repro.core.runtime.plan import build_execution_plan
from repro.engines.base import EngineBase, Program, SimContext


class PadoEngine(EngineBase):
    """Pado: compiler-placed execution over transient + reserved containers.

    Example
    -------
    >>> engine = PadoEngine()
    >>> result = engine.run(program, ClusterConfig(num_reserved=5,
    ...                                            num_transient=40))
    >>> result.jct_minutes  # doctest: +SKIP
    """

    name = "pado"

    def __init__(self, config: Optional[PadoRuntimeConfig] = None) -> None:
        self.config = config or PadoRuntimeConfig()

    def _start(self, ctx: SimContext, program: Program) -> PadoMaster:
        compiled = compile_program(program.dag)
        plan = build_execution_plan(compiled)
        master = PadoMaster(ctx, program, plan, self.config)
        master.start()
        return master
