"""The Pado engine facade: compile a program, run it on the simulator."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.compiler.pipeline import compile_program
from repro.core.runtime.master import PadoMaster, PadoRuntimeConfig
from repro.core.runtime.plan import build_execution_plan
from repro.engines.base import EngineBase, Program, SimContext


class PadoEngine(EngineBase):
    """Pado: compiler-placed execution over transient + reserved containers.

    With the default config this is the paper's engine: Algorithm 1
    placement, no predictor, no proactive pushes. Setting
    ``placement="lifetime"`` (plus optionally ``predictor=`` and
    ``proactive_push=True``) turns on the §6 prediction stack — the
    compiler spreads operators over predictor-derived resource classes, a
    :class:`~repro.core.runtime.scheduler.RiskAwarePolicy` matches tasks
    to pools at schedule time, and the master re-replicates at-risk local
    outputs ahead of predicted evictions (docs/PREDICTION.md).

    Example
    -------
    >>> engine = PadoEngine()
    >>> result = engine.run(program, ClusterConfig(num_reserved=5,
    ...                                            num_transient=40))
    >>> result.jct_minutes  # doctest: +SKIP
    """

    name = "pado"

    def __init__(self, config: Optional[PadoRuntimeConfig] = None) -> None:
        self.config = config or PadoRuntimeConfig()

    def _start(self, ctx: SimContext, program: Program) -> PadoMaster:
        config = self.config
        predictor = None
        if (config.placement == "lifetime" or config.predictor is not None
                or config.proactive_push):
            from repro.predict import make_predictor
            predictor = make_predictor(
                config.predictor or "static", ctx.cluster.lifetime_model(),
                pools=ctx.cluster.transient_pools,
                horizon=config.push_horizon)
            ctx.rm.attach_predictor(predictor)
        if config.placement == "lifetime":
            from repro.core.compiler.lifetime_placement import \
                classes_from_pools
            classes = classes_from_pools(ctx.cluster.transient_pools,
                                         predictor)
            compiled = compile_program(program.dag, placement="lifetime",
                                       classes=classes)
            if config.scheduling_policy is None:
                from repro.core.runtime.scheduler import RiskAwarePolicy
                config = dataclasses.replace(
                    config, scheduling_policy=RiskAwarePolicy(
                        predictor, class_of=compiled.class_of))
        else:
            compiled = compile_program(program.dag,
                                       placement=config.placement)
        plan = build_execution_plan(compiled)
        master = PadoMaster(ctx, program, plan, config)
        if config.proactive_push:
            master.enable_proactive_push(predictor)
        master.start()
        return master
