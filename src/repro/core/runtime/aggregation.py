"""Task-output partial aggregation (§3.2.7).

When an operator's aggregation logic is commutative and associative, outputs
of tasks running on the same transient executor and destined for the same
reserved receiver are merged before transmission. This cuts both the bytes
the few reserved executors must absorb (e.g. 303 partially-aggregated
gradient vectors instead of 550 in MLR, §5.2.2) and the state they maintain.

Because buffered data lingers on the eviction-prone executor, each buffer
escapes once it covers ``max_tasks`` task outputs or after ``max_delay``
seconds, whichever comes first — the paper's upper limits on time and number
of aggregated tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from repro.cluster.events import EventHandle, Simulator
from repro.dataflow.functions import CombineFn


@dataclass
class Contribution:
    """One task's routed output share destined for one receiver."""

    producer_key: Hashable      # (chain name, task index)
    size_bytes: float
    payload: Optional[list]


@dataclass
class FlushBatch:
    """A merged batch handed to the transfer layer."""

    contributions: list[Contribution]
    merged_size_bytes: float
    merged_payload: Optional[list]


def merge_payloads(combiner: CombineFn, payloads: list[list],
                   keyed: bool) -> list:
    """Merge real record payloads with the combiner.

    ``keyed`` selects per-key merging (many-to-many shuffle data, records
    are ``(key, value)``) versus a single global accumulator (many-to-one
    aggregation). Both rely on the combiner's associativity, so partially
    merged values remain valid inputs for the downstream operator.
    """
    if keyed:
        groups: dict[Any, Any] = {}
        for records in payloads:
            for key, value in records:
                if key in groups:
                    groups[key] = combiner.merge(groups[key], value)
                else:
                    groups[key] = value
        return sorted(groups.items(), key=lambda kv: repr(kv[0]))
    acc: Any = None
    first = True
    for records in payloads:
        for value in records:
            acc = value if first else combiner.merge(acc, value)
            first = False
    return [] if first else [acc]


class AggregationBuffer:
    """Per-(executor, receiver) buffer of outbound contributions."""

    def __init__(self, sim: Simulator, combiner: CombineFn, keyed: bool,
                 max_tasks: int, max_delay: float,
                 flush_fn: Callable[[FlushBatch], None]) -> None:
        if max_tasks < 1:
            raise ValueError("max_tasks must be at least 1")
        if max_delay <= 0:
            raise ValueError("max_delay must be positive")
        self._sim = sim
        self._combiner = combiner
        self._keyed = keyed
        self._max_tasks = max_tasks
        self._max_delay = max_delay
        self._flush_fn = flush_fn
        self._pending: list[Contribution] = []
        self._timer: Optional[EventHandle] = None
        self.flushes = 0

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def add(self, contribution: Contribution) -> None:
        """Buffer one contribution; may trigger an immediate flush."""
        self._pending.append(contribution)
        if len(self._pending) >= self._max_tasks:
            self.flush()
        elif self._timer is None:
            self._timer = self._sim.schedule(self._max_delay,
                                             self._on_timer)

    def flush(self) -> None:
        """Merge and emit everything buffered so far."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        contributions = self._pending
        self._pending = []
        sizes = [c.size_bytes for c in contributions]
        merged_size = float(self._combiner.merged_size_bytes(sizes))
        merged_payload: Optional[list] = None
        if all(c.payload is not None for c in contributions):
            merged_payload = merge_payloads(
                self._combiner, [c.payload for c in contributions],
                self._keyed)
        self.flushes += 1
        self._flush_fn(FlushBatch(contributions=contributions,
                                  merged_size_bytes=merged_size,
                                  merged_payload=merged_payload))

    def discard(self) -> list[Contribution]:
        """Drop buffered data (executor evicted); returns what was lost."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        lost = self._pending
        self._pending = []
        return lost

    def _on_timer(self) -> None:
        self._timer = None
        self.flush()
