"""Task-input caching (§3.2.7).

Tasks of operators the user marks ``cacheable`` keep their fetched input data
in executor memory; when the cache fills, entries are discarded by LRU. The
scheduler's cache-aware policy then routes tasks to executors that already
hold their inputs, so e.g. MLR's model is pushed to each transient executor
once per iteration instead of once per task.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional


class LruCache:
    """Byte-bounded LRU cache of fetched task inputs."""

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Hashable, tuple[float, Any]]" = \
            OrderedDict()
        self._used = 0.0
        self.hits = 0
        self.misses = 0

    @property
    def used_bytes(self) -> float:
        return self._used

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[tuple[float, Any]]:
        """Return ``(size, payload)`` and refresh recency, or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, size_bytes: float, payload: Any) -> None:
        """Insert an entry, evicting LRU entries to make room.

        Entries larger than the whole cache are not admitted.
        """
        if size_bytes > self.capacity_bytes:
            return
        if key in self._entries:
            old_size, _ = self._entries.pop(key)
            self._used -= old_size
        while self._used + size_bytes > self.capacity_bytes and self._entries:
            _, (evicted_size, _) = self._entries.popitem(last=False)
            self._used -= evicted_size
        self._entries[key] = (size_bytes, payload)
        self._used += size_bytes

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0.0

    def __len__(self) -> int:
        return len(self._entries)
