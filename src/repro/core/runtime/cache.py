"""Task-input caching (§3.2.7).

Tasks of operators the user marks ``cacheable`` keep their fetched input data
in executor memory; when the cache fills, entries are discarded by LRU. The
scheduler's cache-aware policy then routes tasks to executors that already
hold their inputs, so e.g. MLR's model is pushed to each transient executor
once per iteration instead of once per task.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional


class CacheIndex:
    """Reverse index: cache key -> executor ids currently holding it.

    The scheduler's cache-aware policy consults this before scanning the
    candidate list — at fig9xl scale a cold task would otherwise probe
    thousands of executor caches per pick just to learn nobody has its
    input. Caches registered via :meth:`LruCache.attach_index` keep the
    index in step on every insert and eviction; the scheduler drops an
    executor's keys when it leaves the pool.
    """

    __slots__ = ("_owners",)

    def __init__(self) -> None:
        #: key -> {executor_id: None} (a dict-as-ordered-set).
        self._owners: dict[Hashable, dict[int, None]] = {}

    def add(self, key: Hashable, owner: int) -> None:
        bucket = self._owners.get(key)
        if bucket is None:
            self._owners[key] = {owner: None}
        else:
            bucket[owner] = None

    def discard(self, key: Hashable, owner: int) -> None:
        bucket = self._owners.get(key)
        if bucket is not None:
            bucket.pop(owner, None)
            if not bucket:
                del self._owners[key]

    def holders(self, key: Hashable) -> int:
        """How many attached caches hold ``key`` right now."""
        bucket = self._owners.get(key)
        return len(bucket) if bucket else 0


class LruCache:
    """Byte-bounded LRU cache of fetched task inputs."""

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Hashable, tuple[float, Any]]" = \
            OrderedDict()
        self._used = 0.0
        self.hits = 0
        self.misses = 0
        self._index: Optional[CacheIndex] = None
        self._owner = -1

    def attach_index(self, index: CacheIndex, owner: int) -> None:
        """Mirror this cache's key set into ``index`` under id ``owner``."""
        self._index = index
        self._owner = owner
        for key in self._entries:
            index.add(key, owner)

    def detach_index(self) -> None:
        """Remove this cache's keys from the index (executor left the
        pool; its entries can no longer attract tasks)."""
        index = self._index
        if index is not None:
            for key in self._entries:
                index.discard(key, self._owner)
            self._index = None

    @property
    def used_bytes(self) -> float:
        return self._used

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[tuple[float, Any]]:
        """Return ``(size, payload)`` and refresh recency, or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, size_bytes: float, payload: Any) -> None:
        """Insert an entry, evicting LRU entries to make room.

        Entries larger than the whole cache are not admitted.
        """
        if size_bytes > self.capacity_bytes:
            return
        index = self._index
        if key in self._entries:
            old_size, _ = self._entries.pop(key)
            self._used -= old_size
        elif index is not None:
            index.add(key, self._owner)
        while self._used + size_bytes > self.capacity_bytes and self._entries:
            evicted_key, (evicted_size, _) = self._entries.popitem(last=False)
            self._used -= evicted_size
            if index is not None:
                index.discard(evicted_key, self._owner)
        self._entries[key] = (size_bytes, payload)
        self._used += size_bytes

    def clear(self) -> None:
        if self._index is not None:
            for key in self._entries:
                self._index.discard(key, self._owner)
        self._entries.clear()
        self._used = 0.0

    def __len__(self) -> int:
        return len(self._entries)
