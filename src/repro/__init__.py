"""Reproduction of *Pado: A Data Processing Engine for Harnessing Transient
Resources in Datacenters* (Yang et al., EuroSys 2017).

Public API tour
---------------
* build dataflow programs with :class:`repro.dataflow.Pipeline` (or the raw
  :class:`repro.dataflow.LogicalDAG`);
* compile them with :func:`repro.core.compile_program` (Algorithms 1 & 2);
* run them with :class:`repro.PadoEngine`, :class:`repro.SparkEngine`, or
  :class:`repro.SparkCheckpointEngine` on a :class:`repro.ClusterConfig`
  whose eviction regime comes from :class:`repro.EvictionRate` or the
  Google-trace analysis in :mod:`repro.trace`;
* regenerate every table and figure of the paper via
  :mod:`repro.bench.experiments`.
"""

from repro.core.compiler import CompiledJob, compile_program
from repro.core.runtime import PadoEngine, PadoRuntimeConfig
from repro.dataflow import (DependencyType, LocalRunner, LogicalDAG, OpCost,
                            Operator, Pipeline, Placement, SourceKind)
from repro.engines import (ClusterConfig, JobResult, Program,
                           SparkCheckpointEngine, SparkEngine)
from repro.errors import ReproError
from repro.trace import EvictionRate

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig", "CompiledJob", "DependencyType", "EvictionRate",
    "JobResult", "LocalRunner", "LogicalDAG", "OpCost", "Operator",
    "PadoEngine", "PadoRuntimeConfig", "Pipeline", "Placement", "Program",
    "ReproError", "SourceKind", "SparkCheckpointEngine", "SparkEngine",
    "__version__", "compile_program",
]
