"""Job-completion-time distributions for multi-tenant runs.

Single-job experiments report one JCT per configuration; the multi-tenant
cluster (:mod:`repro.cluster.tenancy`) produces a *distribution* of JCTs
per tenant, and the quantities operators actually watch are its tail
(p99) and how much of it is queueing delay rather than run time. This
module reduces a run's :class:`~repro.cluster.tenancy.JobRecord` list to
those summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class JCTStats:
    """Summary of one group of jobs (a tenant, or a whole run).

    All times are in seconds. ``mean_queue + mean_run == mean_jct`` by
    construction: a job's completion time decomposes exactly into the
    wait between arrival and dispatch plus its execution time.
    """

    count: int
    completed: int
    mean_jct: float
    p50_jct: float
    p99_jct: float
    max_jct: float
    mean_queue: float
    mean_run: float
    evictions: int
    waves_hit: int

    @property
    def completion_rate(self) -> float:
        return self.completed / self.count if self.count else 0.0


def jct_stats(records: Sequence) -> JCTStats:
    """Reduce finished :class:`~repro.cluster.tenancy.JobRecord` rows to a
    :class:`JCTStats`."""
    if not records:
        raise ValueError("need at least one job record")
    jcts = np.array([r.jct_seconds for r in records])
    return JCTStats(
        count=len(records),
        completed=sum(1 for r in records if r.completed),
        mean_jct=float(np.mean(jcts)),
        p50_jct=float(np.percentile(jcts, 50)),
        p99_jct=float(np.percentile(jcts, 99)),
        max_jct=float(np.max(jcts)),
        mean_queue=float(np.mean([r.queue_seconds for r in records])),
        mean_run=float(np.mean([r.run_seconds for r in records])),
        evictions=sum(r.evictions for r in records),
        waves_hit=sum(r.waves_hit for r in records),
    )


def jct_by_tenant(records: Sequence) -> dict[str, JCTStats]:
    """Per-tenant :class:`JCTStats`, plus an ``"all"`` aggregate row."""
    grouped: dict[str, list] = {}
    for record in records:
        grouped.setdefault(record.tenant, []).append(record)
    stats = {tenant: jct_stats(rows)
             for tenant, rows in sorted(grouped.items())}
    stats["all"] = jct_stats(list(records))
    return stats


def stats_to_dict(stats: JCTStats) -> dict:
    """JSON-ready form (committed in ``BENCH_multitenant.json``)."""
    return {
        "count": stats.count, "completed": stats.completed,
        "mean_jct_minutes": round(stats.mean_jct / 60.0, 3),
        "p50_jct_minutes": round(stats.p50_jct / 60.0, 3),
        "p99_jct_minutes": round(stats.p99_jct / 60.0, 3),
        "max_jct_minutes": round(stats.max_jct / 60.0, 3),
        "mean_queue_minutes": round(stats.mean_queue / 60.0, 3),
        "mean_run_minutes": round(stats.mean_run / 60.0, 3),
        "evictions": stats.evictions, "waves_hit": stats.waves_hit,
    }
