"""Datacenter-utilization accounting.

The paper's motivation is utilization: transient containers turn wasted
idle memory into throughput, but only if the engine doesn't burn the
harvested resources on recomputation. This module turns a
:class:`~repro.engines.base.JobResult` into the efficiency quantities that
argument rests on:

* how much reserved (expensive, dedicated) capacity the job held;
* how much harvested (free, transient) capacity it used;
* how much of the work was wasted on relaunched tasks;
* the effective datacenter gain: useful work done per reserved core-second.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engines.base import ClusterConfig, JobResult


@dataclass(frozen=True)
class EfficiencyReport:
    """Resource-time accounting for one job execution."""

    engine: str
    workload: str
    jct_seconds: float
    reserved_core_seconds: float
    transient_core_seconds: float
    wasted_work_ratio: float
    harvested_fraction: float
    useful_per_reserved_core_second: float

    @classmethod
    def from_result(cls, result: JobResult,
                    cluster: ClusterConfig) -> "EfficiencyReport":
        reserved_cs = (cluster.num_reserved * cluster.reserved_spec.cores
                       * result.jct_seconds)
        transient_cs = (cluster.num_transient
                        * cluster.transient_spec.cores
                        * result.jct_seconds)
        wasted = (result.relaunched_tasks / result.launched_tasks
                  if result.launched_tasks else 0.0)
        total_cs = reserved_cs + transient_cs
        harvested = transient_cs / total_cs if total_cs else 0.0
        useful_tasks = result.original_tasks if result.completed else 0
        per_reserved = useful_tasks / reserved_cs if reserved_cs else 0.0
        return cls(
            engine=result.engine,
            workload=result.workload,
            jct_seconds=result.jct_seconds,
            reserved_core_seconds=reserved_cs,
            transient_core_seconds=transient_cs,
            wasted_work_ratio=wasted,
            harvested_fraction=harvested,
            useful_per_reserved_core_second=per_reserved,
        )

    def as_row(self) -> tuple:
        return (self.engine, round(self.jct_seconds / 60.0, 1),
                f"{self.wasted_work_ratio:.0%}",
                f"{self.harvested_fraction:.0%}",
                round(self.useful_per_reserved_core_second * 3600.0, 2))


def compare_efficiency(results: list[JobResult],
                       cluster: ClusterConfig) -> list[EfficiencyReport]:
    """Efficiency reports for several engines on the same cluster, sorted
    by reserved-resource efficiency (best first)."""
    reports = [EfficiencyReport.from_result(r, cluster) for r in results]
    return sorted(reports,
                  key=lambda rep: -rep.useful_per_reserved_core_second)
