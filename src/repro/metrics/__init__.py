"""Job metrics beyond raw JCT: datacenter-utilization accounting."""

from repro.metrics.utilization import EfficiencyReport, compare_efficiency

__all__ = ["EfficiencyReport", "compare_efficiency"]
