"""Job metrics beyond raw JCT: datacenter-utilization accounting and
multi-tenant JCT distributions."""

from repro.metrics.jct import (JCTStats, jct_by_tenant, jct_stats,
                               stats_to_dict)
from repro.metrics.utilization import EfficiencyReport, compare_efficiency

__all__ = ["EfficiencyReport", "JCTStats", "compare_efficiency",
           "jct_by_tenant", "jct_stats", "stats_to_dict"]
