"""Cluster resource model: nodes, containers, and their specifications.

The paper's testbed uses one EC2 instance per container: i2.xlarge
(4 vcores, 30.5 GB, fast SSD) for reserved containers and m3.xlarge
(4 vcores, 15 GB) for transient containers. We mirror that one-container-
per-node setup, so a :class:`Container` owns its node's NIC and disk
bandwidth exclusively.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

MB = 1024 * 1024
GB = 1024 * MB


class ContainerKind(enum.Enum):
    """Whether a container is eviction-free or eviction-prone (§2.1)."""

    RESERVED = "reserved"
    TRANSIENT = "transient"


@dataclass(frozen=True)
class NodeSpec:
    """Hardware specification of the node backing a container.

    Bandwidths are in bytes/second; ``cpu_throughput`` is the per-core data
    processing rate (bytes/second) used by the cost model to turn task input
    sizes into compute durations.
    """

    cores: int = 4
    memory_bytes: int = 15 * GB
    disk_bandwidth: float = 200.0 * MB
    network_bandwidth: float = 120.0 * MB
    cpu_throughput: float = 40.0 * MB

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("a node needs at least one core")
        for name in ("memory_bytes", "disk_bandwidth", "network_bandwidth",
                     "cpu_throughput"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


#: Specification mirroring the paper's i2.xlarge reserved instances.
RESERVED_NODE = NodeSpec(cores=4, memory_bytes=int(30.5 * GB),
                         disk_bandwidth=400.0 * MB,
                         network_bandwidth=120.0 * MB)

#: Specification mirroring the paper's m3.xlarge transient instances.
TRANSIENT_NODE = NodeSpec(cores=4, memory_bytes=15 * GB,
                          disk_bandwidth=150.0 * MB,
                          network_bandwidth=120.0 * MB)

_container_ids = itertools.count()


@dataclass
class Container:
    """A slice of node resources hosting one executor (§2.1).

    All state held by a transient container — including data on its local
    disks — is destroyed upon eviction. ``evicted_at`` records when that
    happened (None while alive), which the network model uses to fail
    transfers whose source died mid-flight.
    """

    kind: ContainerKind
    spec: NodeSpec
    container_id: int = field(default_factory=lambda: next(_container_ids))
    lifetime: Optional[float] = None
    launched_at: float = 0.0
    evicted_at: Optional[float] = None
    failed_at: Optional[float] = None
    #: Name of the transient pool this container came from (§6 extension:
    #: resource classes with estimated lifetimes), None for the default pool.
    pool: Optional[str] = None
    #: The pool's *estimated* lifetime — a scheduling hint, not the actual
    #: sampled lifetime (which the scheduler must not peek at).
    expected_lifetime: float = math.inf
    #: Dense slot index assigned by the :class:`~repro.cluster.manager.
    #: ResourceManager` that launched this container (-1 outside one).
    #: A replacement inherits its predecessor's slot, so the manager's
    #: parallel per-slot arrays stay dense across any number of evictions.
    slot: int = -1
    #: Stored liveness flag, kept in step by :meth:`evict`/:meth:`fail`
    #: (the only writers of ``evicted_at``/``failed_at``). A plain
    #: attribute, not a property: every transfer endpoint check and
    #: executor sweep reads it, millions of times per large run.
    alive: bool = True

    @property
    def is_reserved(self) -> bool:
        return self.kind is ContainerKind.RESERVED

    @property
    def is_transient(self) -> bool:
        return self.kind is ContainerKind.TRANSIENT

    def evict(self, now: float) -> None:
        """Mark the container evicted; only transient containers evict."""
        if self.is_reserved:
            raise ValueError("reserved containers are never evicted (§2.1)")
        if not self.alive:
            raise ValueError(f"container {self.container_id} already dead")
        self.evicted_at = now
        self.alive = False

    def fail(self, now: float) -> None:
        """Mark the container failed by a (rare) machine fault (§3.2.6)."""
        if not self.alive:
            raise ValueError(f"container {self.container_id} already dead")
        self.failed_at = now
        self.alive = False

    def dead_since(self) -> float:
        """Time at which the container died; raises if still alive."""
        if self.evicted_at is not None:
            return self.evicted_at
        if self.failed_at is not None:
            return self.failed_at
        raise ValueError(f"container {self.container_id} is alive")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"<Container {self.container_id} {self.kind.value} {state}>"


def reserved_container(spec: NodeSpec = RESERVED_NODE) -> Container:
    """Convenience constructor for an eviction-free container."""
    return Container(kind=ContainerKind.RESERVED, spec=spec)


def transient_container(lifetime: float,
                        spec: NodeSpec = TRANSIENT_NODE,
                        launched_at: float = 0.0) -> Container:
    """Convenience constructor for an eviction-prone container."""
    if lifetime <= 0:
        raise ValueError("transient lifetime must be positive")
    return Container(kind=ContainerKind.TRANSIENT, spec=spec,
                     lifetime=lifetime, launched_at=launched_at)
