"""Eviction-free storage services.

Two services back the experiments:

* :class:`InputStore` — the S3-like store holding job input data (§5.1.3).
  Its aggregate bandwidth dwarfs any single reader, so reads are limited only
  by the reader's NIC.
* :class:`StableStore` — the GlusterFS-like non-replicated checkpoint store
  that Spark-checkpoint runs on reserved containers (§5.1.2). Each file lives
  on exactly one server, and each server has finite bandwidth; with only a
  handful of servers this store is the bottleneck the paper measures.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster.events import Simulator
from repro.cluster.network import (Endpoint, FifoPort, InfiniteEndpoint,
                                   NetworkModel, TransferResult)
from repro.errors import ExecutionError


class _StorageServer:
    """One storage node: a full-duplex endpoint of finite bandwidth."""

    def __init__(self, bandwidth: float) -> None:
        self._out = FifoPort(bandwidth)
        self._in = FifoPort(bandwidth)

    def outbound(self) -> FifoPort:
        return self._out

    def inbound(self) -> FifoPort:
        return self._in

    def is_alive(self) -> bool:
        return True


class InputStore:
    """S3-like input store: always available, never the bottleneck."""

    def __init__(self, sim: Simulator, net: NetworkModel) -> None:
        self._sim = sim
        self._net = net
        self._endpoint = InfiniteEndpoint()
        self._files: dict[Any, tuple[int, Any]] = {}
        self.bytes_read = 0

    def put(self, ref: Any, size_bytes: int, payload: Any = None) -> None:
        """Register an input file (no simulated cost: inputs pre-exist)."""
        self._files[ref] = (size_bytes, payload)

    def has(self, ref: Any) -> bool:
        return ref in self._files

    def size_of(self, ref: Any) -> int:
        return self._files[ref][0]

    def payload_of(self, ref: Any) -> Any:
        return self._files[ref][1]

    def read(self, ref: Any, dst: Endpoint,
             on_done: Callable[[TransferResult], None]) -> None:
        """Stream a file to ``dst``; limited by the destination's NIC."""
        if ref not in self._files:
            raise ExecutionError(f"input file {ref!r} does not exist")
        size, _ = self._files[ref]
        self.bytes_read += size
        self._net.transfer(self._endpoint, dst, size, on_done)


class StableStore:
    """GlusterFS-like non-replicated store on a few reserved nodes.

    Files are spread across servers round-robin at write time (GlusterFS's
    elastic hash places each file on one brick). Both checkpoint writes and
    restore reads contend on the owning server's bandwidth.
    """

    def __init__(self, sim: Simulator, net: NetworkModel, num_servers: int,
                 server_bandwidth: float) -> None:
        if num_servers <= 0:
            raise ValueError("a stable store needs at least one server")
        self._sim = sim
        self._net = net
        self._servers = [_StorageServer(server_bandwidth)
                         for _ in range(num_servers)]
        self._placement: dict[Any, int] = {}
        self._files: dict[Any, tuple[int, Any]] = {}
        self._next_server = 0
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def num_servers(self) -> int:
        return len(self._servers)

    def has(self, ref: Any) -> bool:
        return ref in self._files

    def size_of(self, ref: Any) -> int:
        return self._files[ref][0]

    def payload_of(self, ref: Any) -> Any:
        return self._files[ref][1]

    def write(self, ref: Any, size_bytes: int, src: Endpoint,
              on_done: Callable[[TransferResult], None],
              payload: Any = None) -> None:
        """Checkpoint a file from ``src``; the file is durable only once the
        transfer completes successfully."""
        server_idx = self._placement.get(ref)
        if server_idx is None:
            server_idx = self._next_server
            self._next_server = (self._next_server + 1) % len(self._servers)
            self._placement[ref] = server_idx
        server = self._servers[server_idx]

        def complete(result: TransferResult) -> None:
            if result.ok:
                self._files[ref] = (size_bytes, payload)
                self.bytes_written += size_bytes
            on_done(result)

        self._net.transfer(src, server, size_bytes, complete)

    def read(self, ref: Any, dst: Endpoint,
             on_done: Callable[[TransferResult], None]) -> None:
        """Fetch a whole checkpointed file back to ``dst``."""
        if ref not in self._files:
            raise ExecutionError(f"stable store has no file {ref!r}")
        self.read_share(ref, self._files[ref][0], dst, on_done)

    def read_share(self, ref: Any, size_bytes: float, dst: Endpoint,
                   on_done: Callable[[TransferResult], None]) -> None:
        """Fetch part of a checkpointed file (one shuffle partition)."""
        if ref not in self._files:
            raise ExecutionError(f"stable store has no file {ref!r}")
        server = self._servers[self._placement[ref]]

        def complete(result: TransferResult) -> None:
            if result.ok:
                self.bytes_read += int(size_bytes)
            on_done(result)

        self._net.transfer(server, dst, size_bytes, complete)

    def delete(self, ref: Any) -> None:
        self._files.pop(ref, None)
