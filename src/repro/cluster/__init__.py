"""Discrete-event datacenter simulator substrate.

Provides the event loop (:class:`~repro.cluster.events.Simulator`), the
container/resource model, bandwidth-limited network and disk models, the
eviction-free storage services, and the resource manager that drives the
eviction schedule — everything the paper's EC2/YARN testbed provided.
"""

from repro.cluster.events import EventHandle, Simulator
from repro.cluster.manager import (ContainerLease, LeasePool,
                                   ResourceManager, TransientPool)
from repro.cluster.network import (ContainerEndpoint, DiskModel, FifoPort,
                                   InfiniteEndpoint, NetworkModel,
                                   TransferResult)
from repro.cluster.resources import (Container, ContainerKind, NodeSpec,
                                     RESERVED_NODE, TRANSIENT_NODE, GB, MB,
                                     reserved_container, transient_container)
from repro.cluster.storage import InputStore, StableStore

__all__ = [
    "Container", "ContainerEndpoint", "ContainerKind", "ContainerLease",
    "DiskModel",
    "EventHandle", "FifoPort", "GB", "InfiniteEndpoint", "InputStore",
    "LeasePool", "MB",
    "NetworkModel", "NodeSpec", "RESERVED_NODE", "ResourceManager",
    "TransientPool",
    "Simulator", "StableStore", "TRANSIENT_NODE", "TransferResult",
    "reserved_container", "transient_container",
]
