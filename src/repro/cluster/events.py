"""Deterministic discrete-event simulation core.

All engines in this reproduction run on top of :class:`Simulator`, a minimal
event-heap simulator. Determinism matters: the paper's experiments compare
engines on identical eviction schedules, and our tests assert bit-for-bit
reproducibility given a seed. To that end events are ordered by
``(time, priority, sequence)`` where the sequence number breaks ties in
insertion order, and the simulator never consults wall-clock time or global
random state.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError

Callback = Callable[[], Any]


@dataclass(order=True)
class _Event:
    time: float
    priority: int
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call multiple times."""
        self._event.cancelled = True


class Simulator:
    """A deterministic event-heap simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_Event] = []
        self._seq = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callback,
                 priority: int = 0) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among events at the same time: lower
        priorities fire first. Negative delays are rejected.
        """
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(self, time: float, callback: Callback,
                    priority: int = 0) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now ({self._now})")
        event = _Event(time=time, priority=priority, seq=self._seq,
                       callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Execute the next pending event; return False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap went backwards in time")
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the event heap drains, ``until`` is reached, or
        ``max_events`` have been executed.

        ``max_events`` is a safety valve against livelock in engine control
        loops; exceeding it raises :class:`SimulationError`.
        """
        executed = 0
        while self._heap:
            if until is not None and self._peek_time() > until:
                self._now = until
                return
            if not self.step():
                return
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; likely livelock")

    def peek_time(self) -> float:
        """Time of the next pending event (inf if the heap is empty)."""
        return self._peek_time()

    def _peek_time(self) -> float:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return math.inf
        return self._heap[0].time
