"""Deterministic discrete-event simulation core.

All engines in this reproduction run on top of :class:`Simulator`, a minimal
event-heap simulator. Determinism matters: the paper's experiments compare
engines on identical eviction schedules, and our tests assert bit-for-bit
reproducibility given a seed. To that end events are ordered by
``(time, priority, sequence)`` where the sequence number breaks ties in
insertion order, and the simulator never consults wall-clock time or global
random state.

The event loop is the hottest code in the repository (a 0.2-scale MLR run
executes several hundred thousand events), so the heap stores plain
``[time, priority, seq, callback]`` lists rather than objects: list
construction is a single C call and heap comparisons short-circuit on the
leading floats without ever reaching the callback slot (``seq`` is unique).
Cancellation tombstones an entry by clearing its callback slot; tombstones
are skipped on pop and compacted away in bulk once they outnumber live
entries (see :meth:`EventHandle.cancel`). Call sites that never cancel
should use :meth:`Simulator.schedule_fast` / :meth:`Simulator.schedule_at_fast`,
which skip the :class:`EventHandle` allocation entirely.

Beside the heap sits a *calendar queue* (a single-level timer wheel):
far-future events land in coarse time buckets instead of the heap, and a
whole bucket spills into the heap just before the simulation reaches its
start. Large homogeneous timer populations — the per-container eviction
ticks of a 10k-container cluster, long-idle port drain timers — therefore
never inflate the heap (and every push/pop's log factor) while they are
minutes away. Ordering is untouched: every wheel entry takes its ``seq``
at schedule time and keeps its ``(time, priority, seq)`` triple, and a
bucket is merged before any event at or past its start can pop, so the
merged pop order is bit-identical to scheduling everything on the heap.
:meth:`Simulator.schedule_wheel` is the explicit entry point (used by the
resource manager's eviction ticks); :meth:`Simulator.schedule_at_seq`
routes far-future port timers to the wheel transparently.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError

Callback = Callable[[], Any]

#: Entry slot indices (entries are ``[time, priority, seq, callback]``).
_TIME, _PRIORITY, _SEQ, _CALLBACK = 0, 1, 2, 3

#: Tombstone compaction kicks in only beyond this many cancelled entries,
#: so short-lived simulations never pay the rebuild.
_COMPACT_MIN_CANCELLED = 64

#: Width of one calendar-queue bucket in simulated seconds. Eviction
#: lifetimes are minute-scale (§5.1.1 traces), so 64 s buckets hold a few
#: spill batches per lifetime while events less than one bucket away go
#: straight to the heap (bucketing them would cost an extra hop for no
#: heap-size reduction).
_WHEEL_WIDTH = 64.0


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self._sim = sim
        self._entry = entry

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire."""
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call multiple times."""
        entry = self._entry
        if entry[_CALLBACK] is not None:
            entry[_CALLBACK] = None
            self._sim._note_cancel()


class Simulator:
    """A deterministic event-heap simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[list] = []
        self._seq = 0
        self._events_processed = 0
        self._cancelled = 0
        # Calendar queue: bucket index -> unordered entry list, plus a
        # min-heap of pending bucket indices. Entries are the same
        # ``[time, priority, seq, callback]`` lists as the heap's, so a
        # spill is a plain extend+heapify and the merged order is exactly
        # what scheduling straight onto the heap would have produced.
        self._buckets: dict[int, list] = {}
        self._bucket_heap: list[int] = []
        self._wheel_count = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of entries still queued, on the heap or the wheel
        (including cancelled heap entries that have not yet been popped or
        compacted away)."""
        return len(self._heap) + self._wheel_count

    @property
    def cancelled_pending(self) -> int:
        """Number of cancelled entries still occupying heap slots."""
        return self._cancelled

    def schedule(self, delay: float, callback: Callback,
                 priority: int = 0) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among events at the same time: lower
        priorities fire first. Negative delays are rejected.
        """
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(self, time: float, callback: Callback,
                    priority: int = 0) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now ({self._now})")
        seq = self._seq
        self._seq = seq + 1
        entry = [time, priority, seq, callback]
        heappush(self._heap, entry)
        return EventHandle(self, entry)

    def schedule_fast(self, delay: float, callback: Callback,
                      priority: int = 0) -> None:
        """:meth:`schedule` without allocating an :class:`EventHandle`.

        The fast path for the (overwhelmingly common) events that are never
        cancelled: transfer/disk completions, task-compute timers, eviction
        firings.
        """
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, [self._now + delay, priority, seq, callback])

    def schedule_at_fast(self, time: float, callback: Callback,
                         priority: int = 0) -> None:
        """:meth:`schedule_at` without allocating an :class:`EventHandle`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now ({self._now})")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, [time, priority, seq, callback])

    def take_seq(self) -> int:
        """Allocate one tie-break sequence number without scheduling.

        Flow-batched schedulers (:class:`~repro.cluster.network.NetworkModel`
        and ``DiskModel``) stamp every request with a seq at request time
        and later arm their shared drain timer via :meth:`schedule_at_seq`
        under the head request's seq, so batched completions sort exactly
        where individually scheduled events would have.
        """
        seq = self._seq
        self._seq = seq + 1
        return seq

    def schedule_at_seq(self, time: float, seq: int, callback: Callback,
                        priority: int = 0) -> None:
        """Schedule at an absolute time under a caller-provided ``seq``
        (from :meth:`take_seq`). The caller must not keep two live events
        under one seq — tied entries would compare on the callback slot.

        Events more than one bucket width out are parked on the wheel
        instead of the heap; they spill back (seq intact) before the
        simulation reaches their bucket, so pop order is unchanged.
        """
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule event at {time} before now ({self._now})")
        if time - now >= _WHEEL_WIDTH:
            self._wheel_put([time, priority, seq, callback])
        else:
            heappush(self._heap, [time, priority, seq, callback])

    def schedule_wheel(self, delay: float, callback: Callback,
                       priority: int = 0) -> None:
        """Handle-free scheduling through the calendar queue.

        The entry point for large homogeneous far-future timer populations
        (container eviction ticks). Entries cannot be cancelled; near-term
        delays fall through to the heap, where bucketing would buy nothing.
        """
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule event {delay} s in the past")
        seq = self._seq
        self._seq = seq + 1
        entry = [self._now + delay, priority, seq, callback]
        if delay >= _WHEEL_WIDTH:
            self._wheel_put(entry)
        else:
            heappush(self._heap, entry)

    def _wheel_put(self, entry: list) -> None:
        index = int(entry[_TIME] // _WHEEL_WIDTH)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [entry]
            heappush(self._bucket_heap, index)
        else:
            bucket.append(entry)
        self._wheel_count += 1

    def _spill_due(self) -> None:
        """Merge every bucket whose window has reached the heap front.

        A bucket must merge before any event at or after its start pops:
        all heap entries satisfy ``time >= now``, so spilling whenever
        ``bucket_start <= heap[0].time`` (or the heap is empty) guarantees
        no bucket entry can be late — a bucket held back has
        ``bucket_start > heap[0].time``, and every entry in it sorts after
        the current heap front.
        """
        heap = self._heap
        bucket_heap = self._bucket_heap
        while bucket_heap and (
                not heap or bucket_heap[0] * _WHEEL_WIDTH <= heap[0][_TIME]):
            index = heappop(bucket_heap)
            entries = self._buckets.pop(index)
            self._wheel_count -= len(entries)
            if len(entries) * 4 > len(heap):
                heap.extend(entries)
                heapify(heap)
            else:
                for entry in entries:
                    heappush(heap, entry)

    def step(self) -> bool:
        """Execute the next pending event; return False if none remain."""
        heap = self._heap
        while True:
            if self._bucket_heap:
                self._spill_due()
            if not heap:
                return False
            entry = heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                self._cancelled -= 1
                continue
            time = entry[_TIME]
            if time < self._now:
                raise SimulationError("event heap went backwards in time")
            self._now = time
            self._events_processed += 1
            callback()
            return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the event heap drains, ``until`` is reached, or
        ``max_events`` have been executed.

        When ``until`` is given, ``now`` always ends up at ``until`` —
        whether the heap drained early or later events remain queued.
        ``max_events`` is a safety valve against livelock in engine control
        loops; exceeding it raises :class:`SimulationError`.
        """
        executed = 0
        while True:
            next_time = self._peek_time()
            if next_time == math.inf:
                break
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; likely livelock")
        if until is not None and until > self._now:
            self._now = until

    def peek_time(self) -> float:
        """Time of the next pending event (inf if the heap is empty)."""
        return self._peek_time()

    def _peek_time(self) -> float:
        heap = self._heap
        while True:
            if self._bucket_heap:
                self._spill_due()
            if not heap:
                return math.inf
            if heap[0][_CALLBACK] is None:
                heappop(heap)
                self._cancelled -= 1
                continue
            return heap[0][_TIME]

    # ------------------------------------------------------------------
    # cancellation bookkeeping

    def _note_cancel(self) -> None:
        # A handle can be cancelled after its event already fired (the
        # entry is no longer in the heap); clamping keeps the tombstone
        # estimate from drifting above the heap size.
        cancelled = self._cancelled + 1
        heap_size = len(self._heap)
        self._cancelled = cancelled if cancelled <= heap_size else heap_size
        if (self._cancelled > _COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > heap_size):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Long Spark runs under high eviction cancel many timers; without
        compaction the heap (and every push/pop's log factor) grows with the
        cancellation count rather than the live event count.
        """
        self._heap = [entry for entry in self._heap
                      if entry[_CALLBACK] is not None]
        heapify(self._heap)
        self._cancelled = 0
