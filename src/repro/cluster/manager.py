"""Resource manager: allocation, eviction, and re-provisioning of containers.

Mirrors the experimental setup of §5.1.1: a job asks for a fixed number of
reserved and transient containers; transient containers receive lifetimes
sampled from a :class:`~repro.trace.models.LifetimeModel`; and whenever a
transient container is evicted, a replacement with a freshly sampled lifetime
is provided immediately (each job uses a small share of the datacenter, so
idle resources are always available somewhere else).

Rare machine faults (§3.2.6) can additionally be injected on reserved
containers to exercise engines' fault-tolerance paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cluster.events import Simulator
from repro.cluster.network import EVICTION_PRIORITY
from repro.cluster.resources import (Container, ContainerKind, NodeSpec,
                                     RESERVED_NODE, TRANSIENT_NODE)
from repro.errors import ResourceError
from repro.obs.events import Eviction
from repro.obs.tracer import Tracer
from repro.trace.models import LifetimeModel

#: Callback invoked when a container comes online.
ContainerCallback = Callable[[Container], None]
#: Callback invoked when a container dies; second argument is the
#: replacement container (None for reserved-container failures).
EvictionCallback = Callable[[Container, Optional[Container]], None]


@dataclass(frozen=True)
class TransientPool:
    """A class of transient resources with an estimated lifetime (§6).

    The Harvest-style extension: the resource manager categorizes harvested
    resources by how long they are expected to survive, letting schedulers
    place heavy work on the longer-lived classes. ``expected_lifetime`` is
    the hint exposed to schedulers; actual lifetimes are sampled from
    ``lifetime_model``. ``price_weight`` is the relative cost of the
    class — the portfolio predictor (:mod:`repro.predict.portfolio`)
    ranks classes by expected lifetime per unit price.
    """

    name: str
    count: int
    lifetime_model: LifetimeModel
    expected_lifetime: float
    price_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ResourceError("pool count must be non-negative")
        if self.expected_lifetime <= 0:
            raise ResourceError("expected lifetime must be positive")
        if self.price_weight <= 0:
            raise ResourceError("price weight must be positive")


class ResourceManager:
    """Allocates containers and drives the eviction schedule."""

    def __init__(self, sim: Simulator, lifetime_model: LifetimeModel,
                 rng: np.random.Generator,
                 reserved_spec: NodeSpec = RESERVED_NODE,
                 transient_spec: NodeSpec = TRANSIENT_NODE,
                 replace_evicted: bool = True,
                 tracer: Optional[Tracer] = None) -> None:
        self._sim = sim
        self._lifetimes = lifetime_model
        self._rng = rng
        self.tracer = tracer
        self._reserved_spec = reserved_spec
        self._transient_spec = transient_spec
        self._replace_evicted = replace_evicted
        self._on_container: Optional[ContainerCallback] = None
        self._on_eviction: Optional[EvictionCallback] = None
        # Attached lifetime predictor (repro.predict), fed every witnessed
        # eviction so online models (hazard) learn the cluster's actual
        # reclamation dynamics. None by default: nothing observes, nothing
        # changes.
        self._predictor = None
        #: Every container ever launched, in launch order (grows with each
        #: replacement; kept for history/tests).
        self.containers: list[Container] = []
        self._pool_of: dict[int, TransientPool] = {}
        # Slot-indexed parallel arrays of the *current* fleet: one dense
        # slot per allocated position, the replacement of an evicted
        # container inheriting its predecessor's slot. Sweeps over live
        # capacity (accessors, eviction bookkeeping) touch these fixed-size
        # arrays instead of the ever-growing history list.
        self.slot_kind: list[ContainerKind] = []
        self.slot_alive: list[bool] = []
        self.slot_launched: list[float] = []
        self.slot_container: list[Container] = []
        self.evictions = 0
        self.failures = 0

    # ------------------------------------------------------------------
    # listener registration

    def on_container(self, callback: ContainerCallback) -> None:
        """Register the callback fired when any container comes online."""
        self._on_container = callback

    def on_eviction(self, callback: EvictionCallback) -> None:
        """Register the callback fired when a container dies."""
        self._on_eviction = callback

    def attach_predictor(self, predictor) -> None:
        """Feed every witnessed eviction to a
        :class:`~repro.predict.base.LifetimePredictor` as an observed
        lifetime (the predictor's online learning stream)."""
        self._predictor = predictor

    # ------------------------------------------------------------------
    # allocation

    def allocate(self, num_reserved: int, num_transient: int) -> None:
        """Bring the requested containers online at the current time."""
        if num_reserved < 0 or num_transient < 0:
            raise ResourceError("container counts must be non-negative")
        for _ in range(num_reserved):
            self._launch(ContainerKind.RESERVED)
        for _ in range(num_transient):
            self._launch(ContainerKind.TRANSIENT)

    def allocate_pools(self, num_reserved: int,
                       pools: "list[TransientPool]") -> None:
        """Bring reserved containers plus heterogeneous transient pools
        online (§6 extension). Replacements stay within their pool."""
        if num_reserved < 0:
            raise ResourceError("container counts must be non-negative")
        for _ in range(num_reserved):
            self._launch(ContainerKind.RESERVED)
        for pool in pools:
            for _ in range(pool.count):
                self._launch(ContainerKind.TRANSIENT, pool=pool)

    def reserved_containers(self) -> list[Container]:
        return [c for c, kind, alive in zip(self.slot_container,
                                            self.slot_kind, self.slot_alive)
                if kind is ContainerKind.RESERVED and alive]

    def transient_containers(self) -> list[Container]:
        return [c for c, kind, alive in zip(self.slot_container,
                                            self.slot_kind, self.slot_alive)
                if kind is ContainerKind.TRANSIENT and alive]

    def _launch(self, kind: ContainerKind,
                pool: "Optional[TransientPool]" = None,
                slot: Optional[int] = None) -> Container:
        now = self._sim.now
        if slot is None:
            slot = len(self.slot_container)
            self.slot_kind.append(kind)
            self.slot_alive.append(True)
            self.slot_launched.append(now)
            self.slot_container.append(None)  # type: ignore[arg-type]
        else:
            self.slot_alive[slot] = True
            self.slot_launched[slot] = now
        if kind is ContainerKind.RESERVED:
            container = Container(kind=kind, spec=self._reserved_spec,
                                  launched_at=now, slot=slot)
        else:
            model = pool.lifetime_model if pool is not None \
                else self._lifetimes
            # Every launch goes through sample_at: wave-pinned models
            # (repro.cluster.tenancy) need the launch time so replacements
            # still die on cluster-wide wave ticks, and time-homogeneous
            # models delegate back to sample() unchanged.
            lifetime = model.sample_at(now, self._rng)
            container = Container(
                kind=kind, spec=self._transient_spec, lifetime=lifetime,
                launched_at=now, slot=slot,
                pool=pool.name if pool is not None else None,
                expected_lifetime=(pool.expected_lifetime
                                   if pool is not None else math.inf))
            if pool is not None:
                self._pool_of[container.container_id] = pool
            if math.isfinite(lifetime):
                # Eviction ticks are the archetypal wheel population: one
                # minute-scale timer per transient container, never
                # cancelled, so at 10k containers they would otherwise
                # dominate the heap.
                self._sim.schedule_wheel(lifetime,
                                         lambda: self._evict(container),
                                         priority=EVICTION_PRIORITY)
        self.slot_container[slot] = container
        self.containers.append(container)
        if self._on_container is not None:
            self._on_container(container)
        return container

    # ------------------------------------------------------------------
    # evictions and failures

    def _evict(self, container: Container) -> None:
        if not container.alive:
            return
        container.evict(self._sim.now)
        self.slot_alive[container.slot] = False
        self.evictions += 1
        if self._predictor is not None:
            self._predictor.observe(self._sim.now - container.launched_at)
        if self.tracer is not None:
            self.tracer.emit(Eviction(
                time=self._sim.now, container=container.container_id,
                resource="transient", cause="eviction",
                lifetime=container.lifetime))
        replacement: Optional[Container] = None
        if self._replace_evicted:
            pool = self._pool_of.get(container.container_id)
            replacement = self._launch(ContainerKind.TRANSIENT, pool=pool,
                                       slot=container.slot)
        if self._on_eviction is not None:
            self._on_eviction(container, replacement)

    def inject_failure(self, container: Container,
                       replace: bool = True) -> Optional[Container]:
        """Kill a container with a machine fault (§3.2.6).

        Unlike evictions, faults can hit reserved containers. A replacement
        of the same kind is provisioned when ``replace`` is True.
        """
        if not container.alive:
            raise ResourceError(f"{container!r} is already dead")
        container.fail(self._sim.now)
        if container.slot >= 0:
            self.slot_alive[container.slot] = False
        self.failures += 1
        if self.tracer is not None:
            self.tracer.emit(Eviction(
                time=self._sim.now, container=container.container_id,
                resource=("reserved" if container.is_reserved
                          else "transient"),
                cause="fault", lifetime=container.lifetime))
        replacement = (self._launch(container.kind,
                                    slot=(container.slot
                                          if container.slot >= 0 else None))
                       if replace else None)
        if self._on_eviction is not None:
            self._on_eviction(container, replacement)
        return replacement

    def schedule_failure(self, container: Container, delay: float,
                         replace: bool = True) -> None:
        """Inject a fault ``delay`` seconds from now (if still alive)."""

        def fire() -> None:
            if container.alive:
                self.inject_failure(container, replace=replace)

        self._sim.schedule_wheel(delay, fire, priority=EVICTION_PRIORITY)


# ----------------------------------------------------------------------
# multi-tenant container leases (repro.cluster.tenancy)


@dataclass
class ContainerLease:
    """One container slot granted to one job of one tenant.

    Leases are *namespaced*: every lease records the ``job_id`` and
    ``tenant`` it was granted to, and :class:`LeasePool` only ever
    releases or revokes a lease through its owning job — one tenant's
    capacity can never be returned (or charged) through another's
    bookkeeping. ``revoked_at`` marks leases torn down by a correlated
    eviction wave rather than by job completion.
    """

    lease_id: int
    job_id: str
    tenant: str
    kind: ContainerKind
    granted_at: float
    released_at: Optional[float] = None
    revoked_at: Optional[float] = None
    #: Dense pool slot this lease occupies (reserved slots first, then
    #: transient). A wave replacement inherits the revoked lease's slot.
    slot: int = -1

    @property
    def active(self) -> bool:
        return self.released_at is None

    def seconds_held(self, now: float) -> float:
        """Container-seconds this lease has accrued (up to ``now`` while
        active)."""
        end = self.released_at if self.released_at is not None else now
        return max(0.0, end - self.granted_at)


class LeasePool:
    """The shared container pool the inter-job scheduler allocates from.

    Tracks reserved and transient slot capacity, grants namespaced
    :class:`ContainerLease`\\ s per job, accrues per-job and per-tenant
    container-second accounting, and delivers *correlated eviction waves*:
    :meth:`revoke_wave` walks every active transient lease of every
    running job in one call, revokes each with the wave's severity, and
    immediately re-grants replacements to the same job — so one
    revocation wave hits all co-located tenants at the same simulated
    tick, and no job's allocation shrinks (replacements are immediate,
    matching the single-job :class:`ResourceManager` assumption).
    """

    def __init__(self, num_reserved: int, num_transient: int) -> None:
        if num_reserved < 0 or num_transient < 0:
            raise ResourceError("pool capacities must be non-negative")
        self.num_reserved = num_reserved
        self.num_transient = num_transient
        self._next_lease = 0
        self._active: dict[str, list[ContainerLease]] = {}
        self._tenant_of: dict[str, str] = {}
        self.history: list[ContainerLease] = []
        #: (time, severity, {job_id: containers revoked}) per wave tick.
        self.waves: list[tuple[float, float, dict[str, int]]] = []
        # Slot-structured state: reserved slots are [0, R), transient
        # [R, R+T). slot_lease holds the current occupant; the free lists
        # are LIFO stacks (initialized so the first grants take slots in
        # ascending order). All capacity checks and the fair-share
        # container-seconds metric are O(1) counter reads — the mtsweep
        # outer loop used to rescan the whole lease history per scheduling
        # decision.
        self.slot_lease: list[Optional[ContainerLease]] = \
            [None] * (num_reserved + num_transient)
        self._free_reserved = list(range(num_reserved - 1, -1, -1))
        self._free_transient = list(
            range(num_reserved + num_transient - 1, num_reserved - 1, -1))
        self._used_reserved = 0
        self._used_transient = 0
        self._reserved_by_tenant: dict[str, int] = {}
        #: ``(time, delta_reserved)`` per elastic conversion (the
        #: repro.predict.elastic controller's applied decisions).
        self.resizes: list[tuple[float, int]] = []
        # job/tenant -> [completed_seconds, active_count, granted_at_sum]:
        # container-seconds at time t = completed + active*t - granted_sum.
        self._job_acct: dict[str, list[float]] = {}
        self._tenant_acct: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    # capacity

    @property
    def reserved_free(self) -> int:
        return self.num_reserved - self._used_reserved

    @property
    def transient_free(self) -> int:
        return self.num_transient - self._used_transient

    def reserved_in_use(self, tenant: str) -> int:
        """Active reserved leases held by one tenant (the quantity the
        reserved-quota policy bounds)."""
        return self._reserved_by_tenant.get(tenant, 0)

    def fits(self, num_reserved: int, num_transient: int) -> bool:
        return (self.reserved_free >= num_reserved
                and self.transient_free >= num_transient)

    def active_jobs(self) -> list[str]:
        return sorted(self._active)

    # ------------------------------------------------------------------
    # elastic resizing (repro.predict.elastic)

    def convert_transient_to_reserved(self, count: int, now: float) -> int:
        """Re-dedicate ``count`` *free* transient slots as reserved.

        Slot kind is defined by free-list membership plus the occupying
        lease's kind — not by index ranges — so a conversion just moves
        free slot ids between the LIFO stacks and adjusts the capacity
        counters. Returns ``count``; raises
        :class:`~repro.errors.ResourceError` when fewer free transient
        slots exist (the controller must only convert idle capacity).
        """
        if count < 0:
            raise ResourceError("conversion count must be non-negative")
        if count > len(self._free_transient):
            raise ResourceError(
                f"cannot convert {count} transient slots: only "
                f"{len(self._free_transient)} free")
        for _ in range(count):
            self._free_reserved.append(self._free_transient.pop())
        self.num_transient -= count
        self.num_reserved += count
        if count:
            self.resizes.append((now, count))
        return count

    def convert_reserved_to_transient(self, count: int, now: float) -> int:
        """Inverse of :meth:`convert_transient_to_reserved`."""
        if count < 0:
            raise ResourceError("conversion count must be non-negative")
        if count > len(self._free_reserved):
            raise ResourceError(
                f"cannot convert {count} reserved slots: only "
                f"{len(self._free_reserved)} free")
        for _ in range(count):
            self._free_transient.append(self._free_reserved.pop())
        self.num_reserved -= count
        self.num_transient += count
        if count:
            self.resizes.append((now, -count))
        return count

    # ------------------------------------------------------------------
    # grant / release

    def _grant(self, job_id: str, kind: ContainerKind, now: float,
               slot: Optional[int] = None) -> ContainerLease:
        tenant = self._tenant_of[job_id]
        if slot is None:
            slot = (self._free_reserved.pop()
                    if kind is ContainerKind.RESERVED
                    else self._free_transient.pop())
        lease = ContainerLease(lease_id=self._next_lease, job_id=job_id,
                               tenant=tenant, kind=kind,
                               granted_at=now, slot=slot)
        self._next_lease += 1
        self._active[job_id].append(lease)
        self.history.append(lease)
        self.slot_lease[slot] = lease
        if kind is ContainerKind.RESERVED:
            self._used_reserved += 1
            self._reserved_by_tenant[tenant] = \
                self._reserved_by_tenant.get(tenant, 0) + 1
        else:
            self._used_transient += 1
        for acct_map, key in ((self._job_acct, job_id),
                              (self._tenant_acct, tenant)):
            acct = acct_map.get(key)
            if acct is None:
                acct_map[key] = [0.0, 1, now]
            else:
                acct[1] += 1
                acct[2] += now
        return lease

    def _end_lease(self, lease: ContainerLease, now: float,
                   free_slot: bool) -> None:
        """Close out one active lease's slot, counters, and accounting.
        ``free_slot`` is False when the caller hands the slot straight to
        a replacement (wave revocations)."""
        lease.released_at = now
        slot = lease.slot
        self.slot_lease[slot] = None
        if lease.kind is ContainerKind.RESERVED:
            self._used_reserved -= 1
            self._reserved_by_tenant[lease.tenant] -= 1
            if free_slot:
                self._free_reserved.append(slot)
        else:
            self._used_transient -= 1
            if free_slot:
                self._free_transient.append(slot)
        held = now - lease.granted_at
        for acct_map, key in ((self._job_acct, lease.job_id),
                              (self._tenant_acct, lease.tenant)):
            acct = acct_map[key]
            acct[0] += held
            acct[1] -= 1
            acct[2] -= lease.granted_at

    def lease(self, job_id: str, tenant: str, num_reserved: int,
              num_transient: int, now: float) -> list[ContainerLease]:
        """Grant a job its whole allocation atomically (all or nothing)."""
        if job_id in self._active:
            raise ResourceError(f"job {job_id!r} already holds leases")
        if not self.fits(num_reserved, num_transient):
            raise ResourceError(
                f"insufficient capacity for {job_id!r}: "
                f"{num_reserved}R+{num_transient}T requested, "
                f"{self.reserved_free}R+{self.transient_free}T free")
        self._active[job_id] = []
        self._tenant_of[job_id] = tenant
        return ([self._grant(job_id, ContainerKind.RESERVED, now)
                 for _ in range(num_reserved)]
                + [self._grant(job_id, ContainerKind.TRANSIENT, now)
                   for _ in range(num_transient)])

    def release_job(self, job_id: str, now: float) -> float:
        """Release every lease the job still holds; returns the job's
        total accrued container-seconds (including revoked leases)."""
        if job_id not in self._active:
            raise ResourceError(f"job {job_id!r} holds no leases")
        for lease in self._active.pop(job_id):
            self._end_lease(lease, now, free_slot=True)
        return self.container_seconds(job_id=job_id, now=now)

    # ------------------------------------------------------------------
    # correlated eviction waves

    def revoke_wave(self, now: float, severity: float,
                    rng: np.random.Generator) -> dict[str, int]:
        """Deliver one correlated eviction wave across *all* running jobs.

        Every active transient lease — regardless of owning tenant — is
        revoked with probability ``severity`` in this single call, at this
        single timestamp, and a replacement lease is granted to the same
        job in the same tick. Reserved leases are untouched. Returns
        ``{job_id: containers revoked}`` for every affected job.
        """
        if not 0.0 < severity <= 1.0:
            raise ResourceError("wave severity must lie in (0, 1]")
        revoked: dict[str, int] = {}
        for job_id in sorted(self._active):
            for lease in list(self._active[job_id]):
                if lease.kind is not ContainerKind.TRANSIENT:
                    continue
                if severity < 1.0 and float(rng.random()) >= severity:
                    continue
                self._end_lease(lease, now, free_slot=False)
                lease.revoked_at = now
                self._active[job_id].remove(lease)
                # The replacement inherits the revoked slot: the fleet's
                # slot occupancy is unchanged by a wave, exactly like the
                # single-job ResourceManager's in-place replacements.
                self._grant(job_id, ContainerKind.TRANSIENT, now,
                            slot=lease.slot)
                revoked[job_id] = revoked.get(job_id, 0) + 1
        self.waves.append((now, severity, revoked))
        return revoked

    # ------------------------------------------------------------------
    # accounting

    def container_seconds(self, job_id: Optional[str] = None,
                          tenant: Optional[str] = None,
                          now: float = 0.0) -> float:
        """Accrued container-seconds, filtered by job and/or tenant.

        Counts completed and revoked leases in full and active leases up
        to ``now`` — the consumption metric weighted fair-share ranks
        tenants by. O(1) via the incremental accounting the grant/release
        paths maintain (``completed + active*now - granted_sum``), so the
        mtsweep outer loop no longer rescans the lease history on every
        scheduling decision.
        """
        if job_id is not None:
            if tenant is not None and self._tenant_of.get(job_id) != tenant:
                return 0.0
            acct = self._job_acct.get(job_id)
        elif tenant is not None:
            acct = self._tenant_acct.get(tenant)
        else:
            acct = [0.0, 0, 0.0]
            for each in self._job_acct.values():
                acct[0] += each[0]
                acct[1] += each[1]
                acct[2] += each[2]
        if acct is None:
            return 0.0
        return acct[0] + acct[1] * now - acct[2]
