"""Resource manager: allocation, eviction, and re-provisioning of containers.

Mirrors the experimental setup of §5.1.1: a job asks for a fixed number of
reserved and transient containers; transient containers receive lifetimes
sampled from a :class:`~repro.trace.models.LifetimeModel`; and whenever a
transient container is evicted, a replacement with a freshly sampled lifetime
is provided immediately (each job uses a small share of the datacenter, so
idle resources are always available somewhere else).

Rare machine faults (§3.2.6) can additionally be injected on reserved
containers to exercise engines' fault-tolerance paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cluster.events import Simulator
from repro.cluster.network import EVICTION_PRIORITY
from repro.cluster.resources import (Container, ContainerKind, NodeSpec,
                                     RESERVED_NODE, TRANSIENT_NODE)
from repro.errors import ResourceError
from repro.obs.events import Eviction
from repro.obs.tracer import Tracer
from repro.trace.models import LifetimeModel

#: Callback invoked when a container comes online.
ContainerCallback = Callable[[Container], None]
#: Callback invoked when a container dies; second argument is the
#: replacement container (None for reserved-container failures).
EvictionCallback = Callable[[Container, Optional[Container]], None]


@dataclass(frozen=True)
class TransientPool:
    """A class of transient resources with an estimated lifetime (§6).

    The Harvest-style extension: the resource manager categorizes harvested
    resources by how long they are expected to survive, letting schedulers
    place heavy work on the longer-lived classes. ``expected_lifetime`` is
    the hint exposed to schedulers; actual lifetimes are sampled from
    ``lifetime_model``.
    """

    name: str
    count: int
    lifetime_model: LifetimeModel
    expected_lifetime: float

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ResourceError("pool count must be non-negative")
        if self.expected_lifetime <= 0:
            raise ResourceError("expected lifetime must be positive")


class ResourceManager:
    """Allocates containers and drives the eviction schedule."""

    def __init__(self, sim: Simulator, lifetime_model: LifetimeModel,
                 rng: np.random.Generator,
                 reserved_spec: NodeSpec = RESERVED_NODE,
                 transient_spec: NodeSpec = TRANSIENT_NODE,
                 replace_evicted: bool = True,
                 tracer: Optional[Tracer] = None) -> None:
        self._sim = sim
        self._lifetimes = lifetime_model
        self._rng = rng
        self.tracer = tracer
        self._reserved_spec = reserved_spec
        self._transient_spec = transient_spec
        self._replace_evicted = replace_evicted
        self._on_container: Optional[ContainerCallback] = None
        self._on_eviction: Optional[EvictionCallback] = None
        self.containers: list[Container] = []
        self._pool_of: dict[int, TransientPool] = {}
        self.evictions = 0
        self.failures = 0

    # ------------------------------------------------------------------
    # listener registration

    def on_container(self, callback: ContainerCallback) -> None:
        """Register the callback fired when any container comes online."""
        self._on_container = callback

    def on_eviction(self, callback: EvictionCallback) -> None:
        """Register the callback fired when a container dies."""
        self._on_eviction = callback

    # ------------------------------------------------------------------
    # allocation

    def allocate(self, num_reserved: int, num_transient: int) -> None:
        """Bring the requested containers online at the current time."""
        if num_reserved < 0 or num_transient < 0:
            raise ResourceError("container counts must be non-negative")
        for _ in range(num_reserved):
            self._launch(ContainerKind.RESERVED)
        for _ in range(num_transient):
            self._launch(ContainerKind.TRANSIENT)

    def allocate_pools(self, num_reserved: int,
                       pools: "list[TransientPool]") -> None:
        """Bring reserved containers plus heterogeneous transient pools
        online (§6 extension). Replacements stay within their pool."""
        if num_reserved < 0:
            raise ResourceError("container counts must be non-negative")
        for _ in range(num_reserved):
            self._launch(ContainerKind.RESERVED)
        for pool in pools:
            for _ in range(pool.count):
                self._launch(ContainerKind.TRANSIENT, pool=pool)

    def reserved_containers(self) -> list[Container]:
        return [c for c in self.containers if c.is_reserved and c.alive]

    def transient_containers(self) -> list[Container]:
        return [c for c in self.containers if c.is_transient and c.alive]

    def _launch(self, kind: ContainerKind,
                pool: "Optional[TransientPool]" = None) -> Container:
        now = self._sim.now
        if kind is ContainerKind.RESERVED:
            container = Container(kind=kind, spec=self._reserved_spec,
                                  launched_at=now)
        else:
            model = pool.lifetime_model if pool is not None \
                else self._lifetimes
            lifetime = model.sample(self._rng)
            container = Container(
                kind=kind, spec=self._transient_spec, lifetime=lifetime,
                launched_at=now,
                pool=pool.name if pool is not None else None,
                expected_lifetime=(pool.expected_lifetime
                                   if pool is not None else math.inf))
            if pool is not None:
                self._pool_of[container.container_id] = pool
            if math.isfinite(lifetime):
                self._sim.schedule_fast(lifetime,
                                        lambda: self._evict(container),
                                        priority=EVICTION_PRIORITY)
        self.containers.append(container)
        if self._on_container is not None:
            self._on_container(container)
        return container

    # ------------------------------------------------------------------
    # evictions and failures

    def _evict(self, container: Container) -> None:
        if not container.alive:
            return
        container.evict(self._sim.now)
        self.evictions += 1
        if self.tracer is not None:
            self.tracer.emit(Eviction(
                time=self._sim.now, container=container.container_id,
                resource="transient", cause="eviction",
                lifetime=container.lifetime))
        replacement: Optional[Container] = None
        if self._replace_evicted:
            pool = self._pool_of.get(container.container_id)
            replacement = self._launch(ContainerKind.TRANSIENT, pool=pool)
        if self._on_eviction is not None:
            self._on_eviction(container, replacement)

    def inject_failure(self, container: Container,
                       replace: bool = True) -> Optional[Container]:
        """Kill a container with a machine fault (§3.2.6).

        Unlike evictions, faults can hit reserved containers. A replacement
        of the same kind is provisioned when ``replace`` is True.
        """
        if not container.alive:
            raise ResourceError(f"{container!r} is already dead")
        container.fail(self._sim.now)
        self.failures += 1
        if self.tracer is not None:
            self.tracer.emit(Eviction(
                time=self._sim.now, container=container.container_id,
                resource=("reserved" if container.is_reserved
                          else "transient"),
                cause="fault", lifetime=container.lifetime))
        replacement = self._launch(container.kind) if replace else None
        if self._on_eviction is not None:
            self._on_eviction(container, replacement)
        return replacement

    def schedule_failure(self, container: Container, delay: float,
                         replace: bool = True) -> None:
        """Inject a fault ``delay`` seconds from now (if still alive)."""

        def fire() -> None:
            if container.alive:
                self.inject_failure(container, replace=replace)

        self._sim.schedule_fast(delay, fire, priority=EVICTION_PRIORITY)
