"""Inter-job scheduling policies for the multi-tenant cluster.

A policy answers one question: *given the queue, the shared pool, and the
current time, which queued jobs start now?* All three policies are
work-conserving within their own invariant and do tick-local capacity
accounting, so a single ``select`` call can dispatch several jobs
atomically at one simulated instant:

* :class:`FifoPolicy` — strict arrival order with head-of-line blocking:
  nothing behind a job that does not fit may start before it.
* :class:`FairSharePolicy` — weighted fair share over consumed
  container-seconds: among queued jobs that fit, always start a job of
  the tenant with the lowest ``usage / weight``. Backlogged tenants
  accumulate usage, so a light tenant's next job always overtakes them —
  sustained load cannot starve anyone.
* :class:`ReservedQuotaPolicy` — the reserved pool is partitioned into
  per-tenant quotas (proportional to weight, largest-remainder rounded)
  while transient capacity floats freely: a tenant's job may start only
  if its reserved demand fits inside the tenant's own partition, and one
  tenant's reserved containers are never leased against another's quota.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.manager import LeasePool
from repro.cluster.tenancy.arrivals import JobRequest

POLICY_NAMES = ("fifo", "fair", "quota")


def reserved_quotas(num_reserved: int,
                    weights: dict[str, float]) -> dict[str, int]:
    """Partition ``num_reserved`` slots across tenants proportionally to
    weight, distributing remainders to the largest fractional parts
    (ties broken by tenant name for determinism)."""
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ValueError("tenant weights must sum to a positive value")
    exact = {tenant: num_reserved * weight / total_weight
             for tenant, weight in weights.items()}
    quotas = {tenant: int(share) for tenant, share in exact.items()}
    remainder = num_reserved - sum(quotas.values())
    by_fraction = sorted(exact,
                         key=lambda t: (quotas[t] - exact[t], t))
    for tenant in by_fraction[:remainder]:
        quotas[tenant] += 1
    return quotas


class InterJobPolicy:
    """Base policy: subclasses implement :meth:`select`."""

    name = "policy"

    def select(self, queue: Sequence[JobRequest], pool: LeasePool,
               now: float) -> list[JobRequest]:
        """The queued jobs to dispatch now, in dispatch order. Must not
        mutate ``queue`` and must respect pool capacity including the
        demand of jobs it already picked this tick."""
        raise NotImplementedError


class FifoPolicy(InterJobPolicy):
    """First-in-first-out with head-of-line blocking (arrival order is
    start order — the invariant the FIFO tests pin)."""

    name = "fifo"

    def select(self, queue: Sequence[JobRequest], pool: LeasePool,
               now: float) -> list[JobRequest]:
        picked = []
        reserved_free = pool.reserved_free
        transient_free = pool.transient_free
        for request in queue:
            if request.num_reserved > reserved_free \
                    or request.num_transient > transient_free:
                break
            picked.append(request)
            reserved_free -= request.num_reserved
            transient_free -= request.num_transient
        return picked


class FairSharePolicy(InterJobPolicy):
    """Weighted fair share over consumed container-seconds.

    A tenant's *usage* is the container-seconds accrued by all its leases
    (completed, revoked, and in-flight), divided by its weight; each
    ``select`` repeatedly starts the fitting job of the least-used
    tenant. Jobs picked earlier in the same tick are charged their
    nominal demand so one tenant cannot sweep a whole tick's capacity.
    """

    name = "fair"

    def __init__(self, weights: dict[str, float]) -> None:
        if any(w <= 0 for w in weights.values()):
            raise ValueError("tenant weights must be positive")
        self.weights = dict(weights)

    def select(self, queue: Sequence[JobRequest], pool: LeasePool,
               now: float) -> list[JobRequest]:
        picked: list[JobRequest] = []
        remaining = list(queue)
        reserved_free = pool.reserved_free
        transient_free = pool.transient_free
        usage = {tenant: pool.container_seconds(tenant=tenant, now=now)
                 / weight for tenant, weight in self.weights.items()}
        while True:
            best: Optional[JobRequest] = None
            for request in remaining:  # queue is in arrival order
                if request.num_reserved > reserved_free \
                        or request.num_transient > transient_free:
                    continue
                if best is None or usage.get(request.tenant, 0.0) \
                        < usage.get(best.tenant, 0.0):
                    best = request
            if best is None:
                return picked
            picked.append(best)
            remaining.remove(best)
            reserved_free -= best.num_reserved
            transient_free -= best.num_transient
            charge = ((best.num_reserved + best.num_transient)
                      * best.nominal_minutes * 60.0)
            usage[best.tenant] = usage.get(best.tenant, 0.0) \
                + charge / self.weights.get(best.tenant, 1.0)


class ReservedQuotaPolicy(InterJobPolicy):
    """Per-tenant reserved partitions; transient capacity floats.

    The invariant (pinned by tests): at every instant, each tenant's
    active reserved leases never exceed its quota — a job whose reserved
    demand would spill into another tenant's partition waits, however
    idle that partition is. Transient demand is first-come-first-served
    over the shared pool, and blocked jobs do not block later ones.
    """

    name = "quota"

    def __init__(self, quotas: dict[str, int]) -> None:
        if any(q < 0 for q in quotas.values()):
            raise ValueError("reserved quotas must be non-negative")
        self.quotas = dict(quotas)

    def select(self, queue: Sequence[JobRequest], pool: LeasePool,
               now: float) -> list[JobRequest]:
        picked = []
        reserved_free = pool.reserved_free
        transient_free = pool.transient_free
        headroom = {tenant: quota - pool.reserved_in_use(tenant)
                    for tenant, quota in self.quotas.items()}
        for request in queue:
            if request.tenant not in headroom:
                raise ValueError(
                    f"no reserved quota configured for {request.tenant!r}")
            if request.num_reserved > headroom[request.tenant] \
                    or request.num_reserved > reserved_free \
                    or request.num_transient > transient_free:
                continue
            picked.append(request)
            headroom[request.tenant] -= request.num_reserved
            reserved_free -= request.num_reserved
            transient_free -= request.num_transient
        return picked


def make_policy(name: str, weights: dict[str, float],
                num_reserved: int) -> InterJobPolicy:
    """Instantiate a policy by registry name (``fifo``/``fair``/``quota``)."""
    if name == "fifo":
        return FifoPolicy()
    if name == "fair":
        return FairSharePolicy(weights)
    if name == "quota":
        return ReservedQuotaPolicy(reserved_quotas(num_reserved, weights))
    raise ValueError(f"unknown inter-job policy {name!r}; "
                     f"choose from {', '.join(POLICY_NAMES)}")
