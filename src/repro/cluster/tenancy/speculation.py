"""Speculative pre-execution of inner jobs for the multi-tenant loop.

:class:`~repro.cluster.tenancy.cluster.MultiTenantCluster` calls its
``execute_batch`` callback synchronously at every dispatch instant, and
most batches hold one or two jobs — so a parallel inner-job backend
idles through every outer-loop round-trip. This module closes that gap
the way Pado itself hides transient-resource cost: by *planning around
what is already known*. At any instant the outer loop knows

* every future **arrival** (the diurnal schedule is generated up front),
* every pending **completion** (the instant an outcome is scheduled,
  its finish time ``now + jct`` is fixed), and
* that eviction **waves never change pool capacity** (``revoke_wave``
  re-grants replacement leases in the same tick).

:class:`DispatchPredictor` therefore replays the outer event loop
*forward* against a lightweight :class:`_ProjectedPool` — the exact
O(1) counters the policies read, advanced through future completions
and arrivals — and asks the *real* policy object which queued job
starts at which instant. Arrival and completion instants are replayed
with the same float arithmetic the simulator uses, so a predicted
``(JobRequest, start_time)`` pair is bit-exact unless an
as-yet-unknown completion (of a job dispatched inside the projection,
whose JCT nobody knows yet) or an elastic-reserve rebalance intervenes.

:class:`SpeculativeBatchExecutor` wraps any ``BatchExecutor``: between
dispatch instants it pre-submits the predicted jobs' inner ``RunSpec``\\ s
(the spec content hash covers the exact re-based
:data:`~repro.cluster.tenancy.cluster.WaveOffsets`, so an exact-key hit
is *provably the same simulation*); on a real dispatch it consumes the
exact match or falls back to the wrapped executor. A wrong guess costs
only compute — the result still lands in the on-disk
:class:`~repro.bench.runner.ResultCache` where later mtsweep/psweep
cells can reuse it — and can never leak into records, because consumption
requires the full ``(JobRequest, WaveOffsets)`` key to match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.cluster.tenancy.arrivals import JobRequest
from repro.cluster.tenancy.cluster import (BatchExecutor, JobOutcome,
                                           WaveOffsets)
from repro.errors import SimulationError

#: One speculation key: exactly the per-job arguments ``execute_batch``
#: receives, so key equality implies the inner simulation is identical.
SpeculationKey = tuple[JobRequest, WaveOffsets]

#: Upper bound on speculations kept in flight at once (guesses beyond
#: this are deferred to the next refill, not dropped).
DEFAULT_MAX_INFLIGHT = 16

#: How many future events (arrivals + known completions) one prediction
#: pass replays before giving up — bounds prediction cost per refill.
DEFAULT_LOOKAHEAD_EVENTS = 64


@dataclass
class SpeculationStats:
    """Speculation bookkeeping, mirrored into
    :class:`~repro.bench.runner.RunnerStats` by the bench layer.

    ``submitted`` counts pre-submitted jobs; every one ends as either a
    ``hit`` (consumed by a real dispatch with the exact key) or
    ``wasted`` (discarded — superseded prediction, job dispatched under
    a different key, or leftovers at run end). ``cancelled`` is the
    subset of ``wasted`` whose execution was called off before it
    started, i.e. waste that cost nothing.
    """

    submitted: int = 0
    hits: int = 0
    wasted: int = 0
    cancelled: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.submitted if self.submitted else 0.0


class _ProjectedPool:
    """Forward-projected view of a :class:`~repro.cluster.manager.LeasePool`.

    Duck-types exactly the surface the three inter-job policies read —
    ``reserved_free`` / ``transient_free`` / ``reserved_in_use`` /
    ``container_seconds(tenant=..., now=...)`` — over copied counters,
    so the *real* policy object can be asked what it would dispatch at a
    future instant without touching the live pool.

    Accounting mirrors the pool's incremental triples
    (``completed + active*now - granted_sum``) with the same per-lease
    update order, so projected fair-share usage matches the live pool to
    float rounding. Waves need no modeling at all: a wave revokes and
    re-grants in the same tick, leaving free counts, per-tenant reserved
    use, and the container-seconds *value* unchanged (only the internal
    split of a triple shifts, which can perturb fair-share comparisons
    by float epsilons — a misprediction risk, never a correctness one).
    """

    def __init__(self) -> None:
        self.reserved_free = 0
        self.transient_free = 0
        self._reserved_by_tenant: dict[str, int] = {}
        self._tenant_acct: dict[str, list[float]] = {}
        self._job_acct: dict[str, list[float]] = {}
        self._job_demand: dict[str, tuple[str, int, int]] = {}

    @classmethod
    def snapshot(cls, cluster: Any) -> "_ProjectedPool":
        pool = cluster.pool
        view = cls()
        view.reserved_free = pool.reserved_free
        view.transient_free = pool.transient_free
        view._reserved_by_tenant = dict(pool._reserved_by_tenant)
        view._tenant_acct = {tenant: list(acct) for tenant, acct
                             in pool._tenant_acct.items()}
        for job_id in pool.active_jobs():
            view._job_acct[job_id] = list(pool._job_acct[job_id])
            request = cluster._records[job_id].request
            view._job_demand[job_id] = (request.tenant,
                                        request.num_reserved,
                                        request.num_transient)
        return view

    def reserved_in_use(self, tenant: str) -> int:
        return self._reserved_by_tenant.get(tenant, 0)

    def container_seconds(self, job_id: Optional[str] = None,
                          tenant: Optional[str] = None,
                          now: float = 0.0) -> float:
        if tenant is None:
            raise NotImplementedError(
                "projection only tracks per-tenant accounting")
        acct = self._tenant_acct.get(tenant)
        if acct is None:
            return 0.0
        return acct[0] + acct[1] * now - acct[2]

    def complete(self, job_id: str, finish_time: float) -> None:
        """Release a projected job at its known completion instant."""
        tenant, num_reserved, num_transient = self._job_demand.pop(job_id)
        acct = self._job_acct.pop(job_id)
        tenant_acct = self._tenant_acct[tenant]
        # Identical to releasing each lease: active*f - granted_sum is
        # the held seconds of every active lease summed.
        tenant_acct[0] += acct[1] * finish_time - acct[2]
        tenant_acct[1] -= acct[1]
        tenant_acct[2] -= acct[2]
        self.reserved_free += num_reserved
        self.transient_free += num_transient
        self._reserved_by_tenant[tenant] -= num_reserved

    def dispatch(self, request: JobRequest, start_time: float) -> None:
        """Lease a projected job's whole allocation at ``start_time``."""
        total = request.num_reserved + request.num_transient
        tenant_acct = self._tenant_acct.setdefault(
            request.tenant, [0.0, 0, 0.0])
        job_acct = [0.0, 0, 0.0]
        for _ in range(total):          # per-grant order, like the pool
            for acct in (job_acct, tenant_acct):
                acct[1] += 1
                acct[2] += start_time
        self._job_acct[request.job_id] = job_acct
        self._job_demand[request.job_id] = (request.tenant,
                                            request.num_reserved,
                                            request.num_transient)
        self.reserved_free -= request.num_reserved
        self.transient_free -= request.num_transient
        self._reserved_by_tenant[request.tenant] = \
            self._reserved_by_tenant.get(request.tenant, 0) \
            + request.num_reserved


class DispatchPredictor:
    """Predicts the cluster's next dispatches: ``(request, start_time,
    wave_offsets)`` tuples, in projected dispatch order.

    The projection replays the outer event loop over what is already
    determined — future arrivals (all known up front) and pending
    completions (known the instant each outcome is scheduled) — with the
    event ordering the simulator uses (arrivals before completions at
    equal times, both in scheduling order), asking the real policy what
    it would start after each event. Jobs dispatched *inside* the
    projection hold their capacity forever (their JCTs are unknown), so
    deep predictions are conservative rather than guessed.
    """

    def __init__(self, cluster: Any,
                 lookahead_events: int = DEFAULT_LOOKAHEAD_EVENTS) -> None:
        self._cluster = cluster
        self.lookahead_events = lookahead_events

    def predict(self, budget: int) \
            -> list[tuple[JobRequest, float, WaveOffsets]]:
        if budget <= 0:
            return []
        cluster = self._cluster
        view = _ProjectedPool.snapshot(cluster)
        queue = list(cluster._queue)
        policy = cluster.policy
        now = cluster._sim.now

        events: list[tuple[float, int, int, Any]] = []
        for order, request in enumerate(
                cluster._requests[cluster._arrival_cursor:]):
            events.append((request.arrival_time, 0, order, request))
        for order, (job_id, finish_time) in enumerate(
                cluster._pending_completions.items()):
            events.append((finish_time, 1, order, job_id))
        events.sort(key=lambda event: event[:3])

        predicted: list[tuple[JobRequest, float, WaveOffsets]] = []
        # The policy may already pass on the current queue state (the
        # real loop's select at `now` ran just before this refill, so
        # re-dispatching now would double-predict — start at the events).
        for event_time, kind, _, payload in events[:self.lookahead_events]:
            if event_time < now:
                continue
            if kind == 0:
                queue.append(payload)
            else:
                view.complete(payload, event_time)
            picked = policy.select(tuple(queue), view, event_time)
            for request in picked:
                queue.remove(request)
                view.dispatch(request, event_time)
                predicted.append((request, event_time,
                                  cluster._wave_offsets(event_time)))
            if len(predicted) >= budget:
                break
        return predicted[:budget]


class SpeculativeBatchExecutor:
    """Wraps a :data:`~repro.cluster.tenancy.cluster.BatchExecutor` with
    predict-ahead submission over an asynchronous backend.

    The cluster calls this object exactly like any executor; in between,
    its dispatch loop calls :meth:`refill` (after every dispatch attempt
    and once before the event loop starts) to keep up to ``max_inflight``
    predicted jobs in flight. The backend is abstracted as three
    callables so the executor never depends on the bench layer:

    * ``submit(request, wave_offsets) -> handle`` — start the inner
      simulation asynchronously;
    * ``resolve(handle) -> JobOutcome`` — block for its outcome;
    * ``cancel(handle) -> bool`` (optional) — try to call off work that
      has not started (a False return means it runs to completion and
      lands in the result cache for later reuse).

    Exactness is structural: a speculation is consumed only on an exact
    ``(JobRequest, WaveOffsets)`` match — the full argument tuple the
    real executor would receive — so a consumed result is the same
    simulation, and a discarded one never reaches the cluster's records.
    At most one speculation per job is kept; a fresher prediction for
    the same job supersedes (discards) the stale one.
    """

    def __init__(self, inner: BatchExecutor, *,
                 submit: Callable[[JobRequest, WaveOffsets], Any],
                 resolve: Callable[[Any], JobOutcome],
                 cancel: Optional[Callable[[Any], bool]] = None,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 lookahead_events: int = DEFAULT_LOOKAHEAD_EVENTS) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._inner = inner
        self._submit = submit
        self._resolve = resolve
        self._cancel = cancel
        self.max_inflight = max_inflight
        self.lookahead_events = lookahead_events
        self.stats = SpeculationStats()
        self._entries: dict[SpeculationKey, Any] = {}
        self._key_of_job: dict[str, SpeculationKey] = {}
        self._predictor: Optional[DispatchPredictor] = None

    # -- cluster protocol

    def bind(self, cluster: Any) -> None:
        """Attach to the cluster whose dispatches should be predicted
        (called by ``MultiTenantCluster.run``)."""
        self._predictor = DispatchPredictor(
            cluster, lookahead_events=self.lookahead_events)

    def refill(self) -> None:
        """Predict upcoming dispatches and submit what is not already in
        flight, up to ``max_inflight``. No-op until :meth:`bind`."""
        if self._predictor is None:
            return
        if len(self._entries) >= self.max_inflight:
            return
        for request, _, waves in self._predictor.predict(self.max_inflight):
            key: SpeculationKey = (request, waves)
            if key in self._entries:
                continue
            stale = self._key_of_job.get(request.job_id)
            if stale is not None:
                # The prediction for this job moved (a different start
                # instant rebased its waves); the old guess can never
                # match a real dispatch anymore.
                self._discard(stale)
            if len(self._entries) >= self.max_inflight:
                break
            self._entries[key] = self._submit(request, waves)
            self._key_of_job[request.job_id] = key
            self.stats.submitted += 1

    def finish(self) -> None:
        """Discard every speculation still in flight (run teardown)."""
        for key in list(self._entries):
            self._discard(key)

    # -- BatchExecutor protocol

    def __call__(self, batch: Sequence[tuple[JobRequest, WaveOffsets]]) \
            -> Sequence[JobOutcome]:
        outcomes: dict[int, JobOutcome] = {}
        missing: list[tuple[JobRequest, WaveOffsets]] = []
        missing_index: list[int] = []
        for index, (request, waves) in enumerate(batch):
            handle = self._entries.pop((request, waves), None)
            if handle is not None:
                del self._key_of_job[request.job_id]
                self.stats.hits += 1
                outcomes[index] = self._resolve(handle)
            else:
                missing.append((request, waves))
                missing_index.append(index)
        # A job dispatched under a different key than its speculation
        # can never hit later — drop the stale guess now.
        for request, _ in batch:
            stale = self._key_of_job.get(request.job_id)
            if stale is not None:
                self._discard(stale)
        if missing:
            fresh = self._inner(missing)
            if len(fresh) != len(missing):
                raise SimulationError(
                    f"inner executor returned {len(fresh)} outcomes "
                    f"for {len(missing)} jobs")
            for index, outcome in zip(missing_index, fresh):
                outcomes[index] = outcome
        return [outcomes[index] for index in range(len(batch))]

    # -- internals

    def _discard(self, key: SpeculationKey) -> None:
        handle = self._entries.pop(key, None)
        if handle is None:
            return
        self._key_of_job.pop(key[0].job_id, None)
        self.stats.wasted += 1
        if self._cancel is not None and self._cancel(handle):
            self.stats.cancelled += 1
