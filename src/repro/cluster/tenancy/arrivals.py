"""Diurnal job arrivals and correlated eviction waves.

Both exogenous processes of the multi-tenant cluster are derived from the
same synthetic Google-trace load shape (:mod:`repro.trace.google_trace`):
the mean latency-critical memory usage across containers, normalized to
mean 1.0 and tiled periodically, modulates

* the **job arrival rate** — tenants submit more work at daytime peaks —
  via a non-homogeneous Poisson process sampled by thinning, and
* the **eviction-wave rate** — the latency-critical side reclaims
  transient memory exactly when its own load peaks, so reclamation
  arrives in cluster-wide bursts rather than independently per container.

Every sample is drawn from one seeded generator, so a given seed produces
one immutable arrival schedule and one immutable wave schedule — the
property the determinism tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.trace.google_trace import TraceConfig, generate_trace

#: Mean eviction waves per hour for each paper eviction regime; modulated
#: by the diurnal load shape, so peak-hour waves are more frequent.
WAVE_RATE_PER_HOUR = {"none": 0.0, "low": 1.0, "medium": 2.5, "high": 6.0}

#: Per-regime (min, max) fraction of transient containers a wave claims.
WAVE_SEVERITY = {"low": (0.10, 0.35), "medium": (0.20, 0.50),
                 "high": (0.30, 0.70)}


@dataclass(frozen=True)
class JobTemplate:
    """One kind of tenant job: a workload at a scale with a demand shape.

    ``nominal_minutes`` is the rough failure-free runtime used only to
    calibrate the offered load (and fair-share's within-tick estimates);
    actual runtimes come from the engine simulation.
    """

    workload: str
    engine: str
    scale: float
    num_reserved: int
    num_transient: int
    nominal_minutes: float
    share: float

    def demand_seconds(self) -> float:
        """Nominal transient-container-seconds one such job consumes."""
        return self.num_transient * self.nominal_minutes * 60.0


#: Default tenant-job mix: mostly small MR jobs across all three engines,
#: plus heavier MLR/ALS training jobs (the paper's three workloads).
DEFAULT_TEMPLATES: tuple[JobTemplate, ...] = (
    JobTemplate("mr", "pado", 0.02, 1, 6, 1.2, 0.30),
    JobTemplate("mr", "spark", 0.02, 1, 6, 1.2, 0.15),
    JobTemplate("mr", "spark-checkpoint", 0.02, 1, 6, 1.3, 0.15),
    JobTemplate("mlr", "pado", 0.05, 2, 10, 17.0, 0.22),
    JobTemplate("als", "pado", 0.03, 1, 8, 8.0, 0.18),
)


@dataclass(frozen=True)
class JobRequest:
    """One job submitted to the multi-tenant cluster."""

    job_id: str
    tenant: str
    arrival_time: float
    workload: str
    engine: str
    scale: float
    num_reserved: int
    num_transient: int
    seed: int
    nominal_minutes: float


@dataclass(frozen=True)
class ArrivalConfig:
    """Knobs of the diurnal arrival process.

    ``load`` is the offered-load factor: the arrival rate is calibrated so
    the jobs' *nominal* transient demand equals ``load`` times the pool's
    transient capacity (``load`` near 1 saturates the cluster and queueing
    delays dominate JCT).
    """

    load: float = 0.8
    num_tenants: int = 4
    tenant_weights: Optional[tuple[float, ...]] = None
    templates: tuple[JobTemplate, ...] = DEFAULT_TEMPLATES
    trace: TraceConfig = field(
        default_factory=lambda: TraceConfig(num_containers=12,
                                            duration_hours=24.0))

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ValueError("load factor must be positive")
        if self.num_tenants <= 0:
            raise ValueError("need at least one tenant")
        if not self.templates:
            raise ValueError("need at least one job template")
        if self.tenant_weights is not None \
                and len(self.tenant_weights) != self.num_tenants:
            raise ValueError("one weight per tenant required")

    def tenants(self) -> list[str]:
        return [f"tenant{i}" for i in range(self.num_tenants)]

    def weights(self) -> dict[str, float]:
        if self.tenant_weights is None:
            return {name: 1.0 for name in self.tenants()}
        return dict(zip(self.tenants(), self.tenant_weights))


class _DiurnalShape:
    """The normalized (mean 1.0) LC load curve, tiled periodically."""

    def __init__(self, trace_config: TraceConfig, seed: int) -> None:
        trace = generate_trace(trace_config, seed=seed)
        usage = np.mean([c.usage_bytes / c.capacity_bytes
                         for c in trace.containers], axis=0)
        self._shape = usage / float(np.mean(usage))
        self._interval = trace.interval_seconds
        self._period = len(self._shape) * self._interval
        self.peak = float(np.max(self._shape))

    def at(self, t: float) -> float:
        index = int((t % self._period) / self._interval)
        return float(self._shape[index])


def _thinned_poisson(shape: _DiurnalShape, mean_rate_per_second: float,
                     rng: np.random.Generator, *, count: Optional[int] = None,
                     horizon: Optional[float] = None) -> list[float]:
    """Non-homogeneous Poisson event times with rate
    ``mean_rate * shape(t)``, by thinning against the peak rate."""
    if mean_rate_per_second <= 0:
        return []
    peak_rate = mean_rate_per_second * shape.peak
    times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak_rate))
        if horizon is not None and t > horizon:
            break
        if float(rng.random()) * shape.peak <= shape.at(t):
            times.append(t)
            if count is not None and len(times) >= count:
                break
    return times


class DiurnalArrivalProcess:
    """Generates the job-arrival schedule for a multi-tenant run."""

    def __init__(self, config: ArrivalConfig, seed: int = 0) -> None:
        self.config = config
        self._seed = seed
        self._shape = _DiurnalShape(config.trace, seed)

    def mean_rate_per_second(self, transient_capacity: int) -> float:
        """Arrival rate at which nominal offered load equals
        ``config.load`` of the transient pool."""
        shares = np.array([t.share for t in self.config.templates])
        shares = shares / shares.sum()
        demand = sum(share * template.demand_seconds()
                     for share, template
                     in zip(shares, self.config.templates))
        return self.config.load * transient_capacity / demand

    def generate(self, num_jobs: int,
                 transient_capacity: int) -> list[JobRequest]:
        """The first ``num_jobs`` arrivals, deterministically from the
        process seed."""
        config = self.config
        rng = np.random.default_rng(self._seed)
        times = _thinned_poisson(
            self._shape, self.mean_rate_per_second(transient_capacity),
            rng, count=num_jobs)
        tenants = config.tenants()
        weights = np.array([config.weights()[t] for t in tenants])
        weights = weights / weights.sum()
        shares = np.array([t.share for t in config.templates])
        shares = shares / shares.sum()
        requests = []
        for i, arrival in enumerate(times):
            tenant = tenants[int(rng.choice(len(tenants), p=weights))]
            template = config.templates[
                int(rng.choice(len(config.templates), p=shares))]
            requests.append(JobRequest(
                job_id=f"job{i:04d}", tenant=tenant,
                arrival_time=round(arrival, 6),
                workload=template.workload, engine=template.engine,
                scale=template.scale,
                num_reserved=template.num_reserved,
                num_transient=template.num_transient,
                seed=int(rng.integers(0, 2**31 - 1)),
                nominal_minutes=template.nominal_minutes))
        return requests


class EvictionWaveProcess:
    """Generates the cluster-wide eviction-wave schedule.

    A wave is a ``(time, severity)`` pair: at ``time``, every active
    transient container in the cluster — across all tenants — is
    reclaimed with probability ``severity``, in one tick. Wave times
    follow the same diurnal shape as arrivals (reclamation happens when
    the latency-critical side is loaded); severities are uniform in the
    regime's band.
    """

    def __init__(self, eviction: str, trace_config: TraceConfig,
                 seed: int = 0) -> None:
        if eviction not in WAVE_RATE_PER_HOUR:
            raise ValueError(
                f"unknown eviction regime {eviction!r}; "
                f"choose from {sorted(WAVE_RATE_PER_HOUR)}")
        self.eviction = eviction
        self._seed = seed
        self._shape = _DiurnalShape(trace_config, seed)

    def generate(self, horizon_seconds: float) \
            -> tuple[tuple[float, float], ...]:
        """All waves in ``(0, horizon_seconds]`` for this seed."""
        rate = WAVE_RATE_PER_HOUR[self.eviction] / 3600.0
        if rate <= 0:
            return ()
        rng = np.random.default_rng(self._seed)
        times = _thinned_poisson(self._shape, rate, rng,
                                 horizon=horizon_seconds)
        low, high = WAVE_SEVERITY[self.eviction]
        return tuple((round(t, 6), round(float(rng.uniform(low, high)), 6))
                     for t in times)
