"""Multi-tenant transient cluster: inter-job scheduling over one shared pool.

The paper evaluates one job at a time on a private mix of reserved and
transient containers (§5.1.1). This package models the production regime a
datacenter actually runs: many tenants submit jobs continuously, the jobs
contend for one shared container pool, and transient reclamation arrives as
*correlated eviction waves* that hit every co-located job in the same tick
— the batch/latency-critical co-location regime of the Alibaba trace
studies. Three pieces compose:

* :mod:`~repro.cluster.tenancy.arrivals` — a diurnal (non-homogeneous
  Poisson) job arrival process and the correlated eviction-wave process,
  both driven by the synthetic Google-trace load shape
  (:mod:`repro.trace.google_trace`);
* :mod:`~repro.cluster.tenancy.policies` — pluggable inter-job scheduling
  policies: FIFO, weighted fair-share over container-seconds, and
  reserved-quota (per-tenant reserved partitions, floating transient);
* :mod:`~repro.cluster.tenancy.cluster` — the cluster-level event loop
  (:class:`MultiTenantCluster`) that queues arrivals, leases containers
  from the namespaced :class:`~repro.cluster.manager.LeasePool`, executes
  each dispatched job as a real engine simulation whose eviction schedule
  is pinned to the cluster-wide wave times, and records per-job JCT,
  queueing delay, and accounting.

The package is engine-agnostic: job execution is injected as a batch
callback, so tests drive it with stub durations and
:mod:`repro.bench.multitenant` wires it to the cached
:class:`~repro.bench.runner.SweepRunner` (``python -m repro mtsweep``).
Per-tenant JCT distributions are summarized by :mod:`repro.metrics.jct`.
See docs/MULTITENANCY.md.
"""

from repro.cluster.tenancy.arrivals import (ArrivalConfig,
                                            DiurnalArrivalProcess,
                                            EvictionWaveProcess, JobRequest,
                                            JobTemplate, WAVE_RATE_PER_HOUR)
from repro.cluster.tenancy.cluster import (JobOutcome, JobRecord,
                                           MultiTenantCluster, TenancyConfig,
                                           TenancyResult)
from repro.cluster.tenancy.policies import (FairSharePolicy, FifoPolicy,
                                            InterJobPolicy, POLICY_NAMES,
                                            ReservedQuotaPolicy, make_policy,
                                            reserved_quotas)
from repro.cluster.tenancy.speculation import (DispatchPredictor,
                                               SpeculationStats,
                                               SpeculativeBatchExecutor)

__all__ = [
    "ArrivalConfig", "DispatchPredictor", "DiurnalArrivalProcess",
    "EvictionWaveProcess",
    "FairSharePolicy", "FifoPolicy", "InterJobPolicy", "JobOutcome",
    "JobRecord",
    "JobRequest", "JobTemplate", "MultiTenantCluster", "POLICY_NAMES",
    "ReservedQuotaPolicy", "SpeculationStats", "SpeculativeBatchExecutor",
    "TenancyConfig", "TenancyResult",
    "WAVE_RATE_PER_HOUR", "make_policy", "reserved_quotas",
]
