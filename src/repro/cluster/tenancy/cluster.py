"""The cluster-level event loop of the multi-tenant simulation.

Two simulation levels compose here. The **outer** level is a
discrete-event loop (on the same :class:`~repro.cluster.events.Simulator`
the engines use) over job-granularity events: arrivals join the queue,
the inter-job policy picks jobs to start whenever capacity changes,
correlated eviction waves sweep the :class:`~repro.cluster.manager.LeasePool`,
and completions release leases. The **inner** level is one real engine
simulation per dispatched job, injected as the ``execute_batch`` callback;
each job's eviction schedule is the cluster-wide wave schedule shifted to
its own start time, so all jobs running at a wall-clock wave lose
containers at the same absolute instant even though they simulate
independently.

Everything is deterministic in ``TenancyConfig.seed``: arrivals, waves,
per-job engine seeds, and revocation draws each use their own fixed
substream, and dispatch order is defined by the policy over an
arrival-ordered queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from repro.cluster.events import Simulator
from repro.cluster.manager import LeasePool
from repro.cluster.tenancy.arrivals import (ArrivalConfig,
                                            DiurnalArrivalProcess,
                                            EvictionWaveProcess, JobRequest)
from repro.cluster.tenancy.policies import (InterJobPolicy,
                                            ReservedQuotaPolicy, make_policy)
from repro.errors import SimulationError
from repro.predict.elastic import ElasticReserveController

#: Wave schedules extend this far past the last arrival so jobs that queue
#: behind a long backlog still see correlated reclamation while running.
WAVE_SLACK_SECONDS = 24 * 3600.0

#: One job's eviction schedule: ``(offset_from_start, severity)`` pairs.
WaveOffsets = tuple[tuple[float, float], ...]


@dataclass(frozen=True)
class JobOutcome:
    """What the injected executor reports back for one dispatched job."""

    jct_seconds: float
    completed: bool
    evictions: int = 0


#: Runs a batch of dispatched jobs (each with its wave schedule relative
#: to its start time) and returns one :class:`JobOutcome` per job, in
#: order. ``repro.bench.multitenant`` wires this to the cached
#: ``SweepRunner``; tests inject stubs.
BatchExecutor = Callable[[Sequence[tuple[JobRequest, WaveOffsets]]],
                         Sequence[JobOutcome]]


class Speculator(Protocol):
    """What the cluster needs from a speculative executor (implemented by
    :class:`repro.cluster.tenancy.speculation.SpeculativeBatchExecutor`,
    which is also the ``execute_batch`` callable in practice): ``bind``
    attaches it to the cluster before the event loop starts, ``refill``
    is invoked after every dispatch attempt to keep guesses in flight,
    and ``finish`` discards leftovers at run teardown."""

    def bind(self, cluster: "MultiTenantCluster") -> None: ...

    def refill(self) -> None: ...

    def finish(self) -> None: ...


@dataclass
class JobRecord:
    """Lifecycle of one job through the multi-tenant cluster."""

    request: JobRequest
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    completed: bool = False
    #: Evictions observed inside the job's own engine simulation.
    evictions: int = 0
    #: Outer waves that revoked at least one of this job's leases.
    waves_hit: int = 0
    #: Total leases revoked from this job by outer waves.
    containers_revoked: int = 0
    container_seconds: float = 0.0

    @property
    def job_id(self) -> str:
        return self.request.job_id

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def queue_seconds(self) -> float:
        """Time spent waiting between arrival and dispatch."""
        if self.start_time is None:
            raise SimulationError(f"{self.job_id} never started")
        return self.start_time - self.request.arrival_time

    @property
    def run_seconds(self) -> float:
        """Time spent actually executing."""
        if self.start_time is None or self.finish_time is None:
            raise SimulationError(f"{self.job_id} never finished")
        return self.finish_time - self.start_time

    @property
    def jct_seconds(self) -> float:
        """Job completion time: queueing delay plus run time."""
        if self.finish_time is None:
            raise SimulationError(f"{self.job_id} never finished")
        return self.finish_time - self.request.arrival_time


@dataclass(frozen=True)
class TenancyConfig:
    """Configuration of one multi-tenant cluster run."""

    num_reserved: int = 8
    num_transient: int = 48
    policy: str = "fifo"
    eviction: str = "high"
    num_jobs: int = 80
    seed: int = 11
    #: Inner per-job engine time limit (and the window a job's wave
    #: schedule must cover).
    time_limit_minutes: float = 150.0
    #: ``"fixed"`` keeps the reserved/transient split static; ``"elastic"``
    #: lets a :class:`~repro.predict.elastic.ElasticReserveController`
    #: convert free slots between the tiers between dispatches.
    reserve: str = "fixed"
    arrival: ArrivalConfig = field(default_factory=ArrivalConfig)

    def __post_init__(self) -> None:
        if self.num_reserved < 0 or self.num_transient <= 0:
            raise ValueError("cluster needs transient capacity")
        if self.num_jobs <= 0:
            raise ValueError("need at least one job")
        if self.time_limit_minutes <= 0:
            raise ValueError("time limit must be positive")
        if self.reserve not in ("fixed", "elastic"):
            raise ValueError(
                f"unknown reserve mode {self.reserve!r}; "
                f"choose 'fixed' or 'elastic'")


@dataclass(frozen=True)
class TenancyResult:
    """Everything a multi-tenant run produced."""

    config: TenancyConfig
    records: tuple[JobRecord, ...]
    #: The exogenous wave schedule ``(time, severity)``.
    waves: tuple[tuple[float, float], ...]
    pool: LeasePool
    #: How many times the dispatch loop invoked ``execute_batch`` — the
    #: number of pool round-trips a per-batch (cold) executor would pay.
    dispatch_batches: int = 0

    @property
    def makespan(self) -> float:
        return max((r.finish_time for r in self.records
                    if r.finish_time is not None), default=0.0)

    def by_tenant(self) -> dict[str, list[JobRecord]]:
        grouped: dict[str, list[JobRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.tenant, []).append(record)
        return grouped


class MultiTenantCluster:
    """Queues arriving jobs on one shared pool under an inter-job policy.

    ``execute_batch`` receives every job the policy dispatches at one
    simulated instant (with each job's wave schedule re-based to its
    start) and returns their outcomes in order; the cluster schedules the
    completions and keeps the books.

    The loop calls ``execute_batch`` once per dispatch instant — dozens
    to hundreds of times per run, most batches small. Executors should
    therefore hold one warm :class:`~repro.bench.runner.SweepRunner`
    across the whole outer loop (see
    :func:`repro.bench.multitenant.sweep_executor`) rather than paying
    per-batch worker-pool startup.
    """

    def __init__(self, config: TenancyConfig,
                 execute_batch: BatchExecutor,
                 policy: Optional[InterJobPolicy] = None,
                 speculator: Optional[Speculator] = None) -> None:
        self.config = config
        self._execute_batch = execute_batch
        self.policy = policy if policy is not None else make_policy(
            config.policy, config.arrival.weights(), config.num_reserved)
        self._sim = Simulator()
        self.pool = LeasePool(config.num_reserved, config.num_transient)
        self._queue: list[JobRequest] = []
        self._records: dict[str, JobRecord] = {}
        self._waves: tuple[tuple[float, float], ...] = ()
        # Independent substreams: arrivals (seed), waves (seed+1),
        # revocation draws (seed+2), so changing e.g. the wave regime
        # never perturbs the arrival schedule.
        self._revoke_rng = np.random.default_rng(config.seed + 2)
        self._dispatch_batches = 0
        self.controller: Optional[ElasticReserveController] = None
        if config.reserve == "elastic":
            self.controller = ElasticReserveController(config.num_reserved)
        # State a DispatchPredictor projects forward: the full request
        # schedule with a cursor marking which arrivals already fired,
        # and the exact finish instant of every in-flight job.
        self._speculator = speculator
        self._requests: list[JobRequest] = []
        self._arrival_cursor = 0
        self._pending_completions: dict[str, float] = {}

    # ------------------------------------------------------------------
    # schedule generation and validation

    def _generate(self) -> list[JobRequest]:
        config = self.config
        arrivals = DiurnalArrivalProcess(config.arrival, seed=config.seed)
        requests = arrivals.generate(config.num_jobs, config.num_transient)
        for request in requests:
            if request.num_reserved > config.num_reserved \
                    or request.num_transient > config.num_transient:
                raise SimulationError(
                    f"{request.job_id} demands "
                    f"{request.num_reserved}R+{request.num_transient}T, "
                    f"beyond pool capacity "
                    f"{config.num_reserved}R+{config.num_transient}T")
        if isinstance(self.policy, ReservedQuotaPolicy):
            for request in requests:
                quota = self.policy.quotas.get(request.tenant, 0)
                if request.num_reserved > quota:
                    raise SimulationError(
                        f"{request.job_id} demands {request.num_reserved} "
                        f"reserved containers but tenant "
                        f"{request.tenant!r} has a quota of {quota}; "
                        f"the job could never start")
        horizon = (requests[-1].arrival_time if requests else 0.0) \
            + WAVE_SLACK_SECONDS
        waves = EvictionWaveProcess(
            config.eviction, config.arrival.trace,
            seed=config.seed + 1).generate(horizon)
        self._waves = waves
        return requests

    def _wave_offsets(self, start: float) -> WaveOffsets:
        """The cluster wave schedule re-based to a job starting at
        ``start``, clipped to the job's time-limit window."""
        window = start + self.config.time_limit_minutes * 60.0
        return tuple((round(t - start, 6), severity)
                     for t, severity in self._waves if start < t <= window)

    # ------------------------------------------------------------------
    # event handlers

    def _on_arrival(self, request: JobRequest) -> None:
        self._arrival_cursor += 1
        self._queue.append(request)
        self._try_dispatch()

    def _on_wave(self, severity: float) -> None:
        now = self._sim.now
        revoked = self.pool.revoke_wave(now, severity, self._revoke_rng)
        for job_id, count in revoked.items():
            record = self._records[job_id]
            record.waves_hit += 1
            record.containers_revoked += count
        if self.controller is not None:
            self.controller.record_revocations(now, sum(revoked.values()))

    def _on_completion(self, job_id: str) -> None:
        now = self._sim.now
        self._pending_completions.pop(job_id, None)
        record = self._records[job_id]
        record.finish_time = now
        record.container_seconds = self.pool.release_job(job_id, now)
        self._try_dispatch()

    def _try_dispatch(self) -> None:
        now = self._sim.now
        if self.controller is not None:
            # Rebalancing may unblock the head of the queue before the
            # policy looks at the pool.
            self.controller.rebalance(now, self.pool, self._queue)
        picked = self.policy.select(tuple(self._queue), self.pool, now)
        if picked:
            batch = []
            for request in picked:
                self._queue.remove(request)
                self.pool.lease(request.job_id, request.tenant,
                                request.num_reserved, request.num_transient,
                                now)
                self._records[request.job_id] = JobRecord(
                    request=request, start_time=now)
                batch.append((request, self._wave_offsets(now)))
            self._dispatch_batches += 1
            outcomes = self._execute_batch(batch)
            if len(outcomes) != len(batch):
                raise SimulationError(
                    f"executor returned {len(outcomes)} outcomes "
                    f"for {len(batch)} jobs")
            for (request, _), outcome in zip(batch, outcomes):
                record = self._records[request.job_id]
                record.completed = bool(outcome.completed)
                record.evictions = int(outcome.evictions)
                # The finish instant is fixed (and recorded) the moment
                # the outcome lands — this is what makes pending
                # completions exactly predictable between dispatches.
                finish = now + float(outcome.jct_seconds)
                self._pending_completions[request.job_id] = finish
                self._sim.schedule_at_fast(
                    finish,
                    lambda job_id=request.job_id: self._on_completion(job_id))
        if self._speculator is not None:
            # Capacity or queue state changed: refresh the guesses about
            # what dispatches next, onto workers that would otherwise
            # idle until the next outer event.
            self._speculator.refill()

    # ------------------------------------------------------------------
    # driver

    def run(self) -> TenancyResult:
        """Simulate the whole run; returns once every job has finished."""
        requests = self._generate()
        self._requests = requests
        if self.controller is not None and requests:
            # No conversion may ever make a generated demand unsatisfiable.
            self.controller.set_floors(
                max(r.num_reserved for r in requests),
                max(r.num_transient for r in requests))
        for request in requests:
            self._sim.schedule_at_fast(
                request.arrival_time,
                lambda request=request: self._on_arrival(request))
        for time, severity in self._waves:
            self._sim.schedule_at_fast(
                time, lambda severity=severity: self._on_wave(severity),
                priority=-1)
        if self._speculator is not None:
            # Prime the pipeline before the first event: the whole
            # arrival schedule is known, so the first dispatches can be
            # in flight before the loop even reaches them.
            self._speculator.bind(self)
            self._speculator.refill()
        try:
            self._sim.run()
        finally:
            if self._speculator is not None:
                self._speculator.finish()
        if self._queue:
            stuck = ", ".join(r.job_id for r in self._queue[:5])
            raise SimulationError(
                f"{len(self._queue)} jobs never dispatched ({stuck}...); "
                f"the policy deadlocked")
        records = tuple(self._records[r.job_id] for r in requests)
        return TenancyResult(config=self.config, records=records,
                             waves=self._waves, pool=self.pool,
                             dispatch_batches=self._dispatch_batches)
