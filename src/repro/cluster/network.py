"""Network and disk bandwidth model.

We model every bandwidth-limited device (a container's NIC direction, a
container's local disk, a storage server) as a FIFO queue: a request starts
when the device becomes free, occupies it for ``size / bandwidth`` seconds,
and the device is busy until then. A network transfer occupies the source's
outbound port and the destination's inbound port simultaneously, so transfer
time is driven by the more contended endpoint — the effect behind the paper's
observation that 5 stable-storage nodes serve shuffle data far slower than 45
executors (§5.2.1).

Transfers fail if the source container dies before the transfer completes;
eviction events are scheduled with a higher priority than transfer
completions, so a transfer completing at exactly the eviction instant is
conservatively counted as lost.

Completion scheduling is *flow batched*: because ``FifoPort.reserve`` fixes
every request's finish time deterministically at request time, each transfer
is queued on its bottleneck port's ``pending`` deque — where finish times
are monotone non-decreasing — and a single armed timer per port fires all
due completions, instead of one simulator event plus one closure per
transfer. To keep batching bit-identical to per-transfer scheduling, every
request takes a :meth:`~repro.cluster.events.Simulator.take_seq` tie-break
number at request time, the timer is armed *under the head request's seq*,
and the drain defers to any heap event that would have preceded the next
completion under ``(time, priority, seq)`` ordering. Simulated times, byte
counters, failure semantics, and same-timestamp event order are identical;
only the event count changes.

In-flight records themselves are packed into a :class:`TransferPool`: the
pending deques hold integer row indices into parallel arrays (finish time,
seq, endpoints, size, callback), and completed rows are recycled through a
free list, so steady-state traffic allocates no per-transfer objects.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Iterable, Optional, Protocol

from repro.cluster.events import Simulator
from repro.cluster.resources import Container
from repro.obs.events import DiskIO, Transfer
from repro.obs.tracer import Tracer

#: Event priority used for container evictions/failures so that they are
#: processed before transfer and task completions at the same timestamp.
EVICTION_PRIORITY = -10

#: Marks single-``transfer`` entries in the shared per-port queues; their
#: ``on_done`` takes just the result (no tag argument).
_NO_TAG = object()


def endpoint_label(endpoint: "Endpoint") -> str:
    """Trace label for an endpoint: ``reserved:<id>``, ``transient:<id>``,
    or ``ext`` for infinite endpoints (stores, the master, the sink)."""
    container = getattr(endpoint, "container", None)
    if container is None:
        return "ext"
    kind = "reserved" if container.is_reserved else "transient"
    return f"{kind}:{container.container_id}"


class FifoPort:
    """A bandwidth-limited device serving requests in FIFO order."""

    __slots__ = ("bandwidth", "_free_at", "_bytes_served", "pending",
                 "armed")

    def __init__(self, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self._free_at = 0.0
        self._bytes_served = 0.0
        #: Completion queue owned by the flow scheduler (NetworkModel or
        #: DiskModel) this port bottlenecks for: records in finish-time
        #: order, drained by one armed timer instead of one event each.
        self.pending: deque = deque()
        self.armed = False

    def reserve(self, now: float, size_bytes: float) -> tuple[float, float]:
        """Reserve the port for ``size_bytes``; returns (start, end) times."""
        start = max(now, self._free_at)
        end = start + size_bytes / self.bandwidth
        self._free_at = end
        self._bytes_served += size_bytes
        return start, end

    @property
    def bytes_served(self) -> int:
        """Bytes served so far, rounded once at read time (the counter
        accumulates exact float sizes, so fractional shares don't drift)."""
        return round(self._bytes_served)

    def free_at(self) -> float:
        return self._free_at


class Endpoint(Protocol):
    """Anything a transfer can start from or arrive at."""

    def outbound(self) -> FifoPort: ...

    def inbound(self) -> FifoPort: ...

    def is_alive(self) -> bool: ...


class ContainerEndpoint:
    """Network endpoint backed by a container's NIC (full duplex)."""

    def __init__(self, container: Container) -> None:
        self.container = container
        self._out = FifoPort(container.spec.network_bandwidth)
        self._in = FifoPort(container.spec.network_bandwidth)

    def outbound(self) -> FifoPort:
        return self._out

    def inbound(self) -> FifoPort:
        return self._in

    def is_alive(self) -> bool:
        return self.container.alive


class InfiniteEndpoint:
    """An endpoint that is never the bottleneck (e.g. the S3-like input
    store, whose aggregate bandwidth far exceeds any single reader's NIC)."""

    def __init__(self, bandwidth: float = math.inf) -> None:
        self._port = _InfinitePort() if math.isinf(bandwidth) else \
            FifoPort(bandwidth)

    def outbound(self) -> FifoPort:
        return self._port  # type: ignore[return-value]

    def inbound(self) -> FifoPort:
        return self._port  # type: ignore[return-value]

    def is_alive(self) -> bool:
        return True


class _InfinitePort:
    """FifoPort stand-in with unlimited bandwidth."""

    bandwidth = math.inf

    def __init__(self) -> None:
        self._bytes_served = 0.0
        self.pending: deque = deque()
        self.armed = False

    def reserve(self, now: float, size_bytes: float) -> tuple[float, float]:
        self._bytes_served += size_bytes
        return now, now

    @property
    def bytes_served(self) -> int:
        return round(self._bytes_served)

    def free_at(self) -> float:
        return 0.0


class TransferResult:
    """Outcome passed to a transfer's completion callback."""

    __slots__ = ("ok", "finished_at", "size_bytes")

    def __init__(self, ok: bool, finished_at: float, size_bytes: int) -> None:
        self.ok = ok
        self.finished_at = finished_at
        self.size_bytes = size_bytes


class TransferPool:
    """Record-packed in-flight transfer state, indexed by integer row.

    Port ``pending`` deques hold small ints naming rows in these parallel
    arrays instead of per-transfer 8-tuples; a completed row returns to a
    LIFO free list and is reused by the next request, so steady-state
    traffic allocates no per-transfer objects at all. The same row layout
    serves disk I/O (``src``/``dst`` unused, ``tag`` holds the is_write
    flag), letting :class:`DiskModel` instances share one pool.
    """

    __slots__ = ("finish", "seq", "src", "dst", "size", "requested_at",
                 "on_done", "tag", "_free")

    def __init__(self, capacity: int = 0) -> None:
        self.finish = [0.0] * capacity
        self.seq = [0] * capacity
        self.src: list = [None] * capacity
        self.dst: list = [None] * capacity
        self.size = [0.0] * capacity
        self.requested_at = [0.0] * capacity
        self.on_done: list = [None] * capacity
        self.tag: list = [None] * capacity
        self._free = list(range(capacity - 1, -1, -1))

    def alloc(self, finish: float, seq: int, src, dst, size: float,
              requested_at: float, on_done, tag) -> int:
        free = self._free
        if free:
            row = free.pop()
        else:
            row = len(self.finish)
            self.finish.append(0.0)
            self.seq.append(0)
            self.src.append(None)
            self.dst.append(None)
            self.size.append(0.0)
            self.requested_at.append(0.0)
            self.on_done.append(None)
            self.tag.append(None)
        self.finish[row] = finish
        self.seq[row] = seq
        self.src[row] = src
        self.dst[row] = dst
        self.size[row] = size
        self.requested_at[row] = requested_at
        self.on_done[row] = on_done
        self.tag[row] = tag
        return row

    def release(self, row: int) -> None:
        # Drop object references so recycled rows don't pin endpoints or
        # closures; scalar columns are overwritten on the next alloc.
        self.src[row] = None
        self.dst[row] = None
        self.on_done[row] = None
        self.tag[row] = None
        self._free.append(row)

    def in_flight(self) -> int:
        """Rows currently allocated (in some port's pending deque)."""
        return len(self.finish) - len(self._free)


class NetworkModel:
    """Schedules point-to-point transfers on the simulator.

    Beyond one-at-a-time :meth:`transfer`, whole fetch plans can be
    reserved in bulk: :meth:`transfer_many` takes ``(src, dst, size, tag)``
    requests sharing a single ``on_done(tag, result)`` callback, and the
    :meth:`begin_plan` / :meth:`plan_transfer` / :meth:`commit_plan` trio
    lets a master collect a plan while walking its fetch specs. Plans nest
    (a fetch cascade may launch tasks that open their own plan); entries
    queue on one shared buffer and reserve when the outermost plan commits.
    Each queued entry takes its tie-break seq at queue time, and a plain
    :meth:`transfer` issued while a plan is open flushes the queued
    entries first, so both port reservation order and same-timestamp event
    order always equal request order — the properties the bit-identical
    parity goldens rest on.
    """

    def __init__(self, sim: Simulator, latency: float = 0.001,
                 tracer: Optional[Tracer] = None) -> None:
        self._sim = sim
        self.latency = latency
        self.tracer = tracer
        self.bytes_transferred = 0
        self.transfers_failed = 0
        # Interned endpoint labels; only populated when a tracer is
        # attached (the untraced path never formats a label).
        self._labels: dict = {}
        self._plan: list = []
        self._plan_depth = 0
        self._pool = TransferPool()

    def _label(self, endpoint: Endpoint) -> str:
        label = self._labels.get(endpoint)
        if label is None:
            label = endpoint_label(endpoint)
            self._labels[endpoint] = label
        return label

    # ------------------------------------------------------------------
    # transfer APIs

    def transfer(self, src: Endpoint, dst: Endpoint, size_bytes: float,
                 on_done: Callable[[TransferResult], None]) -> None:
        """Move ``size_bytes`` from ``src`` to ``dst``.

        ``on_done`` fires once with a :class:`TransferResult`; ``ok`` is False
        if either endpoint died before completion (the data never arrived).
        Zero-byte transfers still pay one network latency, modelling control
        messages such as output commits (§3.2.5).
        """
        if size_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        if self._plan:
            self._flush_plan()
        if not src.is_alive() or not dst.is_alive():
            self._fail_dead(src, dst, size_bytes, on_done, _NO_TAG)
            return
        self._enqueue(src, dst, size_bytes, on_done, _NO_TAG)

    def transfer_many(self, requests: Iterable[tuple],
                      on_done: Callable) -> None:
        """Reserve a whole fetch plan in one call.

        ``requests`` yields ``(src, dst, size_bytes, tag)``;
        ``on_done(tag, result)`` fires once per request at exactly the
        finish time the same sequence of :meth:`transfer` calls would
        produce, but the whole plan shares one completion callback and
        (per bottleneck port) one armed timer.
        """
        for src, dst, size_bytes, tag in requests:
            if size_bytes < 0:
                raise ValueError("transfer size must be non-negative")
            if not src.is_alive() or not dst.is_alive():
                self._fail_dead(src, dst, size_bytes, on_done, tag)
                continue
            self._enqueue(src, dst, size_bytes, on_done, tag)

    # ------------------------------------------------------------------
    # open fetch plans

    @property
    def plan_open(self) -> bool:
        """True while a bulk fetch plan is being collected."""
        return self._plan_depth > 0

    def begin_plan(self) -> None:
        """Open a bulk plan: :meth:`plan_transfer` entries queue until the
        matching :meth:`commit_plan`. Plans nest; entries reserve when the
        outermost plan commits (or earlier, if a plain :meth:`transfer`
        forces a flush)."""
        self._plan_depth += 1

    def plan_transfer(self, src: Endpoint, dst: Endpoint, size_bytes: float,
                      tag, on_done: Callable) -> None:
        """Queue one entry on the open plan; ``on_done(tag, result)``
        fires at completion exactly as a :meth:`transfer` issued here
        would have (the entry's tie-break seq is taken now)."""
        if size_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        self._plan.append((src, dst, size_bytes, tag, on_done,
                           self._sim.take_seq()))

    def commit_plan(self) -> None:
        """Close one plan level; the outermost close reserves and schedules
        everything still queued."""
        self._plan_depth -= 1
        if self._plan_depth == 0 and self._plan:
            self._flush_plan()

    def _flush_plan(self) -> None:
        # Reserve queued plan entries now so an interleaved plain transfer
        # cannot overtake them on a shared port. Liveness is checked at
        # flush time, which is equivalent to queue time: the whole
        # queue-and-flush happens within one simulator event, so no
        # eviction can interleave.
        plan = self._plan
        self._plan = []
        for src, dst, size_bytes, tag, on_done, seq in plan:
            if not src.is_alive() or not dst.is_alive():
                self._fail_dead(src, dst, size_bytes, on_done, tag, seq)
            else:
                self._enqueue(src, dst, size_bytes, on_done, tag, seq)

    # ------------------------------------------------------------------
    # scheduling

    def _fail_dead(self, src: Endpoint, dst: Endpoint, size_bytes: float,
                   on_done: Callable, tag, seq: Optional[int] = None) -> None:
        now = self._sim.now
        self.transfers_failed += 1
        if self.tracer is not None:
            self.tracer.emit(Transfer(time=now, src=self._label(src),
                                      dst=self._label(dst),
                                      size_bytes=float(size_bytes),
                                      requested_at=now, ok=False))
        result = TransferResult(False, now, int(size_bytes))
        if tag is _NO_TAG:
            callback = lambda: on_done(result)  # noqa: E731
        else:
            callback = lambda: on_done(tag, result)  # noqa: E731
        if seq is None:
            self._sim.schedule_fast(0.0, callback)
        else:
            self._sim.schedule_at_seq(now, seq, callback)

    def _enqueue(self, src: Endpoint, dst: Endpoint, size_bytes: float,
                 on_done: Callable, tag, seq: Optional[int] = None) -> None:
        sim = self._sim
        now = sim.now
        if seq is None:
            seq = sim.take_seq()
        sport = src.outbound()
        dport = dst.inbound()
        _, src_end = sport.reserve(now, size_bytes)
        _, dst_end = dport.reserve(now, size_bytes)
        # The transfer completes when its *bottleneck* port frees (ties go
        # to the destination), so each port's pending queue stays sorted by
        # finish time and needs only one armed timer.
        if src_end > dst_end:
            port, finish = sport, src_end + self.latency
        else:
            port, finish = dport, dst_end + self.latency
        port.pending.append(self._pool.alloc(
            finish, seq, src, dst, size_bytes, now, on_done, tag))
        if not port.armed:
            port.armed = True
            sim.schedule_at_seq(finish, seq, lambda: self._drain(port))

    def _drain(self, port: FifoPort) -> None:
        sim = self._sim
        now = sim.now
        heap = sim._heap
        pending = port.pending
        tracer = self.tracer
        pool = self._pool
        finish_col = pool.finish
        seq_col = pool.seq
        while pending:
            row = pending[0]
            finish = finish_col[row]
            if finish > now:
                break
            # Defer to any heap event that would have sorted before this
            # completion under per-transfer scheduling — including entries
            # appended by the callbacks below, whose fresh seqs land after
            # everything already queued at this timestamp.
            if heap:
                top = heap[0]
                seq = seq_col[row]
                if top[0] <= finish and (
                        top[1] < 0 or (top[1] == 0 and top[2] < seq)):
                    break
            pending.popleft()
            src = pool.src[row]
            dst = pool.dst[row]
            size_bytes = pool.size[row]
            requested_at = pool.requested_at[row]
            on_done = pool.on_done[row]
            tag = pool.tag[row]
            # Recycle before the callback runs: any transfer it enqueues
            # reuses this row (the values above are already in locals).
            pool.release(row)
            ok = src.is_alive() and dst.is_alive()
            if ok:
                self.bytes_transferred += int(size_bytes)
            else:
                self.transfers_failed += 1
            if tracer is not None:
                tracer.emit(Transfer(time=now, src=self._label(src),
                                     dst=self._label(dst),
                                     size_bytes=float(size_bytes),
                                     requested_at=requested_at, ok=ok))
            if tag is _NO_TAG:
                on_done(TransferResult(ok, now, int(size_bytes)))
            else:
                on_done(tag, TransferResult(ok, now, int(size_bytes)))
        if pending:
            row = pending[0]
            sim.schedule_at_seq(finish_col[row], seq_col[row],
                                lambda: self._drain(port))
        else:
            port.armed = False


class DiskModel:
    """Local-disk bandwidth of a container, shared by reads and writes.

    I/O completions batch through the disk port's pending queue the same
    way network transfers do: one armed timer per busy period instead of
    one simulator event per request. With a tracer attached every
    completed (or failed) I/O emits a :class:`~repro.obs.events.DiskIO`
    event.
    """

    def __init__(self, sim: Simulator, container: Container,
                 tracer: Optional[Tracer] = None,
                 pool: Optional[TransferPool] = None) -> None:
        self._sim = sim
        self.container = container
        self.tracer = tracer
        self._port = FifoPort(container.spec.disk_bandwidth)
        self._pool = pool if pool is not None else TransferPool()
        self._bytes_written = 0.0
        self._bytes_read = 0.0

    @property
    def bytes_written(self) -> int:
        return round(self._bytes_written)

    @property
    def bytes_read(self) -> int:
        return round(self._bytes_read)

    def write(self, size_bytes: float,
              on_done: Optional[Callable[[bool], None]] = None) -> None:
        self._io(size_bytes, on_done, is_write=True)

    def read(self, size_bytes: float,
             on_done: Optional[Callable[[bool], None]] = None) -> None:
        self._io(size_bytes, on_done, is_write=False)

    def _io(self, size_bytes: float,
            on_done: Optional[Callable[[bool], None]], is_write: bool) -> None:
        if size_bytes < 0:
            raise ValueError("I/O size must be non-negative")
        sim = self._sim
        now = sim.now
        seq = sim.take_seq()
        port = self._port
        _, end = port.reserve(now, size_bytes)
        port.pending.append(self._pool.alloc(
            end, seq, None, None, size_bytes, now, on_done, is_write))
        if not port.armed:
            port.armed = True
            sim.schedule_at_seq(end, seq, self._drain)

    def _drain(self) -> None:
        sim = self._sim
        now = sim.now
        heap = sim._heap
        port = self._port
        pending = port.pending
        tracer = self.tracer
        pool = self._pool
        finish_col = pool.finish
        seq_col = pool.seq
        while pending:
            row = pending[0]
            end = finish_col[row]
            if end > now:
                break
            if heap:
                top = heap[0]
                seq = seq_col[row]
                if top[0] <= end and (
                        top[1] < 0 or (top[1] == 0 and top[2] < seq)):
                    break
            pending.popleft()
            size_bytes = pool.size[row]
            requested_at = pool.requested_at[row]
            on_done = pool.on_done[row]
            is_write = pool.tag[row]
            pool.release(row)
            ok = self.container.alive
            if ok:
                if is_write:
                    self._bytes_written += size_bytes
                else:
                    self._bytes_read += size_bytes
            if tracer is not None:
                container = self.container
                tracer.emit(DiskIO(
                    time=now, container=container.container_id,
                    resource=("reserved" if container.is_reserved
                              else "transient"),
                    op="write" if is_write else "read",
                    size_bytes=float(size_bytes), requested_at=requested_at,
                    ok=ok))
            if on_done is not None:
                on_done(ok)
        if pending:
            row = pending[0]
            sim.schedule_at_seq(finish_col[row], seq_col[row], self._drain)
        else:
            port.armed = False
