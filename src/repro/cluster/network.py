"""Network and disk bandwidth model.

We model every bandwidth-limited device (a container's NIC direction, a
container's local disk, a storage server) as a FIFO queue: a request starts
when the device becomes free, occupies it for ``size / bandwidth`` seconds,
and the device is busy until then. A network transfer occupies the source's
outbound port and the destination's inbound port simultaneously, so transfer
time is driven by the more contended endpoint — the effect behind the paper's
observation that 5 stable-storage nodes serve shuffle data far slower than 45
executors (§5.2.1).

Transfers fail if the source container dies before the transfer completes;
eviction events are scheduled with a higher priority than transfer
completions, so a transfer completing at exactly the eviction instant is
conservatively counted as lost.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Protocol

from repro.cluster.events import Simulator
from repro.cluster.resources import Container
from repro.obs.events import Transfer
from repro.obs.tracer import Tracer

#: Event priority used for container evictions/failures so that they are
#: processed before transfer and task completions at the same timestamp.
EVICTION_PRIORITY = -10


def endpoint_label(endpoint: "Endpoint") -> str:
    """Trace label for an endpoint: ``reserved:<id>``, ``transient:<id>``,
    or ``ext`` for infinite endpoints (stores, the master, the sink)."""
    container = getattr(endpoint, "container", None)
    if container is None:
        return "ext"
    kind = "reserved" if container.is_reserved else "transient"
    return f"{kind}:{container.container_id}"


class FifoPort:
    """A bandwidth-limited device serving requests in FIFO order."""

    __slots__ = ("bandwidth", "_free_at", "bytes_served")

    def __init__(self, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self._free_at = 0.0
        self.bytes_served = 0

    def reserve(self, now: float, size_bytes: float) -> tuple[float, float]:
        """Reserve the port for ``size_bytes``; returns (start, end) times."""
        start = max(now, self._free_at)
        end = start + size_bytes / self.bandwidth
        self._free_at = end
        self.bytes_served += int(size_bytes)
        return start, end

    def free_at(self) -> float:
        return self._free_at


class Endpoint(Protocol):
    """Anything a transfer can start from or arrive at."""

    def outbound(self) -> FifoPort: ...

    def inbound(self) -> FifoPort: ...

    def is_alive(self) -> bool: ...


class ContainerEndpoint:
    """Network endpoint backed by a container's NIC (full duplex)."""

    def __init__(self, container: Container) -> None:
        self.container = container
        self._out = FifoPort(container.spec.network_bandwidth)
        self._in = FifoPort(container.spec.network_bandwidth)

    def outbound(self) -> FifoPort:
        return self._out

    def inbound(self) -> FifoPort:
        return self._in

    def is_alive(self) -> bool:
        return self.container.alive


class InfiniteEndpoint:
    """An endpoint that is never the bottleneck (e.g. the S3-like input
    store, whose aggregate bandwidth far exceeds any single reader's NIC)."""

    def __init__(self, bandwidth: float = math.inf) -> None:
        self._port = _InfinitePort() if math.isinf(bandwidth) else \
            FifoPort(bandwidth)

    def outbound(self) -> FifoPort:
        return self._port  # type: ignore[return-value]

    def inbound(self) -> FifoPort:
        return self._port  # type: ignore[return-value]

    def is_alive(self) -> bool:
        return True


class _InfinitePort:
    """FifoPort stand-in with unlimited bandwidth."""

    bandwidth = math.inf
    bytes_served = 0

    def reserve(self, now: float, size_bytes: float) -> tuple[float, float]:
        self.bytes_served += int(size_bytes)
        return now, now

    def free_at(self) -> float:
        return 0.0


class TransferResult:
    """Outcome passed to a transfer's completion callback."""

    __slots__ = ("ok", "finished_at", "size_bytes")

    def __init__(self, ok: bool, finished_at: float, size_bytes: int) -> None:
        self.ok = ok
        self.finished_at = finished_at
        self.size_bytes = size_bytes


class NetworkModel:
    """Schedules point-to-point transfers on the simulator."""

    def __init__(self, sim: Simulator, latency: float = 0.001,
                 tracer: Optional[Tracer] = None) -> None:
        self._sim = sim
        self.latency = latency
        self.tracer = tracer
        self.bytes_transferred = 0
        self.transfers_failed = 0

    def transfer(self, src: Endpoint, dst: Endpoint, size_bytes: float,
                 on_done: Callable[[TransferResult], None]) -> None:
        """Move ``size_bytes`` from ``src`` to ``dst``.

        ``on_done`` fires once with a :class:`TransferResult`; ``ok`` is False
        if either endpoint died before completion (the data never arrived).
        Zero-byte transfers still pay one network latency, modelling control
        messages such as output commits (§3.2.5).
        """
        if size_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        now = self._sim.now
        tracer = self.tracer
        if not src.is_alive() or not dst.is_alive():
            self.transfers_failed += 1
            if tracer is not None:
                tracer.emit(Transfer(time=now, src=endpoint_label(src),
                                     dst=endpoint_label(dst),
                                     size_bytes=float(size_bytes),
                                     requested_at=now, ok=False))
            self._sim.schedule_fast(
                0.0, lambda: on_done(TransferResult(False, now, int(size_bytes))))
            return
        _, src_end = src.outbound().reserve(now, size_bytes)
        _, dst_end = dst.inbound().reserve(now, size_bytes)
        finish = max(src_end, dst_end) + self.latency

        def complete() -> None:
            ok = src.is_alive() and dst.is_alive()
            if ok:
                self.bytes_transferred += int(size_bytes)
            else:
                self.transfers_failed += 1
            if tracer is not None:
                tracer.emit(Transfer(time=self._sim.now,
                                     src=endpoint_label(src),
                                     dst=endpoint_label(dst),
                                     size_bytes=float(size_bytes),
                                     requested_at=now, ok=ok))
            on_done(TransferResult(ok, self._sim.now, int(size_bytes)))

        self._sim.schedule_at_fast(finish, complete)


class DiskModel:
    """Local-disk bandwidth of a container, shared by reads and writes."""

    def __init__(self, sim: Simulator, container: Container) -> None:
        self._sim = sim
        self.container = container
        self._port = FifoPort(container.spec.disk_bandwidth)
        self.bytes_written = 0
        self.bytes_read = 0

    def write(self, size_bytes: float,
              on_done: Optional[Callable[[bool], None]] = None) -> None:
        self._io(size_bytes, on_done, is_write=True)

    def read(self, size_bytes: float,
             on_done: Optional[Callable[[bool], None]] = None) -> None:
        self._io(size_bytes, on_done, is_write=False)

    def _io(self, size_bytes: float,
            on_done: Optional[Callable[[bool], None]], is_write: bool) -> None:
        if size_bytes < 0:
            raise ValueError("I/O size must be non-negative")
        _, end = self._port.reserve(self._sim.now, size_bytes)

        def complete() -> None:
            ok = self.container.alive
            if ok:
                if is_write:
                    self.bytes_written += int(size_bytes)
                else:
                    self.bytes_read += int(size_bytes)
            if on_done is not None:
                on_done(ok)

        self._sim.schedule_at_fast(end, complete)
