"""Eviction-lineage analysis: which eviction cost how much recomputation.

The paper's Figure 2 argues that conventional engines waste enormous work
recomputing after evictions while Pado relaunches only the uncommitted
tasks of the running stage (§3.2.5). This module turns a recorded event
stream into that argument *as measured data*: every abandoned task attempt
is paired with the :class:`~repro.obs.events.Relaunch` that killed it, and
every relaunch is attributed — through its ``cause_ref`` — to the eviction
or fault responsible.

The accounting reconciles exactly with the engine's own
:class:`~repro.engines.base.JobResult` counters:

* the number of ``TaskStart`` events equals ``launched_tasks``;
* for a completed run, ``starts - unique_tasks`` (each task's extra starts)
  equals ``relaunched_tasks = launched_tasks - original_tasks``.

:meth:`LineageReport.verify_against` asserts both, making traces
trustworthy inputs for cost analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.events import (RELAUNCH_CAUSE_CATEGORIES, Eviction,
                              ProactivePush, Relaunch, TaskCommitted,
                              TaskStart, TraceEvent)

__all__ = ["AttemptRecord", "EvictionImpact", "LineageReport",
           "analyze_eviction_lineage"]


@dataclass
class AttemptRecord:
    """One task attempt reconstructed from the event stream.

    ``busy_seconds`` is the time the attempt actively occupied resources:
    start to commit for committed attempts, start to abandonment for
    relaunched ones. For an attempt that committed and was *later* reset
    (a reserved-side repair re-running preserved work), the busy time stays
    start-to-commit — that is the work that must be redone.
    """

    stage: int
    task: str
    index: int
    attempt: int
    resource: str
    start: float
    end: Optional[float] = None
    outcome: str = "open"          # open | committed | relaunched
    cause: Optional[str] = None
    cause_ref: Optional[int] = None

    @property
    def key(self) -> tuple:
        return (self.stage, self.task, self.index)

    @property
    def busy_seconds(self) -> float:
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)


@dataclass
class EvictionImpact:
    """Everything one eviction (or fault) cost the job."""

    container: int
    time: Optional[float] = None
    relaunched_tasks: int = 0
    recompute_seconds: float = 0.0
    tasks: list[tuple] = field(default_factory=list)


@dataclass
class LineageReport:
    """Aggregated lineage over one run's trace."""

    attempts: list[AttemptRecord]
    starts: int
    unique_tasks: int
    by_eviction: dict[int, EvictionImpact]
    by_cause: dict[str, EvictionImpact]
    #: Local outputs replicated ahead of predicted evictions, and how
    #: many of those replicas were actually swapped in after the eviction
    #: landed — recomputes *avoided*, the complement of the suffered
    #: ``upstream_lost`` bucket (see docs/PREDICTION.md).
    proactive_pushes: int = 0
    recomputes_avoided: int = 0

    @property
    def relaunched_tasks(self) -> int:
        """Task launches beyond the first per task — matches
        ``JobResult.relaunched_tasks`` on completed runs."""
        return self.starts - self.unique_tasks

    @property
    def by_category(self) -> dict[str, EvictionImpact]:
        """``by_cause`` folded through the engine-neutral taxonomy of
        :data:`repro.obs.events.RELAUNCH_CAUSE_CATEGORIES`, so the same
        buckets (``eviction``, ``fetch_broke``, ``upstream_lost``,
        ``master_restart``) are comparable across engines. When
        proactive pushes restored replicas, an extra
        ``recompute_avoided`` bucket counts the upstream recomputes that
        *would* have joined ``upstream_lost`` but never ran (zero
        recompute seconds by construction)."""
        merged: dict[str, EvictionImpact] = {}
        for cause, impact in self.by_cause.items():
            category = RELAUNCH_CAUSE_CATEGORIES.get(cause, "other")
            tally = merged.setdefault(category, EvictionImpact(container=-1))
            tally.relaunched_tasks += impact.relaunched_tasks
            tally.recompute_seconds += impact.recompute_seconds
            tally.tasks.extend(impact.tasks)
        if self.recomputes_avoided:
            merged["recompute_avoided"] = EvictionImpact(
                container=-1, relaunched_tasks=self.recomputes_avoided)
        return merged

    @property
    def recompute_seconds(self) -> float:
        """Total task-seconds of work that had to be redone."""
        return sum(a.busy_seconds for a in self.attempts
                   if a.outcome == "relaunched")

    def verify_against(self, result) -> None:
        """Check the trace against a ``JobResult``; raises ``ValueError``
        on any mismatch (duck-typed to avoid importing the engines)."""
        if self.starts != result.launched_tasks:
            raise ValueError(
                f"trace has {self.starts} TaskStart events but the engine "
                f"counted {result.launched_tasks} launched tasks")
        if result.completed and \
                self.relaunched_tasks != result.relaunched_tasks:
            raise ValueError(
                f"lineage attributes {self.relaunched_tasks} relaunches but "
                f"the engine counted {result.relaunched_tasks}")


def analyze_eviction_lineage(events: list[TraceEvent]) -> LineageReport:
    """Reconstruct attempts and attribute each relaunch to its cause."""
    attempts: list[AttemptRecord] = []
    open_by_key: dict[tuple, AttemptRecord] = {}
    unique: set = set()
    starts = 0
    eviction_times: dict[int, float] = {}
    proactive_pushes = 0
    recomputes_avoided = 0

    for event in events:
        if isinstance(event, TaskStart):
            starts += 1
            record = AttemptRecord(
                stage=event.stage, task=event.task, index=event.index,
                attempt=event.attempt, resource=event.resource,
                start=event.time)
            unique.add(record.key)
            attempts.append(record)
            open_by_key[(record.key, event.attempt)] = record
        elif isinstance(event, TaskCommitted):
            key = ((event.stage, event.task, event.index), event.attempt)
            record = open_by_key.get(key)
            if record is not None and record.outcome == "open":
                record.end = event.time
                record.outcome = "committed"
        elif isinstance(event, Relaunch):
            key = ((event.stage, event.task, event.index), event.attempt)
            record = open_by_key.pop(key, None)
            if record is None:
                continue  # reset before ever starting: costs nothing
            if record.outcome == "open":
                record.end = event.time
            # committed-then-reset keeps its commit end: that much work
            # is being thrown away and redone.
            record.outcome = "relaunched"
            record.cause = event.cause
            record.cause_ref = event.cause_ref
        elif isinstance(event, Eviction):
            eviction_times[event.container] = event.time
        elif isinstance(event, ProactivePush):
            if event.restored:
                recomputes_avoided += 1
            else:
                proactive_pushes += 1

    by_eviction: dict[int, EvictionImpact] = {}
    by_cause: dict[str, EvictionImpact] = {}
    for record in attempts:
        if record.outcome != "relaunched":
            continue
        ident = (record.stage, record.task, record.index, record.attempt)
        if record.cause_ref is not None:
            impact = by_eviction.setdefault(
                record.cause_ref,
                EvictionImpact(container=record.cause_ref,
                               time=eviction_times.get(record.cause_ref)))
            impact.relaunched_tasks += 1
            impact.recompute_seconds += record.busy_seconds
            impact.tasks.append(ident)
        cause = record.cause or "unknown"
        tally = by_cause.setdefault(cause, EvictionImpact(container=-1))
        tally.relaunched_tasks += 1
        tally.recompute_seconds += record.busy_seconds
        tally.tasks.append(ident)

    return LineageReport(attempts=attempts, starts=starts,
                         unique_tasks=len(unique),
                         by_eviction=by_eviction, by_cause=by_cause,
                         proactive_pushes=proactive_pushes,
                         recomputes_avoided=recomputes_avoided)
