"""Trace serialization: JSONL for analysis, Chrome ``trace_event`` for eyes.

JSONL is the archival format: one :func:`~repro.obs.events.event_to_dict`
object per line, lossless (``events_from_jsonl`` rebuilds the typed
events). The Chrome format is a *view*: task attempts become complete
(``"X"``) duration events grouped by stage (pid) and executor (tid),
evictions/relaunches/fetch-misses become instant (``"i"``) markers, and
network transfers get their own synthetic process lane. Load the file in
``chrome://tracing`` or https://ui.perfetto.dev to scrub through a run.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from repro.obs.events import (DiskIO, Eviction, FetchMiss, Relaunch,
                              StageEnd, StageStart, TaskCommitted, TaskPushed,
                              TaskStart, TraceEvent, Transfer, event_from_dict,
                              event_to_dict)

__all__ = ["to_jsonl", "write_jsonl", "events_from_jsonl",
           "to_chrome_trace", "write_chrome_trace"]

#: pid of the synthetic "network" process lane in Chrome traces.
NETWORK_PID = 9999

_US = 1_000_000  # trace_event timestamps are microseconds


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """One compact JSON object per line, in emission order."""
    return "\n".join(json.dumps(event_to_dict(e), sort_keys=True)
                     for e in events)


def write_jsonl(events: Iterable[TraceEvent], path) -> pathlib.Path:
    """Write :func:`to_jsonl` output to ``path``; returns the path."""
    path = pathlib.Path(path)
    text = to_jsonl(events)
    path.write_text(text + "\n" if text else "")
    return path


def events_from_jsonl(text: str) -> list[TraceEvent]:
    """Rebuild typed events from JSONL text (inverse of :func:`to_jsonl`)."""
    return [event_from_dict(json.loads(line))
            for line in text.splitlines() if line.strip()]


def to_chrome_trace(events: list[TraceEvent]) -> dict:
    """Convert a trace to the Chrome ``trace_event`` JSON object format."""
    out: list[dict] = []
    horizon = max((e.time for e in events), default=0.0)
    stages_seen: set[int] = set()

    # Pair each TaskStart with the end of its attempt: committed, pushed
    # (slot released — the compute portion), relaunched, or still open at
    # the trace horizon.
    open_attempts: dict[tuple, TaskStart] = {}

    def close(key: tuple, end_time: float, outcome: str) -> None:
        start = open_attempts.pop(key, None)
        if start is None:
            return
        out.append({
            "name": f"{start.task}[{start.index}]#a{start.attempt}",
            "cat": f"task,{outcome}",
            "ph": "X",
            "ts": start.time * _US,
            "dur": max(0.0, end_time - start.time) * _US,
            "pid": start.stage,
            "tid": start.executor,
            "args": {"resource": start.resource, "attempt": start.attempt,
                     "outcome": outcome},
        })

    for event in events:
        if isinstance(event, TaskStart):
            stages_seen.add(event.stage)
            key = (event.stage, event.task, event.index, event.attempt)
            # A lost start (no terminal event) closes at the horizon below.
            open_attempts[key] = event
        elif isinstance(event, TaskCommitted):
            close((event.stage, event.task, event.index, event.attempt),
                  event.time, "committed")
        elif isinstance(event, Relaunch):
            close((event.stage, event.task, event.index, event.attempt),
                  event.time, "relaunched")
            out.append({
                "name": f"relaunch {event.task}[{event.index}]"
                        f" ({event.cause})",
                "cat": "relaunch", "ph": "i", "s": "g",
                "ts": event.time * _US, "pid": event.stage, "tid": 0,
                "args": {"cause": event.cause,
                         "cause_ref": event.cause_ref},
            })
        elif isinstance(event, TaskPushed):
            out.append({
                "name": f"push {event.task}[{event.index}]",
                "cat": "push", "ph": "i", "s": "t",
                "ts": event.time * _US,
                "pid": event.stage, "tid": event.executor,
                "args": {"size_bytes": event.size_bytes},
            })
        elif isinstance(event, (StageStart, StageEnd)):
            stages_seen.add(event.stage)
            out.append({
                "name": f"stage {event.stage} ({event.name})",
                "cat": "stage",
                "ph": "B" if isinstance(event, StageStart) else "E",
                "ts": event.time * _US, "pid": event.stage, "tid": 0,
            })
        elif isinstance(event, Eviction):
            out.append({
                "name": f"{event.cause} {event.resource}:{event.container}",
                "cat": "eviction", "ph": "i", "s": "g",
                "ts": event.time * _US, "pid": NETWORK_PID, "tid": 0,
                "args": {"container": event.container,
                         "resource": event.resource,
                         "lifetime": event.lifetime},
            })
        elif isinstance(event, FetchMiss):
            out.append({
                "name": f"fetch miss {event.op}[{event.index}]",
                "cat": "fetch-miss", "ph": "i", "s": "g",
                "ts": event.time * _US, "pid": NETWORK_PID, "tid": 0,
            })
        elif isinstance(event, Transfer):
            out.append({
                "name": f"{event.src} -> {event.dst}",
                "cat": "transfer" if event.ok else "transfer,failed",
                "ph": "X",
                "ts": event.requested_at * _US,
                "dur": max(0.0, event.time - event.requested_at) * _US,
                "pid": NETWORK_PID,
                "tid": _lane(event.src),
                "args": {"size_bytes": event.size_bytes, "ok": event.ok},
            })
        elif isinstance(event, DiskIO):
            out.append({
                "name": f"disk {event.op} {event.resource}:{event.container}",
                "cat": "disk" if event.ok else "disk,failed",
                "ph": "X",
                "ts": event.requested_at * _US,
                "dur": max(0.0, event.time - event.requested_at) * _US,
                "pid": NETWORK_PID,
                "tid": event.container + 1,
                "args": {"size_bytes": event.size_bytes, "op": event.op,
                         "ok": event.ok},
            })

    for key in list(open_attempts):
        close(key, horizon, "open")

    meta = [{"ph": "M", "name": "process_name", "pid": NETWORK_PID,
             "args": {"name": "network + cluster events"}}]
    for stage in sorted(stages_seen):
        meta.append({"ph": "M", "name": "process_name", "pid": stage,
                     "args": {"name": f"stage {stage}"}})
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def _lane(label: str) -> int:
    """Stable small tid for a transfer source label."""
    if ":" in label:
        try:
            return int(label.rsplit(":", 1)[1]) + 1
        except ValueError:
            pass
    return 0


def write_chrome_trace(events: list[TraceEvent], path) -> pathlib.Path:
    """Write :func:`to_chrome_trace` output to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(to_chrome_trace(events)))
    return path
