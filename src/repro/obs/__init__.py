"""Structured simulation observability (see docs/OBSERVABILITY.md).

A zero-dependency event tracer for the engines: typed events
(:mod:`repro.obs.events`), a nullable :class:`Tracer` that costs nothing
when absent (:mod:`repro.obs.tracer`), JSONL and Chrome ``trace_event``
export (:mod:`repro.obs.export`), eviction-lineage attribution
(:mod:`repro.obs.lineage`), and time-breakdown summaries
(:mod:`repro.obs.report`).

Quick use::

    from repro import ClusterConfig, EvictionRate, PadoEngine
    from repro.obs import Tracer, analyze_eviction_lineage

    tracer = Tracer()
    result = engine.run(program, ClusterConfig(eviction=EvictionRate.HIGH),
                        tracer=tracer)
    lineage = analyze_eviction_lineage(tracer.events)
    lineage.verify_against(result)   # trace reconciles with JobResult
"""

from repro.obs.events import (EVENT_TYPES, DiskIO, Eviction, FetchMiss,
                              JobTag, PredictedEviction, ProactivePush,
                              Relaunch, StageEnd, StageStart,
                              TaskCommitted, TaskPushed, TaskQueued,
                              TaskStart, TraceEvent, Transfer,
                              event_from_dict, event_to_dict)
from repro.obs.export import (events_from_jsonl, to_chrome_trace, to_jsonl,
                              write_chrome_trace, write_jsonl)
from repro.obs.lineage import (AttemptRecord, EvictionImpact, LineageReport,
                               analyze_eviction_lineage)
from repro.obs.report import (DURATION_BUCKETS, ClassBreakdown, ObsReport,
                              build_report, efficiency_with_breakdown)
from repro.obs.tracer import (TraceCollector, Tracer, active_collector,
                              collecting, install_collector,
                              uninstall_collector)

__all__ = [
    "DURATION_BUCKETS", "EVENT_TYPES", "AttemptRecord", "ClassBreakdown",
    "DiskIO", "Eviction",
    "EvictionImpact", "FetchMiss", "JobTag", "LineageReport", "ObsReport",
    "PredictedEviction", "ProactivePush", "Relaunch",
    "StageEnd", "StageStart", "TaskCommitted", "TaskPushed", "TaskQueued",
    "TaskStart", "TraceCollector", "TraceEvent", "Tracer", "Transfer",
    "active_collector", "analyze_eviction_lineage", "build_report",
    "collecting", "efficiency_with_breakdown", "event_from_dict",
    "event_to_dict", "events_from_jsonl", "install_collector",
    "to_chrome_trace", "to_jsonl", "uninstall_collector",
    "write_chrome_trace", "write_jsonl",
]
