"""The structured event tracer and the per-process trace collector.

Tracing is strictly opt-in: every instrumented call site holds a *nullable*
tracer and guards emission with ``if tracer is not None``, so a run without
tracing pays one attribute load and branch per instrumented point — nothing
is allocated, formatted, or buffered.

Two ways to obtain traces:

* pass ``tracer=Tracer()`` to :meth:`repro.engines.base.EngineBase.run` and
  inspect ``tracer.events`` afterwards;
* install a :class:`TraceCollector` (see :func:`install_collector` or the
  :func:`collecting` context manager) and every subsequent engine run in the
  process records into its own labelled :class:`Tracer` — this is what the
  ``python -m repro --trace`` flag and the benchmark harness use.
"""

from __future__ import annotations

import contextlib
import pathlib
from typing import Iterator, Optional, Type, TypeVar

from repro.obs.events import TraceEvent

__all__ = ["Tracer", "TraceCollector", "install_collector",
           "uninstall_collector", "active_collector", "collecting"]

E = TypeVar("E", bound=TraceEvent)


class Tracer:
    """An append-only buffer of :class:`~repro.obs.events.TraceEvent`.

    The simulator is single-threaded and events are emitted as they happen,
    so ``events`` is causally ordered: timestamps are non-decreasing.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        """Record one event. Hot-path cost when tracing: one append."""
        self.events.append(event)

    def of_kind(self, event_type: Type[E]) -> list[E]:
        """All recorded events of one type, in emission order."""
        return [e for e in self.events if isinstance(e, event_type)]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


class TraceCollector:
    """Hands out labelled tracers, one per engine run, and dumps them.

    ``dump`` writes two files per run into a directory: ``<label>.jsonl``
    (one event per line, see :mod:`repro.obs.export`) and
    ``<label>.trace.json`` (Chrome ``trace_event`` format, loadable by
    ``chrome://tracing`` and Perfetto).
    """

    def __init__(self) -> None:
        self.runs: list[tuple[str, Tracer]] = []

    def new_tracer(self, label: str) -> Tracer:
        """Create and register a tracer; duplicate labels get a suffix."""
        taken = {name for name, _ in self.runs}
        unique = label
        serial = 2
        while unique in taken:
            unique = f"{label}-{serial}"
            serial += 1
        tracer = Tracer()
        self.runs.append((unique, tracer))
        return tracer

    def dump(self, directory) -> list[pathlib.Path]:
        """Write every run's JSONL and Chrome trace; returns the paths."""
        from repro.obs.export import write_chrome_trace, write_jsonl
        out = pathlib.Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        paths = []
        for label, tracer in self.runs:
            safe = "".join(c if c.isalnum() or c in "-._" else "_"
                           for c in label)
            jsonl = out / f"{safe}.jsonl"
            chrome = out / f"{safe}.trace.json"
            write_jsonl(tracer.events, jsonl)
            write_chrome_trace(tracer.events, chrome)
            paths.extend([jsonl, chrome])
        return paths


_active: Optional[TraceCollector] = None


def install_collector(collector: TraceCollector) -> None:
    """Make ``collector`` receive a tracer for every subsequent engine run."""
    global _active
    _active = collector


def uninstall_collector() -> None:
    """Stop collecting; runs go back to paying nothing."""
    global _active
    _active = None


def active_collector() -> Optional[TraceCollector]:
    """The installed collector, or None (the default)."""
    return _active


@contextlib.contextmanager
def collecting() -> Iterator[TraceCollector]:
    """Scope-bound collection::

        with collecting() as collector:
            PadoEngine().run(program, cluster)
        collector.dump("traces/")
    """
    collector = TraceCollector()
    previous = _active
    install_collector(collector)
    try:
        yield collector
    finally:
        install_collector(previous) if previous is not None \
            else uninstall_collector()
