"""Typed trace events — the vocabulary of the observability layer.

Every event is a small frozen dataclass stamped with the simulated time at
which it occurred. Together they let post-hoc analysis reconstruct exactly
the accounting the paper's evaluation (§4-5) argues from: where task
attempts ran, when their outputs escaped to the reserved side, which
evictions destroyed in-flight work, and which relaunches each eviction
caused.

The identity of a physical task across all engines is the triple
``(stage, task, index)``; ``attempt`` distinguishes relaunches of the same
task. Pado reserved receiver tasks use the task name ``"__root__"`` (their
stage index disambiguates); Spark chains use their fused-chain name with a
per-chain stage index.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional

__all__ = [
    "TraceEvent", "StageStart", "StageEnd", "TaskQueued", "TaskStart",
    "TaskPushed", "TaskCommitted", "Relaunch", "Eviction", "FetchMiss",
    "PredictedEviction", "ProactivePush",
    "Transfer", "DiskIO", "JobTag", "EVENT_TYPES",
    "RELAUNCH_CAUSE_CATEGORIES", "event_to_dict", "event_from_dict",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base of all trace events; ``time`` is simulated seconds."""

    time: float

    @property
    def kind(self) -> str:
        """Event type name as it appears in serialized traces."""
        return type(self).__name__


@dataclass(frozen=True)
class StageStart(TraceEvent):
    """A stage transitioned to RUNNING; ``name`` is its root chain."""

    stage: int
    name: str


@dataclass(frozen=True)
class StageEnd(TraceEvent):
    """Every task of the stage committed; its outputs are preserved."""

    stage: int
    name: str


@dataclass(frozen=True)
class TaskQueued(TraceEvent):
    """A task entered the scheduler queue (its inputs exist).

    ``queue_depth`` is the number of queued tasks right after insertion —
    the backpressure signal for diagnosing slot starvation.
    """

    task: str
    index: int
    attempt: int
    queue_depth: int


@dataclass(frozen=True)
class TaskStart(TraceEvent):
    """A task attempt was assigned an executor slot and began fetching.

    Emitted exactly where the engines count a launched task, so the number
    of ``TaskStart`` events in a trace equals ``JobResult.launched_tasks``.
    ``resource`` is ``"transient"``, ``"reserved"``, or ``"driver"``.
    """

    stage: int
    task: str
    index: int
    attempt: int
    executor: int
    resource: str


@dataclass(frozen=True)
class TaskPushed(TraceEvent):
    """A transient task finished computing and started pushing its output
    to the reserved side (§3.2.4); its slot is already released."""

    stage: int
    task: str
    index: int
    attempt: int
    executor: int
    size_bytes: float


@dataclass(frozen=True)
class TaskCommitted(TraceEvent):
    """The output-commit message reached the master (§3.2.5); this attempt's
    work can no longer be lost to a transient eviction."""

    stage: int
    task: str
    index: int
    attempt: int
    executor: int


#: Engine-neutral categories for :attr:`Relaunch.cause`. The cause strings
#: name the engine mechanism; the category names what *happened*, on a
#: vocabulary shared by every engine so cross-engine analysis can compare
#: like with like:
#:
#: * ``"eviction"`` — the attempt's own container (or its reserved
#:   receiver) died;
#: * ``"fetch_broke"`` — an input fetch failed mid-attempt;
#: * ``"upstream_lost"`` — a finished task re-ran because its preserved
#:   output (or a consumer of it) was lost;
#: * ``"master_restart"`` — the master recovered from a crash.
RELAUNCH_CAUSE_CATEGORIES: dict[str, str] = {
    "eviction": "eviction",
    "reserved-fault": "eviction",
    "fetch-failed": "fetch_broke",
    "local-output-lost": "upstream_lost",
    "lineage-recompute": "upstream_lost",
    "repair": "upstream_lost",
    "master-restart": "master_restart",
}


@dataclass(frozen=True)
class Relaunch(TraceEvent):
    """An attempt was abandoned and the task re-enqueued.

    ``attempt`` is the attempt being *abandoned* (the successor attempt is
    ``attempt + 1``). ``cause`` names the engine mechanism (``"eviction"``,
    ``"reserved-fault"``, ``"fetch-failed"``, ``"repair"``,
    ``"local-output-lost"``, ``"lineage-recompute"``, ``"master-restart"``);
    ``category`` is the engine-neutral grouping from
    :data:`RELAUNCH_CAUSE_CATEGORIES`, filled in automatically from
    ``cause`` when not supplied. ``cause_ref`` is the container id of the
    eviction/fault responsible, when one is known — the edge the lineage
    analyzer walks.
    """

    stage: int
    task: str
    index: int
    attempt: int
    cause: str
    cause_ref: Optional[int] = None
    category: Optional[str] = None

    def __post_init__(self) -> None:
        if self.category is None:
            object.__setattr__(
                self, "category",
                RELAUNCH_CAUSE_CATEGORIES.get(self.cause, "other"))


@dataclass(frozen=True)
class Eviction(TraceEvent):
    """A container died. ``cause`` is ``"eviction"`` (transient reclaim) or
    ``"fault"`` (injected machine failure, §3.2.6)."""

    container: int
    resource: str
    cause: str
    lifetime: Optional[float] = None


@dataclass(frozen=True)
class FetchMiss(TraceEvent):
    """A consumer asked for a preserved output that was not there — the
    lazy discovery of reserved-side data loss (§3.2.6), or a Spark shuffle
    fetch failure beginning a recomputation cascade (§2.2)."""

    op: str
    index: int


@dataclass(frozen=True)
class Transfer(TraceEvent):
    """A network transfer completed (or died with an endpoint).

    ``time`` is the completion instant; ``requested_at`` is when the
    transfer was enqueued, so ``time - requested_at`` includes FIFO port
    queueing. Endpoints are labelled ``"reserved:<id>"``,
    ``"transient:<id>"``, or ``"ext"`` (input store / sink / master).
    """

    src: str
    dst: str
    size_bytes: float
    requested_at: float
    ok: bool


@dataclass(frozen=True)
class DiskIO(TraceEvent):
    """A local-disk read or write completed (or died with its container).

    ``time`` is the completion instant; ``requested_at`` is when the I/O
    was queued on the disk's FIFO port, so ``time - requested_at``
    includes disk queueing. ``container``/``resource`` identify the disk's
    owner the way :class:`Transfer` labels endpoints; ``op`` is
    ``"read"`` or ``"write"``.
    """

    container: int
    resource: str
    op: str
    size_bytes: float
    requested_at: float
    ok: bool


@dataclass(frozen=True)
class PredictedEviction(TraceEvent):
    """The master's lifetime predictor flagged a live container.

    Emitted once per container the first time its predicted eviction
    probability (within the proactive-push horizon) crosses the
    configured threshold — the trigger for proactive re-replication.
    ``probability`` is the crossing value; ``age`` the container's age in
    seconds at the prediction.
    """

    container: int
    probability: float
    age: float


@dataclass(frozen=True)
class ProactivePush(TraceEvent):
    """One local output replicated ahead of a predicted eviction — or
    that replica paying off.

    With ``restored=False``: the master copied task ``(task, index)``'s
    local output (``size_bytes``) off at-risk container ``container``
    (executor id ``executor``) to a reserved home. With
    ``restored=True``: the at-risk container did die, and the replica
    was swapped in — a recompute *avoided* rather than suffered (the
    lineage category ``recompute_avoided``).
    """

    container: int
    task: str
    index: int
    size_bytes: float
    executor: int
    restored: bool = False


@dataclass(frozen=True)
class JobTag(TraceEvent):
    """Identifies the cluster-level job a trace belongs to.

    Multi-tenant runs (:mod:`repro.cluster.tenancy`) execute many engine
    jobs on one shared pool; each job's trace carries one ``JobTag`` so
    post-hoc analysis can group events by tenant and join them back to
    the cluster-level JCT records. ``time`` is the job's dispatch time on
    the *cluster* clock (inner-job events restart from zero);
    ``queue_seconds`` is how long the job waited before dispatch.
    """

    job: str
    tenant: str
    engine: str
    workload: str
    queue_seconds: float = 0.0


#: Registry used by deserialization and schema docs.
EVENT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (StageStart, StageEnd, TaskQueued, TaskStart, TaskPushed,
                TaskCommitted, Relaunch, Eviction, FetchMiss,
                PredictedEviction, ProactivePush, Transfer,
                DiskIO, JobTag)
}


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """Flat JSON-ready dict with a ``type`` discriminator."""
    payload = dataclasses.asdict(event)
    payload["type"] = event.kind
    return payload


def event_from_dict(payload: dict[str, Any]) -> TraceEvent:
    """Inverse of :func:`event_to_dict`; raises ``KeyError`` on unknown
    types so schema drift fails loudly."""
    data = dict(payload)
    cls = EVENT_TYPES[data.pop("type")]
    return cls(**data)
