"""Run summaries over a trace: where the time went, per container class.

Extends the :mod:`repro.metrics.utilization` accounting (which only sees a
:class:`~repro.engines.base.JobResult`) with measured time breakdowns from
the event stream: task-compute, recompute (work redone after evictions),
transfer, and idle seconds for the reserved and transient sides — the
quantities behind the paper's Figure 8c reserved-side-bottleneck argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.obs.events import DiskIO, TraceEvent, Transfer
from repro.obs.lineage import LineageReport, analyze_eviction_lineage

__all__ = ["ClassBreakdown", "ObsReport", "build_report",
           "efficiency_with_breakdown", "DURATION_BUCKETS"]

#: Upper bounds (seconds) of the task-duration histogram buckets.
DURATION_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0, math.inf)


@dataclass
class ClassBreakdown:
    """Second-level accounting for one resource class."""

    resource: str
    compute_seconds: float = 0.0      # committed attempts
    recompute_seconds: float = 0.0    # relaunched (wasted) attempts
    transfer_seconds: float = 0.0     # NIC busy time on either end
    idle_seconds: Optional[float] = None  # capacity - busy, if known

    def as_row(self) -> tuple:
        idle = "-" if self.idle_seconds is None \
            else f"{self.idle_seconds:.1f}"
        return (self.resource, f"{self.compute_seconds:.1f}",
                f"{self.recompute_seconds:.1f}",
                f"{self.transfer_seconds:.1f}", idle)


@dataclass
class ObsReport:
    """Trace-derived summary of one run."""

    breakdowns: dict[str, ClassBreakdown]
    duration_histogram: list[tuple[float, int]]
    lineage: LineageReport
    evictions_with_cost: int = 0
    #: Completed disk bytes per container id: ``{id: (read, written)}``.
    disk_bytes_by_container: Optional[dict[int, tuple[float, float]]] = None

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = ["time breakdown (task-seconds)",
                 f"{'class':<10} {'compute':>10} {'recompute':>10} "
                 f"{'transfer':>10} {'idle':>10}"]
        for name in sorted(self.breakdowns):
            b = self.breakdowns[name]
            row = b.as_row()
            lines.append(f"{row[0]:<10} {row[1]:>10} {row[2]:>10} "
                         f"{row[3]:>10} {row[4]:>10}")
        lines.append("")
        if self.disk_bytes_by_container:
            lines.append("local disk I/O per container (MB read / written)")
            for cid in sorted(self.disk_bytes_by_container):
                read, written = self.disk_bytes_by_container[cid]
                lines.append(f"  container {cid:<4} "
                             f"{read / 2**20:>10.1f} / "
                             f"{written / 2**20:<10.1f}")
            lines.append("")
        lines.append("committed task duration histogram (s)")
        for bound, count in self.duration_histogram:
            label = f"<= {bound:g}" if math.isfinite(bound) else "> rest"
            lines.append(f"  {label:<10} {count}")
        lines.append("")
        lines.append(
            f"relaunches: {self.lineage.relaunched_tasks} "
            f"({self.lineage.recompute_seconds:.1f} task-seconds redone, "
            f"{self.evictions_with_cost} evictions with attributed cost)")
        return "\n".join(lines)


def build_report(events: list[TraceEvent], result=None,
                 cluster=None) -> ObsReport:
    """Summarize a trace; ``result``/``cluster`` (a ``JobResult`` and
    ``ClusterConfig``, duck-typed) unlock the idle-time columns."""
    lineage = analyze_eviction_lineage(events)
    breakdowns: dict[str, ClassBreakdown] = {}

    def of(resource: str) -> ClassBreakdown:
        return breakdowns.setdefault(resource, ClassBreakdown(resource))

    histogram = [0] * len(DURATION_BUCKETS)
    for attempt in lineage.attempts:
        if attempt.outcome == "committed":
            of(attempt.resource).compute_seconds += attempt.busy_seconds
            for i, bound in enumerate(DURATION_BUCKETS):
                if attempt.busy_seconds <= bound:
                    histogram[i] += 1
                    break
        elif attempt.outcome == "relaunched":
            of(attempt.resource).recompute_seconds += attempt.busy_seconds

    disk_bytes: dict[int, tuple[float, float]] = {}
    for event in events:
        if isinstance(event, Transfer):
            if not event.ok:
                continue
            duration = max(0.0, event.time - event.requested_at)
            for label in (event.src, event.dst):
                resource = label.split(":", 1)[0]
                if resource in ("reserved", "transient"):
                    of(resource).transfer_seconds += duration
        elif isinstance(event, DiskIO) and event.ok:
            read, written = disk_bytes.get(event.container, (0.0, 0.0))
            if event.op == "read":
                read += event.size_bytes
            else:
                written += event.size_bytes
            disk_bytes[event.container] = (read, written)

    if result is not None and cluster is not None:
        capacity = {
            "reserved": (cluster.num_reserved * cluster.reserved_spec.cores
                         * result.jct_seconds),
            "transient": (cluster.effective_num_transient
                          * cluster.transient_spec.cores
                          * result.jct_seconds),
        }
        for resource, total in capacity.items():
            b = of(resource)
            busy = b.compute_seconds + b.recompute_seconds
            b.idle_seconds = max(0.0, total - busy)

    return ObsReport(
        breakdowns=breakdowns,
        duration_histogram=list(zip(DURATION_BUCKETS, histogram)),
        lineage=lineage,
        evictions_with_cost=len(lineage.by_eviction),
        disk_bytes_by_container=disk_bytes or None)


def efficiency_with_breakdown(result, cluster, events: list[TraceEvent]):
    """The :class:`~repro.metrics.utilization.EfficiencyReport` a
    ``JobResult`` yields, paired with the measured :class:`ObsReport` —
    model-level and trace-level accounting side by side."""
    from repro.metrics.utilization import EfficiencyReport
    report = build_report(events, result=result, cluster=cluster)
    return EfficiencyReport.from_result(result, cluster), report
