"""The lifetime-predictor protocol and the static-table default.

Pado's premise is acting on *estimated* transient lifetimes (§2.1, §6),
but estimation was previously hard-wired: the resource manager sampled a
static percentile table and nothing downstream ever saw a survival
estimate. This module defines the pluggable protocol every layer now
programs against:

* ``survival(age, horizon)`` — probability a container that has already
  lived ``age`` seconds survives ``horizon`` more;
* ``expected_remaining(age)`` — conditional mean residual lifetime;
* ``risk_rank(containers, now)`` — live containers ordered most-at-risk
  first, the input to the master's proactive re-replication hook.

:class:`StaticTablePredictor` wraps any
:class:`~repro.trace.models.LifetimeModel` CDF (the Table 1 percentile
tables included) and is the behavior-preserving default; the hazard and
portfolio predictors live in :mod:`repro.predict.hazard` and
:mod:`repro.predict.portfolio`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence

from repro.trace.models import LifetimeModel

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.cluster.resources import Container

#: Default look-ahead window (seconds) for eviction-probability queries —
#: roughly the time the master needs to push a container's outputs to a
#: safer home before the predicted eviction lands.
DEFAULT_HORIZON = 120.0

#: Upper bound (seconds) on numerical survival integration; beyond this a
#: model is treated as effectively eviction-free.
INTEGRATION_CAP = 4 * 24 * 3600.0


class LifetimePredictor:
    """Base class of the prediction protocol.

    Subclasses implement :meth:`survival` and :meth:`expected_remaining`;
    ranking and probability helpers are shared. Predictors that learn
    online additionally override :meth:`observe`, which the
    :class:`~repro.cluster.manager.ResourceManager` calls with every
    completed container lifetime it witnesses.
    """

    #: Default horizon for :meth:`eviction_probability` / :meth:`risk_rank`.
    horizon: float = DEFAULT_HORIZON

    def survival(self, age: float, horizon: float) -> float:
        """P(lifetime > age + horizon | lifetime > age), in [0, 1]."""
        raise NotImplementedError

    def expected_remaining(self, age: float) -> float:
        """Conditional mean residual lifetime (seconds) at ``age``;
        ``math.inf`` for effectively eviction-free resources."""
        raise NotImplementedError

    def eviction_probability(self, age: float,
                             horizon: Optional[float] = None) -> float:
        """P(evicted within ``horizon`` | alive at ``age``), clamped."""
        if horizon is None:
            horizon = self.horizon
        survival = self.survival(max(0.0, age), horizon)
        return min(1.0, max(0.0, 1.0 - survival))

    def risk_rank(self, containers: Sequence["Container"],
                  now: float) -> list:
        """Live containers ordered by eviction probability, highest
        first; ties break on container id for determinism."""
        return sorted(
            containers,
            key=lambda c: (-self.eviction_probability(
                max(0.0, now - c.launched_at)), c.container_id))

    def observe(self, lifetime: float, censored: bool = False) -> None:
        """Feed one observed container lifetime (no-op by default).

        ``censored=True`` marks a right-censored observation: the
        container was still alive when last seen, so ``lifetime`` is a
        lower bound.
        """


class StaticTablePredictor(LifetimePredictor):
    """The existing behavior as a predictor: condition a static
    :class:`~repro.trace.models.LifetimeModel` CDF on current age.

    ``survival(age, h) = S(age + h) / S(age)`` with ``S = 1 - cdf``.
    This is exactly what the paper's Table 1 percentile tables imply and
    is the behavior-preserving default everywhere a predictor is
    optional.
    """

    def __init__(self, model: LifetimeModel,
                 horizon: float = DEFAULT_HORIZON) -> None:
        self.model = model
        self.horizon = horizon

    def survival(self, age: float, horizon: float) -> float:
        age = max(0.0, age)
        s_age = 1.0 - self.model.cdf(age)
        if s_age <= 0.0:
            return 0.0
        s_later = 1.0 - self.model.cdf(age + max(0.0, horizon))
        return min(1.0, max(0.0, s_later / s_age))

    def expected_remaining(self, age: float) -> float:
        # E[T - age | T > age] = integral of survival(age, u) du. Find a
        # cap where survival has effectively hit zero by doubling, then
        # integrate with the trapezoid rule.
        age = max(0.0, age)
        cap = max(self.horizon, 60.0)
        while self.survival(age, cap) > 0.01 and cap < INTEGRATION_CAP:
            cap *= 2.0
        if self.survival(age, cap) > 0.5:
            # Survival never decays (e.g. NoEvictionModel): no finite mean.
            return math.inf
        steps = 256
        dt = cap / steps
        total = 0.0
        prev = 1.0
        for i in range(1, steps + 1):
            cur = self.survival(age, i * dt)
            total += 0.5 * (prev + cur) * dt
            prev = cur
        return total


def make_predictor(name: Optional[str], model: LifetimeModel,
                   pools: Optional[Sequence] = None,
                   horizon: float = DEFAULT_HORIZON) -> LifetimePredictor:
    """Build a predictor by registry name.

    ``None`` or ``"static"`` wraps the cluster's lifetime model in the
    behavior-preserving :class:`StaticTablePredictor`. ``"hazard"``
    builds an online :class:`~repro.predict.hazard.HazardPredictor` with
    the static table as its cold-start prior. ``"portfolio"`` requires
    §6 transient pools and builds a
    :class:`~repro.predict.portfolio.PortfolioPredictor` over them.
    """
    if name is None or name == "static":
        return StaticTablePredictor(model, horizon=horizon)
    if name == "hazard":
        from repro.predict.hazard import HazardPredictor
        return HazardPredictor(horizon=horizon,
                               prior=StaticTablePredictor(model,
                                                          horizon=horizon))
    if name == "portfolio":
        if not pools:
            raise ValueError(
                "portfolio predictor needs transient pools; configure "
                "ClusterConfig.transient_pools or pick 'static'/'hazard'")
        from repro.predict.portfolio import PortfolioPredictor
        return PortfolioPredictor.from_pools(pools, horizon=horizon)
    raise ValueError(f"unknown predictor {name!r}; "
                     f"choose from static, hazard, portfolio")
