"""CLUES-style elasticity controller for the reserved pool.

The multi-tenant cluster leases from a fixed split of reserved and
transient slots. CLUES-like infrastructure managers instead resize the
durable tier between jobs in response to demand signals. This controller
does the same over the namespaced
:class:`~repro.cluster.manager.LeasePool`: between dispatches it may
convert *free* transient slots into reserved ones (when the queue head is
starved for reserved capacity, or eviction pressure makes transient
capacity untrustworthy) or give reserved slots back (when the head needs
transient capacity and pressure is low), with hysteresis via a cooldown
and hard floors so no queued job's demand ever becomes unsatisfiable.

Everything is deterministic — decisions read only the pool state, the
queue, and the recorded revocation history — so elastic runs remain
bit-reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ElasticReserveConfig:
    """Knobs of the elasticity controller (see docs/PREDICTION.md)."""

    #: Slots converted per rebalance decision.
    step: int = 2
    #: Max reserved slots above the configured baseline.
    max_extra: int = 8
    #: Sliding window (seconds) over which revocations count as pressure.
    pressure_window: float = 1800.0
    #: Revoked-per-transient-slot fraction (within the window) above
    #: which the controller refuses to shrink the reserved pool and
    #: grows it for reserved-starved queue heads.
    pressure_threshold: float = 0.2
    #: Minimum seconds between two conversions (hysteresis).
    cooldown: float = 600.0

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ValueError("step must be at least 1")
        if self.max_extra < 0:
            raise ValueError("max_extra must be non-negative")
        if self.pressure_window <= 0:
            raise ValueError("pressure_window must be positive")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


class ElasticReserveController:
    """Grow/shrink the reserved pool between job dispatches.

    The cluster loop calls :meth:`record_revocations` from every eviction
    wave and :meth:`rebalance` before each dispatch attempt;
    :meth:`set_floors` pins the per-kind minima to the largest single
    job demand so conversions can never deadlock the queue.
    """

    def __init__(self, baseline_reserved: int,
                 config: ElasticReserveConfig = ElasticReserveConfig()) \
            -> None:
        self.baseline_reserved = baseline_reserved
        self.config = config
        self._revocations: deque[tuple[float, int]] = deque()
        self._last_change = -float("inf")
        self._min_reserved = 0
        self._min_transient = 0
        #: ``(time, delta_reserved)`` of every applied conversion.
        self.decisions: list[tuple[float, int]] = []

    def set_floors(self, min_reserved: int, min_transient: int) -> None:
        """Never shrink either kind below these counts (largest queued
        demand), so every generated job stays dispatchable."""
        self._min_reserved = min_reserved
        self._min_transient = min_transient

    def record_revocations(self, now: float, count: int) -> None:
        """Feed one eviction wave's revocation count."""
        if count > 0:
            self._revocations.append((now, count))

    def pressure(self, now: float, num_transient: int) -> float:
        """Fraction of transient capacity revoked within the window."""
        window_start = now - self.config.pressure_window
        while self._revocations and self._revocations[0][0] < window_start:
            self._revocations.popleft()
        if num_transient <= 0:
            return 0.0
        revoked = sum(count for _, count in self._revocations)
        return revoked / num_transient

    # ------------------------------------------------------------------

    def rebalance(self, now: float, pool, queued: Sequence) -> int:
        """Inspect the queue head and maybe convert free slots.

        Returns the signed change in reserved slots (0 = no action).
        ``pool`` is a :class:`~repro.cluster.manager.LeasePool``;
        ``queued`` the pending job requests in dispatch order.
        """
        config = self.config
        if now - self._last_change < config.cooldown:
            return 0
        pressure = self.pressure(now, pool.num_transient)
        delta = 0
        if queued:
            head = queued[0]
            reserved_blocked = pool.reserved_free < head.num_reserved
            transient_blocked = pool.transient_free < head.num_transient
            if reserved_blocked and not transient_blocked:
                room = min(
                    config.step,
                    self.baseline_reserved + config.max_extra
                    - pool.num_reserved,
                    pool.num_transient - self._min_transient,
                    pool.transient_free - head.num_transient)
                if room > 0:
                    delta = pool.convert_transient_to_reserved(room, now)
            elif transient_blocked and not reserved_blocked \
                    and pressure < config.pressure_threshold:
                room = min(
                    config.step,
                    pool.num_reserved - max(self._min_reserved,
                                            self.baseline_reserved
                                            - config.max_extra),
                    pool.reserved_free - head.num_reserved)
                if room > 0:
                    delta = -pool.convert_reserved_to_transient(room, now)
        else:
            # Idle: drift back toward the baseline split, but never give
            # up reserved capacity while eviction pressure is high.
            if pool.num_reserved > self.baseline_reserved \
                    and pressure < config.pressure_threshold:
                room = min(config.step,
                           pool.num_reserved - self.baseline_reserved,
                           pool.reserved_free)
                if room > 0:
                    delta = -pool.convert_reserved_to_transient(room, now)
            elif pool.num_reserved < self.baseline_reserved:
                room = min(config.step,
                           self.baseline_reserved - pool.num_reserved,
                           pool.num_transient - self._min_transient,
                           pool.transient_free)
                if room > 0:
                    delta = pool.convert_transient_to_reserved(room, now)
        if delta != 0:
            self._last_change = now
            self.decisions.append((now, delta))
        return delta
