"""Pluggable transient-lifetime prediction (the §6 estimation layer).

Everything that previously *implied* a lifetime estimate — the resource
manager's sampling table, the lifetime-aware scheduler's
``expected_lifetime`` comparisons, the §6 compiler pass's hand-fed
``ResourceClass`` constants — now programs against one protocol,
:class:`LifetimePredictor`:

* :class:`StaticTablePredictor` — the existing empirical percentile
  table conditioned on age (behavior-preserving default);
* :class:`HazardPredictor` — an age-dependent piecewise-constant hazard
  fitted online from observed evictions (temporally-constrained
  preemption model), with right-censoring;
* :class:`PortfolioPredictor` — per-class survival over mixed transient
  offerings with price weights and a value-per-price allocator.

:class:`ElasticReserveController` is the companion control layer: a
CLUES-style rebalancer that grows/shrinks the multi-tenant reserved pool
between jobs. See docs/PREDICTION.md.
"""

from repro.predict.base import (DEFAULT_HORIZON, LifetimePredictor,
                                StaticTablePredictor, make_predictor)
from repro.predict.elastic import (ElasticReserveConfig,
                                   ElasticReserveController)
from repro.predict.hazard import HazardPredictor
from repro.predict.portfolio import PortfolioPredictor, TransientClass

__all__ = [
    "DEFAULT_HORIZON", "ElasticReserveConfig", "ElasticReserveController",
    "HazardPredictor", "LifetimePredictor", "PortfolioPredictor",
    "StaticTablePredictor", "TransientClass", "make_predictor",
]
