"""Portfolio predictor over mixed transient resource classes.

*Portfolio-driven Resource Management for Transient Cloud Servers*
(PAPERS.md) treats heterogeneous transient offerings — distinct
price/lifetime trade-offs — as a portfolio to allocate across. The §6
extension of the paper gives the simulated cluster the same shape:
:class:`~repro.cluster.manager.TransientPool`\\ s with per-class lifetime
models and price weights. This module wraps those pools in one
predictor: per-class survival curves for containers whose pool is known,
a capacity-weighted mixture for anonymous queries, and a
largest-remainder capacity allocator proportional to expected-lifetime
value per unit price.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.predict.base import (DEFAULT_HORIZON, LifetimePredictor,
                                StaticTablePredictor)
from repro.trace.models import LifetimeModel


@dataclass(frozen=True)
class TransientClass:
    """One transient offering: a lifetime model at a price."""

    name: str
    model: LifetimeModel
    price_weight: float = 1.0
    capacity: int = 0

    def __post_init__(self) -> None:
        if self.price_weight <= 0:
            raise ValueError("price_weight must be positive")
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")


class PortfolioPredictor(LifetimePredictor):
    """Mixture-of-classes predictor over §6 transient pools.

    Containers carry their pool name
    (:attr:`~repro.cluster.resources.Container.pool`), so
    :meth:`risk_rank` scores each against its own class's survival
    curve; class-less queries (:meth:`survival`,
    :meth:`expected_remaining`) use the capacity-weighted mixture.
    """

    def __init__(self, classes: Sequence[TransientClass],
                 horizon: float = DEFAULT_HORIZON) -> None:
        if not classes:
            raise ValueError("need at least one transient class")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names in {names}")
        self.classes = tuple(classes)
        self.horizon = horizon
        self._subs = {c.name: StaticTablePredictor(c.model, horizon=horizon)
                      for c in classes}
        weights = [float(c.capacity) for c in classes]
        if sum(weights) <= 0.0:
            weights = [1.0] * len(classes)
        total = sum(weights)
        self._weights = {c.name: w / total
                         for c, w in zip(classes, weights)}

    @classmethod
    def from_pools(cls, pools: Sequence,
                   horizon: float = DEFAULT_HORIZON) -> "PortfolioPredictor":
        """Build from :class:`~repro.cluster.manager.TransientPool`\\ s."""
        classes = [TransientClass(name=pool.name,
                                  model=pool.lifetime_model,
                                  price_weight=getattr(pool, "price_weight",
                                                       1.0),
                                  capacity=pool.count)
                   for pool in pools]
        return cls(classes, horizon=horizon)

    # ------------------------------------------------------------------
    # per-class queries

    def class_survival(self, name: str, age: float,
                       horizon: float) -> float:
        """Survival for one named class."""
        return self._subs[name].survival(age, horizon)

    def class_expected_remaining(self, name: str, age: float) -> float:
        """Mean residual lifetime for one named class."""
        return self._subs[name].expected_remaining(age)

    def value_per_price(self, name: str) -> float:
        """Expected fresh lifetime per unit price — the portfolio
        ranking criterion."""
        for c in self.classes:
            if c.name == name:
                value = self.class_expected_remaining(name, 0.0)
                return value / c.price_weight
        raise KeyError(name)

    def allocate(self, total: int) -> dict[str, int]:
        """Split ``total`` containers across classes proportionally to
        value per price (largest-remainder rounding).

        Infinite-value classes (no eviction observed) absorb everything;
        ties split evenly.
        """
        if total < 0:
            raise ValueError("total must be non-negative")
        values = {c.name: self.value_per_price(c.name) for c in self.classes}
        infinite = [n for n, v in values.items() if math.isinf(v)]
        if infinite:
            shares = {c.name: 0.0 for c in self.classes}
            for name in infinite:
                shares[name] = 1.0 / len(infinite)
        else:
            denom = sum(values.values())
            if denom <= 0.0:
                shares = {n: 1.0 / len(values) for n in values}
            else:
                shares = {n: v / denom for n, v in values.items()}
        exact = {n: total * s for n, s in shares.items()}
        counts = {n: int(exact[n]) for n in exact}
        leftover = total - sum(counts.values())
        by_remainder = sorted(exact,
                              key=lambda n: (-(exact[n] - counts[n]), n))
        for name in by_remainder[:leftover]:
            counts[name] += 1
        return counts

    # ------------------------------------------------------------------
    # the predictor protocol (mixture view)

    def survival(self, age: float, horizon: float) -> float:
        return sum(self._weights[name] * sub.survival(age, horizon)
                   for name, sub in self._subs.items())

    def expected_remaining(self, age: float) -> float:
        total = 0.0
        for name, sub in self._subs.items():
            value = sub.expected_remaining(age)
            if math.isinf(value):
                return math.inf
            total += self._weights[name] * value
        return total

    def _predictor_for(self, container) -> LifetimePredictor:
        pool = getattr(container, "pool", None)
        if pool is not None and pool in self._subs:
            return self._subs[pool]
        return self

    def risk_rank(self, containers: Sequence, now: float) -> list:
        def probability(container) -> float:
            age = max(0.0, now - container.launched_at)
            sub = self._predictor_for(container)
            return min(1.0, max(0.0, 1.0 - sub.survival(age, self.horizon)))
        return sorted(containers,
                      key=lambda c: (-probability(c), c.container_id))

    def eviction_probability(self, age: float,
                             horizon: Optional[float] = None,
                             name: Optional[str] = None) -> float:
        """Mixture eviction probability, or a named class's when
        ``name`` is given."""
        if horizon is None:
            horizon = self.horizon
        sub = self._subs[name] if name is not None else self
        return min(1.0, max(0.0, 1.0 - sub.survival(max(0.0, age),
                                                    horizon)))
