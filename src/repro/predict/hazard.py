"""Temporally-constrained preemption model: an age-dependent hazard.

*Modeling The Temporally Constrained Preemptions of Transient Cloud VMs*
(PAPERS.md) observes that transient reclamations are not memoryless —
eviction risk concentrates at specific ages (billing-period boundaries,
correlated reclaim waves), so a constant-rate model systematically
mis-ranks containers. This module fits a piecewise-constant hazard
function over age bins from observed lifetimes, handling right-censoring
the Nelson–Aalen way: each interval contributes *exposure* to every bin
it lives through and a *death* only to the bin it was evicted in, and

``hazard[j] = deaths[j] / exposure[j]``.

Survival follows as ``S(t) = exp(-H(t))`` with ``H`` the integrated
hazard. The predictor learns online — the resource manager feeds every
witnessed eviction via :meth:`HazardPredictor.observe` — and falls back
to a prior (typically the static table) until it has seen
``min_observations`` uncensored lifetimes, so a cold-start run behaves
exactly like the static default. :meth:`HazardPredictor.from_analysis`
fits the Google-trace intervals of
:class:`~repro.trace.lifetimes.LifetimeAnalysis` directly.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.predict.base import DEFAULT_HORIZON, LifetimePredictor


class HazardPredictor(LifetimePredictor):
    """Piecewise-constant-hazard survival model fitted from intervals.

    Ages are discretized into ``bin_seconds`` bins up to ``max_age``;
    beyond ``max_age`` the hazard is extrapolated as constant (the last
    estimated bin). Refitting is lazy: observations mark the model dirty
    and the next query refits in one O(samples + bins) pass.
    """

    def __init__(self, bin_seconds: float = 30.0, max_age: float = 7200.0,
                 horizon: float = DEFAULT_HORIZON,
                 min_observations: int = 8,
                 prior: Optional[LifetimePredictor] = None) -> None:
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if max_age < bin_seconds:
            raise ValueError("max_age must cover at least one bin")
        self.bin_seconds = float(bin_seconds)
        self.max_age = float(max_age)
        self.horizon = horizon
        self.min_observations = min_observations
        self.prior = prior
        self._samples: list[tuple[float, bool]] = []
        self._evicted = 0
        self._dirty = True
        self._nbins = int(round(self.max_age / self.bin_seconds))
        self._hazard: list[float] = [0.0] * self._nbins
        self._cumhaz: list[float] = [0.0] * (self._nbins + 1)
        self._tail_hazard = 0.0

    # ------------------------------------------------------------------
    # observation stream

    def observe(self, lifetime: float, censored: bool = False) -> None:
        if lifetime < 0:
            raise ValueError("lifetime must be non-negative")
        self._samples.append((float(lifetime), not censored))
        if not censored:
            self._evicted += 1
        self._dirty = True

    @property
    def observation_count(self) -> int:
        """Number of uncensored (actually-evicted) lifetimes seen."""
        return self._evicted

    @property
    def fitted(self) -> bool:
        """True once enough evictions have been seen to trust the fit."""
        return self._evicted >= self.min_observations

    @classmethod
    def from_analysis(cls, analysis, **kwargs) -> "HazardPredictor":
        """Fit from a :class:`~repro.trace.lifetimes.LifetimeAnalysis`:
        completed intervals are deaths, still-alive ones are censored at
        the trace end."""
        predictor = cls(**kwargs)
        for interval in analysis.intervals:
            if interval.evicted:
                predictor.observe(interval.lifetime)
            else:
                predictor.observe(
                    max(0.0, analysis.trace_duration - interval.start),
                    censored=True)
        return predictor

    # ------------------------------------------------------------------
    # fitting

    def _refit(self) -> None:
        self._dirty = False
        nbins, width = self._nbins, self.bin_seconds
        deaths = [0] * nbins
        # Difference array over bins each sample fully covers, plus the
        # partial remainder in the bin it ends in.
        full = [0] * (nbins + 1)
        partial = [0.0] * nbins
        for lifetime, evicted in self._samples:
            capped = min(lifetime, self.max_age)
            k = int(capped / width)  # bins 0..k-1 are fully covered
            if k > nbins:
                k = nbins
            full[0] += 1
            full[k] -= 1
            if k < nbins:
                partial[k] += capped - k * width
            if evicted and lifetime < self.max_age:
                # A death exactly on a bin edge belongs to the bin that
                # just ended, not the zero-exposure one starting there.
                db = int(max(capped - 1e-9, 0.0) / width)
                deaths[min(db, nbins - 1)] += 1
        hazard = self._hazard
        running = 0
        last = 0.0
        for j in range(nbins):
            running += full[j]
            exposure = running * width + partial[j]
            if exposure > 0.0:
                last = deaths[j] / exposure
            # Zero-exposure bins inherit the last estimate (no evidence
            # either way); before any exposure that is hazard 0.
            hazard[j] = last
        cumhaz = self._cumhaz
        for j in range(nbins):
            cumhaz[j + 1] = cumhaz[j] + hazard[j] * width
        self._tail_hazard = last

    def _cum(self, t: float) -> float:
        """Integrated hazard H(t)."""
        if self._dirty:
            self._refit()
        if t <= 0.0:
            return 0.0
        if t >= self.max_age:
            return (self._cumhaz[self._nbins]
                    + (t - self.max_age) * self._tail_hazard)
        j = int(t / self.bin_seconds)
        return self._cumhaz[j] + self._hazard[j] * (t - j * self.bin_seconds)

    # ------------------------------------------------------------------
    # the predictor protocol

    def survival(self, age: float, horizon: float) -> float:
        if not self.fitted:
            if self.prior is not None:
                return self.prior.survival(age, horizon)
            return 1.0
        age = max(0.0, age)
        delta = self._cum(age + max(0.0, horizon)) - self._cum(age)
        return math.exp(-delta)

    def expected_remaining(self, age: float) -> float:
        if not self.fitted:
            if self.prior is not None:
                return self.prior.expected_remaining(age)
            return math.inf
        if self._dirty:
            self._refit()
        age = max(0.0, age)
        width = self.bin_seconds
        # Trapezoid over the binned range, then the constant-hazard tail
        # in closed form: remaining mass s at max_age contributes s / λ.
        total = 0.0
        prev = 1.0
        t = age
        while t < self.max_age:
            step = min(width, self.max_age - t)
            t += step
            cur = self.survival(age, t - age)
            total += 0.5 * (prev + cur) * step
            prev = cur
        tail_s = self.survival(age, max(0.0, self.max_age - age)) \
            if age < self.max_age else 1.0
        if age >= self.max_age:
            # Entirely inside the constant-hazard tail.
            if self._tail_hazard <= 0.0:
                return math.inf
            return 1.0 / self._tail_hazard
        if tail_s > 0.0:
            if self._tail_hazard <= 0.0:
                return math.inf
            total += tail_s / self._tail_hazard
        return total

    def quantile(self, q: float) -> float:
        """Age by which a fraction ``q`` of containers have been
        evicted (the fitted model's percentile table), by bisection on
        the integrated hazard."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        target = -math.log(1.0 - q)
        upper = self.max_age
        while self._cum(upper) < target:
            if self._tail_hazard <= 0.0:
                return math.inf
            upper *= 2.0
        lo, hi = 0.0, upper
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            if self._cum(mid) < target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
