"""Benchmark harness: regenerates every table and figure of the paper's
evaluation (plus ablations) on the simulated cluster."""

from repro.bench.experiments import (BENCH_SCALES, TIME_LIMIT_MINUTES,
                                     AveragedRow, SweepRow,
                                     averaged_eviction_sweep, ablation_aggregation_limits,
                                     ablation_fetch_semantics,
                                     ablation_lifetime_aware_scheduling,
                                     ablation_optimizations,
                                     default_engines, eviction_rate_sweep,
                                     fig1_lifetime_cdfs, fig2_recovery_costs,
                                     fig5_als, fig6_mlr, fig7_mr,
                                     fig8_reserved_sweep, fig9_scalability,
                                     fig9xl_stress, Fig9XLStats,
                                     make_workload, run_one,
                                     tab1_lifetime_percentiles,
                                     tab2_collected_memory)
from repro.bench.multitenant import (cell_summary, jct_table,
                                     make_cell_config, multitenant_sweep,
                                     run_multitenant_cell, spec_for_job,
                                     sweep_executor)
from repro.bench.runner import (JobFileBackend, PoolSpec, ResultCache,
                                RunSpec, RunnerStats, SweepRunner,
                                build_cache, build_cluster, build_engine,
                                canonical_result_json, code_fingerprint,
                                engine_spec, execute_spec, result_from_dict,
                                result_to_dict, run_specs, spec_from_dict,
                                spec_to_dict, sweep_worker_loop)
from repro.bench.tables import render_cdf_series, render_table, speedup

__all__ = [
    "AveragedRow", "BENCH_SCALES", "JobFileBackend", "PoolSpec",
    "ResultCache", "RunSpec",
    "RunnerStats", "SweepRow", "SweepRunner", "TIME_LIMIT_MINUTES",
    "averaged_eviction_sweep",
    "ablation_aggregation_limits", "ablation_fetch_semantics",
    "ablation_lifetime_aware_scheduling",
    "ablation_optimizations", "build_cache", "build_cluster",
    "build_engine",
    "canonical_result_json", "cell_summary", "code_fingerprint",
    "default_engines",
    "engine_spec", "eviction_rate_sweep", "execute_spec",
    "Fig9XLStats",
    "fig1_lifetime_cdfs", "fig2_recovery_costs", "fig5_als", "fig6_mlr",
    "fig7_mr", "fig8_reserved_sweep", "fig9_scalability", "fig9xl_stress",
    "jct_table",
    "make_cell_config", "make_workload", "multitenant_sweep",
    "render_cdf_series", "render_table", "result_from_dict",
    "result_to_dict", "run_multitenant_cell", "run_one", "run_specs",
    "spec_for_job", "spec_from_dict", "spec_to_dict", "speedup",
    "sweep_executor", "sweep_worker_loop",
    "tab1_lifetime_percentiles", "tab2_collected_memory",
]
