"""Prediction sweep: static vs predictive Pado under correlated waves.

The Figure-5-style experiment for the :mod:`repro.predict` stack. Every
cell runs the same workload on the same cluster under the same schedule
of correlated eviction waves (periodic cluster-wide reclamations, the
regime where container age *predicts* eviction); the ``static`` variant
is the paper's Pado untouched, while the ``predictive`` variant turns on
the whole §6 prediction path — lifetime placement, the online hazard
predictor fed by observed evictions, and proactive re-replication of
at-risk local outputs. ``python -m repro psweep`` drives the sweep;
``benchmarks/BENCH_prediction.json`` pins the resulting rows (see
docs/PREDICTION.md for how to read them).

Periodic waves make the hazard model's job concrete: every container is
launched on a wave tick (the initial fleet at time zero, replacements at
the wave that killed their predecessors), so observed death ages pile up
at multiples of the period and the fitted hazard spikes there. As a
container's age approaches the next multiple, its predicted eviction
probability within the push horizon crosses the threshold and the master
ships its retained outputs to the reserved side before the wave lands.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.bench.runner import RunSpec, SweepRunner
from repro.bench.tables import render_table

#: Engine options of the ``predictive`` variant (PadoRuntimeConfig
#: fields; the ``static`` variant runs with an empty options dict).
PREDICTIVE_OPTIONS: dict = {
    "placement": "lifetime",
    "predictor": "hazard",
    "proactive_push": True,
    "push_threshold": 0.55,
    "push_horizon": 150.0,
    "push_check_interval": 20.0,
}

#: ``(name, wave period seconds, wave severity)`` regimes.
WAVE_REGIMES: tuple = (
    ("sparse", 480.0, 0.5),
    ("dense", 240.0, 0.6),
)

#: Default sweep axes of ``python -m repro psweep``. ``fanout`` is the
#: intra-stage fan-out pipeline (:mod:`repro.workloads.pipeline`) whose
#: retained local outputs give proactive push something to protect; the
#: paper workloads fuse into straight chains and exercise only the
#: placement/scheduling half of the prediction stack.
SWEEP_WORKLOADS = ("mlr", "mr", "fanout")

#: Per-workload scales when the caller does not pin one. The generic
#: ``BENCH_SCALES`` defaults make the jobs finish before the first wave
#: even lands; these keep every cell running across several waves so the
#: variants actually diverge.
PSWEEP_SCALES = {"mlr": 0.1, "mr": 1.5, "fanout": 1.0}

PSWEEP_HEADERS = ["workload", "regime", "variant", "JCT (m)", "completed",
                  "relaunched", "evictions", "pushes", "avoided"]


def wave_schedule(period: float, severity: float,
                  horizon_seconds: float) -> tuple:
    """Periodic correlated waves covering ``horizon_seconds``."""
    count = max(1, int(horizon_seconds // period))
    return tuple((round(period * (i + 1), 6), severity)
                 for i in range(count))


def prediction_specs(workload: str, period: float, severity: float,
                     scale: Optional[float] = None, seed: int = 11,
                     time_limit_minutes: float = 150.0,
                     num_reserved: int = 5,
                     num_transient: int = 40) -> dict[str, RunSpec]:
    """The ``static``/``predictive`` spec pair of one sweep cell."""
    if scale is None:
        scale = PSWEEP_SCALES.get(workload)
    waves = wave_schedule(period, severity, time_limit_minutes * 60.0)
    common = dict(scale=scale, seed=seed,
                  time_limit_minutes=time_limit_minutes,
                  num_reserved=num_reserved, num_transient=num_transient,
                  eviction="none", eviction_waves=waves)
    return {
        "static": RunSpec.make(workload, "pado", **common),
        "predictive": RunSpec.make(workload, "pado",
                                   engine_options=dict(PREDICTIVE_OPTIONS),
                                   **common),
    }


def _run_async(runner: SweepRunner, specs: Sequence[RunSpec]) -> list:
    """Run specs through the runner's futures API: submit everything,
    harvest completions out of order via ``poll()``, reassemble in spec
    order. Bit-identical to ``runner.run`` (same cache probes, dedup,
    chunking); only the harvesting order differs."""
    started = time.perf_counter()
    handles = runner.submit_many(specs)
    outstanding = [handle for handle in handles if not handle.done()]
    while outstanding:
        resolved = runner.poll()
        outstanding = [h for h in outstanding if not h.done()]
        if outstanding and not resolved:
            # Nothing finished since the last pass: block on the oldest
            # handle (for the jobfile backend this is also what drains
            # the queue when no external workers are attached).
            runner.wait(outstanding[0])
            outstanding = [h for h in outstanding if not h.done()]
    results = [handle.result() for handle in handles]
    runner.stats.batches += 1
    runner.stats.wall_seconds += time.perf_counter() - started
    return results


def prediction_sweep(workloads: Sequence[str] = SWEEP_WORKLOADS,
                     regimes: Sequence[tuple] = WAVE_REGIMES,
                     scale: Optional[float] = None, seed: int = 11,
                     time_limit_minutes: float = 150.0,
                     runner: Optional[SweepRunner] = None,
                     workers: int = 0, cache=None,
                     speculate: bool = False) -> list[dict]:
    """Run every (workload, regime, variant) cell; one dict per cell.

    Rows interleave ``static``/``predictive`` per cell so the committed
    JSON reads as head-to-head pairs; ``relaunched`` (the recomputation
    the paper's bottom panels plot) and ``jct_minutes`` are the two
    quantities the predictive variant is expected to reduce.

    ``speculate=True`` (CLI ``--speculate on``) routes through the
    runner's asynchronous futures API (:func:`_run_async`) so a parallel
    backend streams results out of order; rows are bit-identical.
    """
    if runner is None:
        with SweepRunner(workers=workers, cache_dir=cache) as local:
            return prediction_sweep(workloads, regimes, scale=scale,
                                    seed=seed,
                                    time_limit_minutes=time_limit_minutes,
                                    runner=local, speculate=speculate)
    cells = []
    specs = []
    for workload in workloads:
        for name, period, severity in regimes:
            pair = prediction_specs(workload, period, severity, scale=scale,
                                    seed=seed,
                                    time_limit_minutes=time_limit_minutes)
            for variant, spec in pair.items():
                cells.append((workload, name, variant))
                specs.append(spec)
    results = _run_async(runner, specs) if speculate else runner.run(specs)
    rows = []
    for (workload, regime, variant), result in zip(cells, results):
        extras = result.extras
        rows.append({
            "workload": workload,
            "regime": regime,
            "variant": variant,
            "seed": seed,
            "jct_minutes": round(result.jct_minutes, 3),
            "completed": result.completed,
            "relaunched": result.relaunched_tasks,
            "evictions": result.evictions,
            "bytes_pushed_gb": round(result.bytes_pushed / 1e9, 3),
            "proactive_pushes": extras.get("proactive_pushes", 0),
            "recomputes_avoided": extras.get("recomputes_avoided", 0),
            "predicted_evictions": extras.get("predicted_evictions", 0),
        })
    return rows


def prediction_table(rows: Sequence[dict],
                     title: Optional[str] = None) -> str:
    """Render sweep rows as the CLI table."""
    cells = [[row["workload"], row["regime"], row["variant"],
              row["jct_minutes"], row["completed"], row["relaunched"],
              row["evictions"], row["proactive_pushes"],
              row["recomputes_avoided"]] for row in rows]
    return render_table(PSWEEP_HEADERS, cells, title=title)
