"""Experiment registry: one entry per table and figure of the paper.

Each function regenerates the corresponding artifact on the simulated
cluster and returns structured rows; ``benchmarks/`` wraps them with
pytest-benchmark and prints the same tables the paper reports. Workloads
run at a configurable ``scale`` (task counts shrink, per-task sizes stay)
so a full regeneration remains laptop-friendly; the shapes are scale-stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.bench.runner import (PoolSpec, RunSpec, SweepRunner, engine_spec,
                                run_specs)
from repro.cluster.events import Simulator
from repro.cluster.manager import ResourceManager
from repro.cluster.network import ContainerEndpoint, NetworkModel
from repro.core.runtime.engine import PadoEngine
from repro.engines.base import ClusterConfig, EngineBase, JobResult, Program
from repro.engines.spark import SparkEngine
from repro.engines.spark_checkpoint import SparkCheckpointEngine
from repro.trace import (EvictionRate, TraceConfig, analyze_trace,
                         collected_memory_table, generate_trace,
                         refine_trace)
from repro.trace.models import LifetimeModel, TABLE1_LIFETIME_MINUTES
from repro.workloads import (als_synthetic_program, fanout_synthetic_program,
                             mlr_synthetic_program, mr_synthetic_program)

#: Simulated-time cutoff, as in the paper's plots (minutes).
TIME_LIMIT_MINUTES = 150.0

#: Default workload scales for benchmark runs (wall-time friendly).
#: ``fanout`` is not a paper workload — it is the fan-out pipeline of
#: :mod:`repro.workloads.pipeline`, added for the prediction sweep.
BENCH_SCALES = {"als": 0.25, "mlr": 0.2, "mr": 0.25, "fanout": 0.2}

MARGIN_LABELS = {"0.1%": 0.001, "1%": 0.01, "5%": 0.05}
RATE_OF_MARGIN = {"0.1%": "high", "1%": "medium", "5%": "low"}


def make_workload(name: str, scale: Optional[float] = None) -> Program:
    """Build one of the paper's three workloads at the given scale."""
    if name not in BENCH_SCALES:
        raise ValueError(f"unknown workload {name!r}; "
                         f"choose from {sorted(BENCH_SCALES)}")
    scale = scale if scale is not None else BENCH_SCALES[name]
    if name == "als":
        return als_synthetic_program(scale=scale)
    if name == "mlr":
        return mlr_synthetic_program(scale=scale, iterations=3)
    if name == "mr":
        return mr_synthetic_program(scale=scale)
    if name == "fanout":
        return fanout_synthetic_program(scale=scale)
    raise ValueError(f"unknown workload {name!r}")


def default_engines() -> list[EngineBase]:
    """The three engines of §5.1.2, in the paper's order."""
    return [SparkEngine(), SparkCheckpointEngine(), PadoEngine()]


# ======================================================================
# §2.1: Figure 1, Table 1, Table 2 — trace analysis


def _refined_trace(seed: int = 0,
                   config: Optional[TraceConfig] = None):
    config = config or TraceConfig(num_containers=30, duration_hours=48.0)
    return refine_trace(generate_trace(config, seed=seed))


def fig1_lifetime_cdfs(seed: int = 0) -> dict[str, tuple[list, list]]:
    """Figure 1: CDFs of transient container lifetimes per safety margin.

    Returns ``{label: (minutes, cdf)}`` curves.
    """
    trace = _refined_trace(seed)
    minutes = np.concatenate([np.arange(0.5, 10.5, 0.5),
                              np.arange(11.0, 61.0, 1.0)])
    curves = {}
    for label, margin in MARGIN_LABELS.items():
        analysis = analyze_trace(trace, margin)
        cdf = analysis.cdf(minutes * 60.0)
        name = f"{RATE_OF_MARGIN[label]} (margin={label})"
        curves[name] = (minutes.tolist(), cdf.tolist())
    return curves


def tab1_lifetime_percentiles(seed: int = 0) -> list[tuple]:
    """Table 1: lifetime percentiles (minutes) per safety margin.

    Rows: (margin, percentile, measured_minutes, paper_minutes).
    """
    trace = _refined_trace(seed)
    rows = []
    for label, margin in MARGIN_LABELS.items():
        analysis = analyze_trace(trace, margin)
        for q in (10, 50, 90):
            measured = analysis.percentile(q) / 60.0
            paper = TABLE1_LIFETIME_MINUTES[(label, q)]
            rows.append((label, q, round(measured, 1), paper))
    return rows


def tab2_collected_memory(seed: int = 0) -> list[tuple]:
    """Table 2: collected idle memory fraction per safety margin.

    Rows: (margin, measured_fraction, paper_fraction).
    """
    from repro.trace.models import TABLE2_COLLECTED_MEMORY
    trace = _refined_trace(seed)
    table = collected_memory_table(trace)
    return [(label, round(table[label], 3), TABLE2_COLLECTED_MEMORY[label])
            for label in ("baseline", "0.1%", "1%", "5%")]


# ======================================================================
# §5.2: Figures 5-7 — JCT and relaunch ratio vs eviction rate


@dataclass
class SweepRow:
    workload: str
    eviction: str
    engine: str
    jct_minutes: float
    completed: bool
    relaunched_ratio: float
    evictions: int

    def as_tuple(self) -> tuple:
        return (self.workload, self.eviction, self.engine,
                round(self.jct_minutes, 1),
                "yes" if self.completed else "cutoff",
                f"{self.relaunched_ratio:.0%}", self.evictions)


def jct_of(rows: Sequence["SweepRow"], eviction: str, engine: str) -> float:
    """Pull one JCT (minutes) out of a sweep-row list."""
    for row in rows:
        if row.eviction == eviction and row.engine == engine:
            return row.jct_minutes
    raise KeyError((eviction, engine))


def completed(rows: Sequence["SweepRow"], eviction: str,
              engine: str) -> bool:
    """Whether the given run finished within the simulated-time cutoff."""
    for row in rows:
        if row.eviction == eviction and row.engine == engine:
            return row.completed
    raise KeyError((eviction, engine))


def run_one(engine: EngineBase, program: Program,
            cluster: Optional[ClusterConfig] = None, seed: int = 11,
            time_limit_minutes: float = TIME_LIMIT_MINUTES) -> JobResult:
    """Run one job with the experiments' default cluster and cutoff."""
    cluster = cluster or ClusterConfig()
    return engine.run(program, cluster, seed=seed,
                      time_limit=time_limit_minutes * 60.0)


def _sweep_row(spec: RunSpec, result: JobResult,
               eviction_label: Optional[str] = None) -> SweepRow:
    """Assemble the Figure 5-9 row for one completed spec."""
    return SweepRow(
        workload=spec.workload,
        eviction=eviction_label if eviction_label is not None
        else spec.eviction,
        engine=result.engine, jct_minutes=result.jct_minutes,
        completed=result.completed,
        relaunched_ratio=result.relaunched_ratio,
        evictions=result.evictions)


def eviction_rate_sweep(workload: str, scale: Optional[float] = None,
                        seed: int = 11,
                        rates: Sequence[EvictionRate] = (
                            EvictionRate.NONE, EvictionRate.LOW,
                            EvictionRate.MEDIUM, EvictionRate.HIGH),
                        engines: Optional[
                            Sequence[Union[str, EngineBase]]] = None,
                        workers: int = 0, cache: Optional[str] = None,
                        runner: Optional[SweepRunner] = None
                        ) -> list[SweepRow]:
    """Figures 5 (ALS), 6 (MLR), 7 (MR): JCT and relaunched-task ratio for
    each engine under each eviction rate, on 40 transient + 5 reserved."""
    engines = list(engines) if engines is not None else default_engines()
    specs = []
    for rate in rates:
        for engine in engines:
            name, options = engine_spec(engine)
            specs.append(RunSpec(workload=workload, engine=name,
                                 engine_options=options, scale=scale,
                                 seed=seed, eviction=rate.value))
    results = run_specs(specs, workers=workers, cache=cache, runner=runner)
    return [_sweep_row(spec, result)
            for spec, result in zip(specs, results)]


@dataclass
class AveragedRow:
    """Mean and standard deviation across seeds — the paper runs each
    configuration five times and reports averages with error bars (§5.1.3).
    """

    workload: str
    eviction: str
    engine: str
    mean_jct_minutes: float
    std_jct_minutes: float
    completed_runs: int
    total_runs: int

    def as_tuple(self) -> tuple:
        return (self.workload, self.eviction, self.engine,
                f"{self.mean_jct_minutes:.1f} ± {self.std_jct_minutes:.1f}",
                f"{self.completed_runs}/{self.total_runs}")


def averaged_eviction_sweep(workload: str, scale: Optional[float] = None,
                            seeds: Sequence[int] = (11, 12, 13, 14, 15),
                            rates: Sequence[EvictionRate] = (
                                EvictionRate.NONE, EvictionRate.HIGH),
                            engines: Optional[
                                Sequence[Union[str, EngineBase]]] = None,
                            workers: int = 0, cache: Optional[str] = None,
                            runner: Optional[SweepRunner] = None
                            ) -> list[AveragedRow]:
    """Figures 5-7 with the paper's repetition protocol: average JCT and
    standard deviation over several seeded runs."""
    engines = list(engines) if engines is not None else default_engines()
    cells = [(rate, engine) for rate in rates for engine in engines]
    specs = []
    for rate, engine in cells:
        name, options = engine_spec(engine)
        specs.extend(RunSpec(workload=workload, engine=name,
                             engine_options=options, scale=scale,
                             seed=seed, eviction=rate.value)
                     for seed in seeds)
    results = run_specs(specs, workers=workers, cache=cache, runner=runner)
    rows = []
    for i, (rate, engine) in enumerate(cells):
        cell = results[i * len(seeds):(i + 1) * len(seeds)]
        jcts = [result.jct_minutes for result in cell]
        rows.append(AveragedRow(
            workload=workload, eviction=rate.value,
            engine=cell[0].engine,
            mean_jct_minutes=float(np.mean(jcts)),
            std_jct_minutes=float(np.std(jcts)),
            completed_runs=sum(int(r.completed) for r in cell),
            total_runs=len(seeds)))
    return rows


def fig5_als(**kwargs) -> list[SweepRow]:
    """Figure 5: the ALS eviction-rate sweep."""
    return eviction_rate_sweep("als", **kwargs)


def fig6_mlr(**kwargs) -> list[SweepRow]:
    """Figure 6: the MLR eviction-rate sweep."""
    return eviction_rate_sweep("mlr", **kwargs)


def fig7_mr(**kwargs) -> list[SweepRow]:
    """Figure 7: the Map-Reduce eviction-rate sweep."""
    return eviction_rate_sweep("mr", **kwargs)


# ======================================================================
# §5.3: Figure 8 — ratio of transient to reserved containers


def fig8_reserved_sweep(workload: str, scale: Optional[float] = None,
                        reserved_counts: Sequence[int] = (3, 4, 5, 6, 7),
                        seed: int = 11, workers: int = 0,
                        cache: Optional[str] = None,
                        runner: Optional[SweepRunner] = None
                        ) -> list[SweepRow]:
    """Figure 8: JCT with 3-7 reserved containers plus 40 transient under
    the high eviction rate; Spark-checkpoint vs Pado (Spark degrades too
    severely to compare, §5.3)."""
    specs = [RunSpec(workload=workload, engine=engine, scale=scale,
                     seed=seed, num_reserved=reserved, num_transient=40,
                     eviction=EvictionRate.HIGH.value)
             for reserved in reserved_counts
             for engine in ("spark-checkpoint", "pado")]
    results = run_specs(specs, workers=workers, cache=cache, runner=runner)
    return [_sweep_row(spec, result,
                       eviction_label=f"reserved={spec.num_reserved}")
            for spec, result in zip(specs, results)]


# ======================================================================
# §5.4: Figure 9 — scalability at a fixed 8:1 ratio


def fig9_scalability(workloads: Sequence[str] = ("als", "mlr", "mr"),
                     sizes: Sequence[tuple[int, int]] = ((24, 3), (40, 5),
                                                         (56, 7)),
                     scale: Optional[float] = None,
                     seed: int = 11, workers: int = 0,
                     cache: Optional[str] = None,
                     runner: Optional[SweepRunner] = None) -> list[SweepRow]:
    """Figure 9: Pado's JCT with 27/45/63 containers at the fixed 8:1
    transient:reserved ratio under the high eviction rate."""
    specs = [RunSpec(workload=workload, engine="pado", scale=scale,
                     seed=seed, num_reserved=reserved,
                     num_transient=transient,
                     eviction=EvictionRate.HIGH.value)
             for workload in workloads
             for transient, reserved in sizes]
    results = run_specs(specs, workers=workers, cache=cache, runner=runner)
    return [_sweep_row(spec, result,
                       eviction_label=(
                           f"{spec.num_transient + spec.num_reserved}"
                           f"({spec.num_transient}T+{spec.num_reserved}R)"))
            for spec, result in zip(specs, results)]


# ======================================================================
# fig9xl — the array core at 100× the paper's cluster size


@dataclass
class Fig9XLStats:
    """What one :func:`fig9xl_stress` run processed."""

    num_containers: int
    sim_hours: float
    events: int
    evictions: int
    transfers_started: int
    transfers_completed: int
    transfers_failed: int

    def as_tuple(self) -> tuple:
        return (f"{self.num_containers}", f"{self.sim_hours:g}h",
                self.events, self.evictions, self.transfers_started,
                self.transfers_completed, self.transfers_failed)


def fig9xl_stress(num_reserved: int = 1111, num_transient: int = 8889,
                  sim_hours: float = 1.75, wave_transfers: int = 150,
                  wave_interval: float = 1.0,
                  transfer_bytes: float = 8e6,
                  seed: int = 11) -> Fig9XLStats:
    """Figure 9 pushed two orders of magnitude past the paper: a
    10,000-container fleet at the fixed 8:1 transient:reserved ratio,
    churning at the high eviction rate for hours of simulated time while
    a synthetic shuffle continuously moves data between random live
    containers.

    This is a simulator-scale cell, not a JCT cell: it drives exactly
    the array-structured core the JCT sweeps sit on — timer-wheel
    eviction ticks, slot-array container replacement, and record-packed
    transfer rows on the flow-batched network (transfers to or through a
    container that dies mid-flight fail over the same paths an engine
    sees). The default shape processes over a million simulator events;
    ``benchmarks/bench_fig9_scalability.py`` pins its wall time and the
    CI smoke job runs a reduced shape on every PR.
    """
    sim = Simulator()
    rng = np.random.default_rng(seed)
    rm = ResourceManager(sim, EvictionRate.HIGH.lifetime_model(), rng,
                         replace_evicted=True)
    rm.allocate(num_reserved, num_transient)
    net = NetworkModel(sim)

    # One endpoint per fleet slot, re-wrapped lazily whenever eviction
    # replaced the slot's container since the last transfer touched it.
    slots = len(rm.slot_container)
    endpoints: list = [None] * slots

    def endpoint(slot: int) -> ContainerEndpoint:
        container = rm.slot_container[slot]
        ep = endpoints[slot]
        if ep is None or ep.container is not container:
            ep = endpoints[slot] = ContainerEndpoint(container)
        return ep

    stats = {"started": 0, "ok": 0, "failed": 0}

    def on_done(tag, result) -> None:
        if result.ok:
            stats["ok"] += 1
        else:
            stats["failed"] += 1

    horizon = sim_hours * 3600.0

    def wave() -> None:
        pairs = rng.integers(0, slots, size=2 * wave_transfers)
        requests = [(endpoint(int(pairs[2 * i])),
                     endpoint(int(pairs[2 * i + 1])), transfer_bytes, i)
                    for i in range(wave_transfers)
                    if pairs[2 * i] != pairs[2 * i + 1]]
        stats["started"] += len(requests)
        net.transfer_many(requests, on_done)
        nxt = sim.now + wave_interval
        if nxt < horizon:
            sim.schedule_at(nxt, wave)

    sim.schedule_at(wave_interval, wave)
    sim.run(until=horizon)
    return Fig9XLStats(
        num_containers=num_reserved + num_transient, sim_hours=sim_hours,
        events=sim.events_processed, evictions=rm.evictions,
        transfers_started=stats["started"],
        transfers_completed=stats["ok"], transfers_failed=stats["failed"])


# ======================================================================
# Figure 2 — recovery cost of one eviction burst


class _ScheduledLifetimes(LifetimeModel):
    """Deterministic lifetimes: the first allocations die at ``first``
    seconds; replacements live forever."""

    def __init__(self, first: float, count: int) -> None:
        self._remaining = count
        self._first = first

    def sample(self, rng) -> float:
        if self._remaining > 0:
            self._remaining -= 1
            return self._first
        return math.inf

    def cdf(self, t_seconds: float) -> float:  # pragma: no cover
        return 0.0


def fig2_recovery_costs(reduce_phase_fraction: float = 0.85,
                        seed: int = 0) -> list[tuple]:
    """Figure 2: all transient containers are evicted while the Reduce
    operator runs. Plain Spark must recompute maps and reduces (the red
    arrows), Spark-checkpoint only the reduces, and Pado nothing — its
    intermediate results already escaped to reserved containers.

    Each engine is first timed without evictions, then re-run with every
    transient container evicted at ``reduce_phase_fraction`` of that JCT
    (inside its reduce phase). Rows: (engine, relaunched_tasks,
    bytes_checkpointed_mb, jct_minutes, baseline_jct_minutes).
    """
    rows = []
    for engine in default_engines():
        cluster = ClusterConfig(num_reserved=1, num_transient=3)
        baseline = run_one(engine, mr_synthetic_program(scale=0.02),
                           cluster, seed=seed)
        evict_at = reduce_phase_fraction * baseline.jct_seconds
        cluster = ClusterConfig(
            num_reserved=1, num_transient=3,
            eviction=_ScheduledLifetimes(evict_at, count=3))
        result = run_one(engine, mr_synthetic_program(scale=0.02), cluster,
                         seed=seed)
        rows.append((engine.name, result.relaunched_tasks,
                     round(result.bytes_checkpointed / 2**20),
                     round(result.jct_minutes, 2),
                     round(baseline.jct_minutes, 2)))
    return rows


# ======================================================================
# Ablations (§3.2.7 design choices)


def ablation_optimizations(scale: float = 0.2, seed: int = 11,
                           workers: int = 0, cache: Optional[str] = None,
                           runner: Optional[SweepRunner] = None
                           ) -> list[tuple]:
    """Ablate task-input caching and partial aggregation on MLR under the
    high eviction rate. Rows: (variant, jct_minutes, pushed_gb,
    input_read_gb, shuffled_gb)."""
    variants = {
        "full": {},
        "no-caching": {"enable_caching": False},
        "no-partial-agg": {"enable_partial_aggregation": False},
        "no-optimizations": {"enable_caching": False,
                             "enable_partial_aggregation": False},
    }
    specs = [RunSpec.make("mlr", "pado", engine_options=options,
                          scale=scale, seed=seed,
                          eviction=EvictionRate.HIGH.value)
             for options in variants.values()]
    results = run_specs(specs, workers=workers, cache=cache, runner=runner)
    return [(name, round(result.jct_minutes, 1),
             round(result.bytes_pushed / 2**30, 1),
             round(result.bytes_input_read / 2**30, 1),
             round(result.bytes_shuffled / 2**30, 1))
            for name, result in zip(variants, results)]


def ablation_fetch_semantics(scale: float = 0.25, seed: int = 11,
                             workers: int = 0, cache: Optional[str] = None,
                             runner: Optional[SweepRunner] = None
                             ) -> list[tuple]:
    """Ablate Spark's fetch-failure semantics (abort vs partition-granular
    re-fetch) on ALS under the high eviction rate — the workload whose deep
    lineage makes lazy fetch misses frequent."""
    labels = (("abort-attempt", True), ("refetch-missing", False))
    specs = [RunSpec.make("als", "spark",
                          engine_options={"abort_on_fetch_failure": abort},
                          scale=scale, seed=seed,
                          eviction=EvictionRate.HIGH.value)
             for _, abort in labels]
    results = run_specs(specs, workers=workers, cache=cache, runner=runner)
    return [(label, round(result.jct_minutes, 1),
             f"{result.relaunched_ratio:.0%}",
             round(result.bytes_shuffled / 2**30, 1))
            for (label, _), result in zip(labels, results)]


def ablation_lifetime_aware_scheduling(scale: float = 0.2, seed: int = 11,
                                       workers: int = 0,
                                       cache: Optional[str] = None,
                                       runner: Optional[SweepRunner] = None
                                       ) -> list[tuple]:
    """§6 extension: on a mixed pool of short- and long-lived transient
    containers, compare default (cache-aware round-robin) placement with
    lifetime-aware placement of heavy tasks. Rows: (policy, jct_minutes,
    relaunched_tasks, relaunch_ratio)."""
    pools = (PoolSpec("short", 20, 90.0), PoolSpec("long", 20, 3600.0))
    labels = (("default", None), ("lifetime-aware", "lifetime-aware"))
    specs = [RunSpec.make("mlr", "pado",
                          engine_options=(
                              {"scheduling_policy": policy}
                              if policy is not None else None),
                          transient_pools=pools, scale=scale, seed=seed)
             for _, policy in labels]
    results = run_specs(specs, workers=workers, cache=cache, runner=runner)
    return [(label, round(result.jct_minutes, 1),
             result.relaunched_tasks,
             f"{result.relaunched_ratio:.0%}")
            for (label, _), result in zip(labels, results)]


def ablation_aggregation_limits(scale: float = 0.2, seed: int = 11,
                                workers: int = 0,
                                cache: Optional[str] = None,
                                runner: Optional[SweepRunner] = None
                                ) -> list[tuple]:
    """Ablate the partial-aggregation escape limits (§3.2.7): larger
    batches shrink reserved-side load but let data linger on eviction-prone
    executors. Rows: (max_tasks, jct_minutes, pushed_gb, relaunch_ratio)."""
    limits = (1, 2, 4, 8)
    specs = [RunSpec.make("mlr", "pado",
                          engine_options={"aggregation_max_tasks": limit},
                          scale=scale, seed=seed,
                          eviction=EvictionRate.HIGH.value)
             for limit in limits]
    results = run_specs(specs, workers=workers, cache=cache, runner=runner)
    return [(limit, round(result.jct_minutes, 1),
             round(result.bytes_pushed / 2**30, 1),
             f"{result.relaunched_ratio:.0%}")
            for limit, result in zip(limits, results)]
