"""Parallel, cached experiment runner with a warm worker pool.

The paper's evaluation protocol (§5.1.3) runs every configuration five
times and sweeps engines x eviction rates x cluster sizes — dozens to
hundreds of independent simulations. This module turns those sweeps into
data: a :class:`RunSpec` is a picklable, declaratively-specified simulation
(workload + engine + cluster + seed) with a stable content hash, and a
:class:`SweepRunner` fans lists of specs out over a persistent
``ProcessPoolExecutor``, returns results in deterministic spec order, and
memoizes completed :class:`~repro.engines.base.JobResult` rows in an
on-disk JSON cache keyed by ``(spec hash, code fingerprint)`` so re-running
a sweep only simulates what changed.

Design constraints:

* **Declarative specs.** A spec references engines by registry name and
  carries options as plain ``(key, value)`` pairs; clusters are named
  eviction rates plus counts (or declarative §6 transient pools). This
  keeps specs picklable for worker processes, JSON-serializable for the
  cache key and the jobfile backend, and independent of in-process object
  identity.
* **Determinism.** ``workers=0`` (the default) runs every simulation
  in-process in spec order — bit-identical to the historical serial
  sweeps. ``workers=N`` runs the same simulations in worker processes;
  each simulation seeds its own ``Generator``, so results are
  bit-identical to the serial path regardless of scheduling, chunking,
  pool lifetime, or backend.
* **Warm pools.** One runner owns its pool across ``run()`` calls
  (``close()`` / context-manager lifecycle). Workers initialize once
  (imports, code fingerprint) and keep a per-process :class:`_BuildCache`
  so programs/engines/clusters are built once per structural key, not
  once per spec — the multi-tenant dispatch loop sends hundreds of
  near-identical jobs where only seed/wave fields vary. Dispatch is
  chunked: one pickle round-trip per chunk, not per spec.
* **Honest caching.** Cache entries are invalidated by a fingerprint of
  every ``.py`` file under ``src/repro``; any code change re-simulates.
  An in-memory LRU fronts the per-spec files so repeated probes within
  one process skip disk I/O.
* **Distributed backend.** ``SweepRunner(backend="jobfile",
  job_dir=...)`` fans chunk files out over a shared directory;
  ``python -m repro sweep-worker <dir>`` processes run anywhere the
  directory is mounted. Chunks are claimed by atomic rename, results
  flow back through the content-hash :class:`ResultCache` (idempotent
  puts give exactly-once result commit even when a crashed worker's
  chunk is reclaimed and partially re-executed), and the submitting
  runner drains the queue itself so a sweep finishes even with zero
  external workers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import multiprocessing
import os
import pathlib
import tempfile
import time
import uuid
from collections import OrderedDict
from concurrent.futures import CancelledError, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

from repro.engines.base import ClusterConfig, EngineBase, JobResult

#: Option values allowed in a spec: must survive a JSON round-trip intact.
_SCALAR_TYPES = (bool, int, float, str, type(None))

#: Start method for worker pools. ``spawn`` (not the POSIX ``fork``
#: default) so pool workers are interpreter-fresh — the same execution
#: model as distributed ``sweep-worker`` processes, with no inherited
#: module state, tracer registrations, or fingerprint memos. Spawn
#: startup is expensive (~0.5 s/worker), which is exactly why the pool
#: is warm: the cost is paid once per runner, not once per batch.
DEFAULT_MP_CONTEXT = "spawn"

#: Seconds after which a claimed-but-untouched jobfile chunk is assumed
#: orphaned by a crashed worker and moved back to the queue. Workers
#: touch their claim file after every completed spec, so this only needs
#: to exceed the longest single simulation.
DEFAULT_CLAIM_TIMEOUT = 120.0


def _freeze_options(options: Optional[dict]) -> tuple:
    """Normalize an options mapping to sorted, hashable ``(key, value)``
    pairs, rejecting values that would not survive the JSON cache."""
    if not options:
        return ()
    for key, value in options.items():
        if not isinstance(key, str):
            raise TypeError(f"option names must be strings, got {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"option {key!r} must be a JSON scalar, got {value!r}")
    return tuple(sorted(options.items()))


@dataclass(frozen=True)
class PoolSpec:
    """Declarative form of a §6 :class:`~repro.cluster.manager.TransientPool`
    with memoryless lifetimes (the form the ablations use)."""

    name: str
    count: int
    mean_lifetime_seconds: float


@dataclass(frozen=True)
class RunSpec:
    """One simulation: workload, engine, cluster, seed, and cutoff.

    Every field is declarative (strings, numbers, tuples) so the spec is
    picklable, hashable, and has a stable JSON content hash. Engines are
    named (``pado``, ``spark``, ``spark-checkpoint``); ``engine_options``
    carries constructor/runtime knobs (for Pado these are
    ``PadoRuntimeConfig`` fields, with ``scheduling_policy`` given by
    policy name, e.g. ``"lifetime-aware"``).
    """

    workload: str
    engine: str
    scale: Optional[float] = None
    seed: int = 11
    time_limit_minutes: float = 150.0
    num_reserved: int = 5
    num_transient: int = 40
    eviction: str = "none"
    engine_options: tuple = ()
    transient_pools: Optional[tuple] = None
    #: Multi-tenant runs (:mod:`repro.cluster.tenancy`) pin the job's
    #: eviction schedule to the cluster-wide wave times: a tuple of
    #: ``(offset_seconds, severity)`` pairs relative to the job's start,
    #: simulated via :class:`~repro.trace.models.WaveLifetimeModel`.
    #: Mutually exclusive with a named ``eviction`` rate and with pools.
    eviction_waves: Optional[tuple] = None

    @classmethod
    def make(cls, workload: str, engine: str, *,
             engine_options: Optional[dict] = None,
             transient_pools: Optional[Sequence[PoolSpec]] = None,
             **fields: Any) -> "RunSpec":
        """Build a spec from a plain options dict and pool list."""
        pools = tuple(transient_pools) if transient_pools else None
        return cls(workload=workload, engine=engine,
                   engine_options=_freeze_options(engine_options),
                   transient_pools=pools, **fields)

    def content_hash(self) -> str:
        """Stable hex digest of the spec's canonical JSON form."""
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def options(self) -> dict:
        return dict(self.engine_options)

    def structural_key(self) -> tuple:
        """Everything that shapes the *built objects* (program, engine,
        cluster) but not the run itself: excludes ``seed`` and
        ``time_limit_minutes``, which only parameterize ``engine.run``.
        The per-process :class:`_BuildCache` memoizes on slices of this.
        """
        return (self.workload, self.engine, self.scale, self.num_reserved,
                self.num_transient, self.eviction, self.engine_options,
                self.transient_pools, self.eviction_waves)


def spec_to_dict(spec: RunSpec) -> dict:
    """JSON-safe dict form of a spec (jobfile chunks, cache metadata)."""
    return dataclasses.asdict(spec)


def spec_from_dict(data: dict) -> RunSpec:
    """Inverse of :func:`spec_to_dict`. Restores the tuple structure JSON
    flattened to lists, so ``content_hash()`` round-trips exactly."""
    fields = {f.name: data[f.name] for f in dataclasses.fields(RunSpec)
              if f.name in data}
    fields["engine_options"] = tuple(
        (key, value) for key, value in fields.get("engine_options") or ())
    pools = fields.get("transient_pools")
    if pools is not None:
        fields["transient_pools"] = tuple(
            pool if isinstance(pool, PoolSpec) else PoolSpec(**pool)
            for pool in pools)
    waves = fields.get("eviction_waves")
    if waves is not None:
        fields["eviction_waves"] = tuple(
            (offset, severity) for offset, severity in waves)
    return RunSpec(**fields)


# ----------------------------------------------------------------------
# spec -> runnable objects

def engine_spec(engine: Union[str, EngineBase]) -> tuple[str, tuple]:
    """``(name, engine_options)`` for an engine name or instance.

    Instances of the three registered engines are introspected so existing
    call sites (``engines=[PadoEngine()]``) keep working; custom engine
    classes are not spec-able and raise.
    """
    if isinstance(engine, str):
        return engine, ()
    from repro.core.runtime.engine import PadoEngine
    from repro.core.runtime.master import PadoRuntimeConfig
    from repro.core.runtime.scheduler import LifetimeAwarePolicy
    from repro.engines.spark import SparkEngine
    from repro.engines.spark_checkpoint import SparkCheckpointEngine
    if isinstance(engine, PadoEngine):
        defaults = PadoRuntimeConfig()
        options: dict[str, Any] = {}
        for f in dataclasses.fields(PadoRuntimeConfig):
            value = getattr(engine.config, f.name)
            if value == getattr(defaults, f.name):
                continue
            if f.name == "scheduling_policy":
                if isinstance(value, LifetimeAwarePolicy):
                    value = "lifetime-aware"
                else:
                    raise TypeError(
                        f"cannot spec scheduling policy {value!r}; "
                        f"name it in engine_options instead")
            options[f.name] = value
        return "pado", _freeze_options(options)
    if isinstance(engine, SparkCheckpointEngine):
        options = {}
        if engine.abort_on_fetch_failure is not True:
            options["abort_on_fetch_failure"] = engine.abort_on_fetch_failure
        if engine.store_bandwidth_factor != 0.6:
            options["store_bandwidth_factor"] = engine.store_bandwidth_factor
        return "spark-checkpoint", _freeze_options(options)
    if isinstance(engine, SparkEngine):
        options = {}
        if engine.abort_on_fetch_failure is not True:
            options["abort_on_fetch_failure"] = engine.abort_on_fetch_failure
        return "spark", _freeze_options(options)
    raise TypeError(f"cannot build a RunSpec for engine {engine!r}")


def build_engine(spec: RunSpec) -> EngineBase:
    """Instantiate the engine a spec names."""
    options = spec.options()
    if spec.engine == "pado":
        from repro.core.runtime.engine import PadoEngine
        from repro.core.runtime.master import PadoRuntimeConfig
        policy_name = options.pop("scheduling_policy", None)
        if policy_name is not None:
            if policy_name != "lifetime-aware":
                raise ValueError(
                    f"unknown scheduling policy {policy_name!r}")
            from repro.core.runtime.scheduler import LifetimeAwarePolicy
            options["scheduling_policy"] = LifetimeAwarePolicy()
        return PadoEngine(PadoRuntimeConfig(**options))
    if spec.engine == "spark":
        from repro.engines.spark import SparkEngine
        return SparkEngine(**options)
    if spec.engine == "spark-checkpoint":
        from repro.engines.spark_checkpoint import SparkCheckpointEngine
        return SparkCheckpointEngine(**options)
    raise ValueError(f"unknown engine {spec.engine!r}; "
                     f"choose from pado, spark, spark-checkpoint")


def build_cluster(spec: RunSpec) -> ClusterConfig:
    """Instantiate the simulated cluster a spec describes."""
    from repro.trace.models import (EvictionRate, ExponentialLifetimeModel,
                                    WaveLifetimeModel)
    pools = None
    if spec.transient_pools:
        from repro.cluster.manager import TransientPool
        pools = tuple(
            TransientPool(p.name, p.count,
                          ExponentialLifetimeModel(p.mean_lifetime_seconds),
                          p.mean_lifetime_seconds)
            for p in spec.transient_pools)
    eviction: Any = EvictionRate(spec.eviction)
    if spec.eviction_waves is not None:
        if spec.eviction != "none":
            raise ValueError(
                "eviction_waves replaces the lifetime model; "
                "set eviction='none' alongside it")
        if pools is not None:
            raise ValueError("eviction_waves and transient_pools "
                             "cannot be combined")
        eviction = WaveLifetimeModel(spec.eviction_waves)
    return ClusterConfig(num_reserved=spec.num_reserved,
                         num_transient=spec.num_transient,
                         eviction=eviction,
                         transient_pools=pools)


# ----------------------------------------------------------------------
# per-process build cache

class _BuildCache:
    """Memoizes ``build_engine``/``build_cluster``/workload construction
    by the spec's structural key — one instance per process (workers and
    the in-process serial path alike).

    What is safe to reuse across runs, verified bit-identical by
    ``tests/bench/test_sweep_pool.py``:

    * **Programs** — the DAG is read-only to the engines.
    * **Clusters** — ``ClusterConfig`` is frozen; lifetime models are
      stateless (``sample(rng)`` draws from the caller's generator).
    * **Engines without a ``scheduling_policy`` option** — plain config
      holders whose ``run()`` builds fresh per-run state. A configured
      policy *instance* (e.g. ``LifetimeAwarePolicy``) carries a
      round-robin cursor across runs, so those specs rebuild the engine
      every time.

    Entries are evicted FIFO past ``capacity`` per table so tenancy
    sweeps with thousands of distinct wave tuples stay bounded.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._programs: OrderedDict[tuple, Any] = OrderedDict()
        self._engines: OrderedDict[tuple, EngineBase] = OrderedDict()
        self._clusters: OrderedDict[tuple, ClusterConfig] = OrderedDict()

    def _lookup(self, table: OrderedDict, key: tuple, build) -> Any:
        try:
            value = table[key]
            self.hits += 1
            return value
        except KeyError:
            self.misses += 1
        value = build()
        table[key] = value
        while len(table) > self.capacity:
            table.popitem(last=False)
        return value

    def program_for(self, spec: RunSpec) -> Any:
        from repro.bench.experiments import make_workload
        return self._lookup(self._programs, (spec.workload, spec.scale),
                            lambda: make_workload(spec.workload, spec.scale))

    def engine_for(self, spec: RunSpec) -> EngineBase:
        if any(key == "scheduling_policy" for key, _ in spec.engine_options):
            return build_engine(spec)
        return self._lookup(self._engines, (spec.engine, spec.engine_options),
                            lambda: build_engine(spec))

    def cluster_for(self, spec: RunSpec) -> ClusterConfig:
        key = (spec.num_reserved, spec.num_transient, spec.eviction,
               spec.transient_pools, spec.eviction_waves)
        return self._lookup(self._clusters, key, lambda: build_cluster(spec))

    def clear(self) -> None:
        self._programs.clear()
        self._engines.clear()
        self._clusters.clear()


#: Process-wide build cache shared by every spec executed in this process.
_BUILD_CACHE = _BuildCache()


def build_cache() -> _BuildCache:
    """This process's build cache (tests inspect/clear it)."""
    return _BUILD_CACHE


def execute_spec(spec: RunSpec) -> JobResult:
    """Run one spec to completion (this is what worker processes execute).

    Program/engine/cluster construction is memoized per process through
    :func:`build_cache`; the simulation itself always runs fresh.
    """
    program = _BUILD_CACHE.program_for(spec)
    engine = _BUILD_CACHE.engine_for(spec)
    return engine.run(program, _BUILD_CACHE.cluster_for(spec), seed=spec.seed,
                      time_limit=spec.time_limit_minutes * 60.0)


# ----------------------------------------------------------------------
# pool worker entry points (module-level so they pickle under spawn)

def _init_worker() -> None:
    """Run once per pool worker: pay the heavy imports and the source-tree
    fingerprint up front so the first chunk measures simulation, not
    setup. Spawned workers start interpreter-fresh, so nothing leaks in
    from the parent."""
    import repro.bench.experiments  # noqa: F401
    import repro.cluster.tenancy  # noqa: F401
    import repro.predict  # noqa: F401
    code_fingerprint()


def _pool_probe(delay_seconds: float) -> int:
    """Warm-up task: occupying every worker briefly forces the executor
    to actually spawn its full complement, so pool startup is paid (and
    measured) inside ``_ensure_pool``, not inside the first real chunk."""
    time.sleep(delay_seconds)
    return os.getpid()


def _execute_chunk(specs: list[RunSpec]) -> tuple[list[JobResult], float]:
    """Worker-side entry: one pickle round-trip executes a whole chunk.

    Returns the results plus the worker-side busy time for the chunk so
    the runner can integrate real worker utilization
    (:attr:`RunnerStats.busy_worker_seconds`) without guessing from
    round-trip latencies.
    """
    started = time.perf_counter()
    results = [execute_spec(spec) for spec in specs]
    return results, time.perf_counter() - started


def _chunked(items: list, chunk_count: int) -> list[list]:
    """Split into ``chunk_count`` contiguous slices, sizes within one."""
    count = max(1, min(chunk_count, len(items)))
    base, extra = divmod(len(items), count)
    chunks, start = [], 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


# ----------------------------------------------------------------------
# JobResult <-> JSON

def result_to_dict(result: JobResult) -> dict:
    """Canonical dict form of a :class:`JobResult` (JSON-safe for the
    synthetic sweeps; raises ``TypeError`` later at ``json.dumps`` time if
    extras/outputs carry non-JSON payloads)."""
    return dataclasses.asdict(result)


def result_from_dict(data: dict) -> JobResult:
    """Inverse of :func:`result_to_dict` (restores int partition keys)."""
    outputs = data.get("outputs")
    if outputs is not None:
        outputs = {op: {int(index): records
                        for index, records in parts.items()}
                   for op, parts in outputs.items()}
    fields = {f.name: data[f.name] for f in dataclasses.fields(JobResult)
              if f.name in data}
    fields["outputs"] = outputs
    return JobResult(**fields)


def canonical_result_json(result: JobResult) -> str:
    """Byte-stable JSON encoding used for cache entries and equality
    checks across serial/parallel runs."""
    return json.dumps(result_to_dict(result), sort_keys=True)


# ----------------------------------------------------------------------
# code fingerprint + on-disk cache

_FINGERPRINT: Optional[str] = None


def _tree_fingerprint(root: pathlib.Path) -> str:
    """Digest over every ``.py`` file under ``root`` (path + content)."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_fingerprint(root: Optional[pathlib.Path] = None) -> str:
    """Digest over every ``.py`` file under ``src/repro``; part of the
    cache key so stale results never survive a code change.

    The tree is the whole package — engines, the cluster substrate, and
    the multi-tenant layer (``repro.cluster.tenancy``) alike — because a
    cached :class:`~repro.engines.base.JobResult` depends on all of them.
    ``root`` overrides the digested tree (uncached); tests use it to
    prove specific modules participate in the digest.
    """
    global _FINGERPRINT
    if root is not None:
        return _tree_fingerprint(pathlib.Path(root))
    if _FINGERPRINT is None:
        _FINGERPRINT = _tree_fingerprint(
            pathlib.Path(__file__).resolve().parents[1])
    return _FINGERPRINT


class ResultCache:
    """One JSON file per completed spec, under
    ``<dir>/<code fingerprint>/<spec hash>.json``, fronted by an
    in-memory LRU so repeated probes within one process skip disk I/O.

    ``get``/``put``/``path_for`` accept the precomputed content hash via
    ``key=`` so callers that already hashed the spec never hash twice.
    ``memory_hits``/``disk_hits``/``misses`` count where probes landed.
    """

    def __init__(self, directory: Union[str, pathlib.Path],
                 memory_entries: int = 4096) -> None:
        self.directory = pathlib.Path(directory)
        self.memory_entries = memory_entries
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self._memory: OrderedDict[str, JobResult] = OrderedDict()

    def path_for(self, spec: RunSpec, key: Optional[str] = None)\
            -> pathlib.Path:
        key = key if key is not None else spec.content_hash()
        return self.directory / code_fingerprint() / f"{key}.json"

    def get(self, spec: RunSpec, key: Optional[str] = None)\
            -> Optional[JobResult]:
        key = key if key is not None else spec.content_hash()
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return cached
        try:
            data = json.loads(self.path_for(spec, key=key).read_text())
            result = result_from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.disk_hits += 1
        self._remember(key, result)
        return result

    def put(self, spec: RunSpec, result: JobResult,
            key: Optional[str] = None) -> bool:
        """Persist a result; returns False (and caches nothing) when the
        result carries non-JSON payloads (real-data ``outputs``/extras).
        Writes are atomic (tempfile + rename), so concurrent writers —
        jobfile workers racing on a reclaimed chunk — land whole files
        and the duplicate put is an idempotent overwrite."""
        key = key if key is not None else spec.content_hash()
        try:
            payload = json.dumps(
                {"spec": spec_to_dict(spec),
                 "result": result_to_dict(result)},
                sort_keys=True)
        except TypeError:
            return False
        path = self.path_for(spec, key=key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self._remember(key, result)
        return True

    def _remember(self, key: str, result: JobResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)


# ----------------------------------------------------------------------
# jobfile backend: chunk files over a shared directory

class JobFileBackend:
    """Work queue as files: ``<root>/queue/*.json`` chunks are claimed by
    atomic rename into ``<root>/claimed/``, executed, and deleted; results
    land in the shared :class:`ResultCache` at ``<root>/cache``.

    Crash recovery: a worker that dies mid-chunk leaves its claim file
    behind. Workers touch the claim after every completed spec, so a
    claim whose mtime is older than the reclaim timeout is orphaned and
    moves back to the queue. Specs already finished before the crash are
    cache hits on re-execution — at-least-once execution, exactly-once
    result commit.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.queue_dir = self.root / "queue"
        self.claimed_dir = self.root / "claimed"
        self.cache_dir = self.root / "cache"
        for directory in (self.queue_dir, self.claimed_dir, self.cache_dir):
            directory.mkdir(parents=True, exist_ok=True)

    def enqueue_chunk(self, specs: Sequence[RunSpec]) -> pathlib.Path:
        """Atomically publish one chunk file to the queue."""
        payload = json.dumps(
            {"specs": [spec_to_dict(spec) for spec in specs]},
            sort_keys=True)
        target = self.queue_dir / f"chunk-{uuid.uuid4().hex}.json"
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, target)
        return target

    def claim(self) -> Optional[pathlib.Path]:
        """Move one queued chunk into ``claimed/``; None when the queue is
        empty. The rename is atomic, so exactly one claimant wins."""
        for path in sorted(self.queue_dir.glob("chunk-*.json")):
            target = self.claimed_dir / path.name
            try:
                os.rename(path, target)
            except OSError:
                continue
            return target
        return None

    def finish(self, claimed: pathlib.Path) -> None:
        try:
            claimed.unlink()
        except OSError:
            pass

    def heartbeat(self, claimed: pathlib.Path) -> None:
        """Freshen a claim's mtime so it is not reclaimed while live."""
        try:
            os.utime(claimed)
        except OSError:
            pass

    def reclaim_stale(self, older_than_seconds: float) -> int:
        """Move orphaned claims back to the queue; returns how many."""
        reclaimed = 0
        cutoff = time.time() - older_than_seconds
        for path in sorted(self.claimed_dir.glob("chunk-*.json")):
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                os.rename(path, self.queue_dir / path.name)
            except OSError:
                continue
            reclaimed += 1
        return reclaimed

    @staticmethod
    def load_chunk(path: pathlib.Path) -> list[RunSpec]:
        data = json.loads(path.read_text())
        return [spec_from_dict(entry) for entry in data["specs"]]


def sweep_worker_loop(job_dir: Union[str, pathlib.Path], *,
                      cache_dir: Optional[Union[str, pathlib.Path]] = None,
                      once: bool = False, poll_seconds: float = 0.5,
                      claim_timeout: float = DEFAULT_CLAIM_TIMEOUT,
                      max_chunks: Optional[int] = None) -> int:
    """Process jobfile chunks until the queue stays empty (``once``) or
    forever (the ``python -m repro sweep-worker`` service loop). Returns
    the number of chunks completed.

    Each spec is probed against the shared cache before executing —
    re-running a reclaimed chunk only simulates what the crashed worker
    had not finished.
    """
    backend = JobFileBackend(job_dir)
    cache = ResultCache(cache_dir if cache_dir is not None
                        else backend.cache_dir)
    completed = 0
    while True:
        claimed = backend.claim()
        if claimed is None:
            if backend.reclaim_stale(claim_timeout):
                continue
            if once:
                return completed
            time.sleep(poll_seconds)
            continue
        for spec in backend.load_chunk(claimed):
            key = spec.content_hash()
            if cache.get(spec, key=key) is None:
                cache.put(spec, execute_spec(spec), key=key)
            backend.heartbeat(claimed)
        backend.finish(claimed)
        completed += 1
        if max_chunks is not None and completed >= max_chunks:
            return completed


# ----------------------------------------------------------------------
# the runner

@dataclass
class RunnerStats:
    """What a :class:`SweepRunner` actually did, and how long it took.

    ``simulated`` counts fresh results this runner produced (locally or,
    for the jobfile backend, through attached workers). ``exec_seconds``
    is time inside simulation compute — worker-side busy time for pool
    chunks, per-spec execution for the serial path — with pool startup
    accounted separately so ``mean_spec_seconds`` reflects steady-state
    throughput.

    Utilization: ``busy_worker_seconds`` integrates worker-side compute
    time, ``pool_worker_seconds`` integrates ``pool size x seconds the
    pool was open``; their ratio :attr:`pool_occupancy` makes idle-worker
    waste a measured number (a warm 8-pool fed 1–2 job batches shows it
    directly). Speculation counters are filled by the multi-tenant
    speculative executor (:mod:`repro.cluster.tenancy.speculation`):
    ``speculation_submitted`` specs pre-submitted between dispatch
    instants, of which ``speculation_hits`` were consumed by a real
    dispatch and ``speculation_wasted`` were discarded (their results
    still land in the on-disk cache).
    """

    simulated: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    batches: int = 0
    chunks: int = 0
    pools_started: int = 0
    wall_seconds: float = 0.0
    exec_seconds: float = 0.0
    pool_startup_seconds: float = 0.0
    busy_worker_seconds: float = 0.0
    pool_worker_seconds: float = 0.0
    speculation_submitted: int = 0
    speculation_hits: int = 0
    speculation_wasted: int = 0

    @property
    def mean_spec_seconds(self) -> float:
        return self.exec_seconds / self.simulated if self.simulated else 0.0

    @property
    def pool_occupancy(self) -> float:
        """Fraction of pool-worker capacity spent computing (0 when no
        pool ran)."""
        if self.pool_worker_seconds <= 0.0:
            return 0.0
        return self.busy_worker_seconds / self.pool_worker_seconds

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["mean_spec_seconds"] = self.mean_spec_seconds
        data["pool_occupancy"] = self.pool_occupancy
        return data

    def __str__(self) -> str:
        text = (f"{self.simulated} simulated, {self.cache_hits} cached, "
                f"{self.deduplicated} deduplicated")
        text += (f"; {self.wall_seconds:.2f}s wall, "
                 f"{self.mean_spec_seconds * 1e3:.1f} ms/spec")
        if self.pools_started:
            text += (f", {self.pool_startup_seconds:.2f}s pool startup "
                     f"x{self.pools_started}")
        if self.pool_worker_seconds > 0.0:
            text += f", {self.pool_occupancy:.0%} pool occupancy"
        if self.speculation_submitted:
            text += (f"; speculation {self.speculation_submitted} submitted"
                     f" / {self.speculation_hits} hit"
                     f" / {self.speculation_wasted} wasted")
        return text


class SpecFuture:
    """Handle for one submitted :class:`RunSpec`.

    Obtained from :meth:`SweepRunner.submit` / ``submit_many``; redeemed
    through :meth:`SweepRunner.wait` (or ``handle.result()``). A handle
    is resolved exactly once; duplicate submissions of the same content
    hash share one handle. Speculative submitters keep handles around and
    either consume them on an exact match or let :meth:`SweepRunner.cancel`
    try to call the work off.
    """

    __slots__ = ("spec", "key", "_runner", "_done", "_result", "_error",
                 "_chunk", "_jobfile")

    def __init__(self, spec: RunSpec, key: str,
                 runner: "SweepRunner") -> None:
        self.spec = spec
        self.key = key
        self._runner = runner
        self._done = False
        self._result: Optional[JobResult] = None
        self._error: Optional[BaseException] = None
        self._chunk: Optional[_AsyncChunk] = None
        self._jobfile = False

    def done(self) -> bool:
        """True once the result (or error) is available without blocking.
        Pool-backed handles also report True when their chunk finished
        but has not been finalized yet (``wait`` finalizes instantly)."""
        if self._done:
            return True
        return self._chunk is not None and self._chunk.future.done()

    def result(self) -> JobResult:
        """Block until resolved; equivalent to ``runner.wait(handle)``."""
        return self._runner.wait(self)

    def _resolve(self, result: JobResult) -> None:
        self._done = True
        self._result = result
        self._chunk = None

    def _fail(self, error: BaseException) -> None:
        self._done = True
        self._error = error
        self._chunk = None

    def _outcome(self) -> JobResult:
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class _AsyncChunk:
    """One in-flight pool chunk: the executor future plus the handles it
    will resolve, in submission order."""

    __slots__ = ("future", "items")

    def __init__(self, future: Any, items: list[SpecFuture]) -> None:
        self.future = future
        self.items = items


class SweepRunner:
    """Execute lists of :class:`RunSpec` with optional process-parallelism
    and on-disk memoization.

    ``workers=0`` runs serially in-process — the default for
    determinism-sensitive tests. ``workers=N`` fans pending specs out in
    chunks over a persistent ``ProcessPoolExecutor`` that lives across
    ``run()`` calls; results always come back in spec order, bit-identical
    to serial. Identical specs within one call are simulated once (the
    simulation is deterministic, so duplicates share the result object).

    **Futures API.** ``submit(spec)`` / ``submit_many(specs)`` return
    :class:`SpecFuture` handles immediately; ``wait(handle)`` blocks for
    one result, ``poll()`` finalizes whatever finished without blocking,
    and ``cancel(handle)`` calls off work that has not started. Handles
    stream out of order: a later-submitted spec may resolve first.
    Submissions dedupe in flight by content hash — submitting a spec that
    is already queued (or cached) returns instantly with the shared
    handle — which is what makes speculative pre-submission from the
    multi-tenant outer loop free to get wrong. ``run()`` is a thin
    wrapper: submit everything, wait in spec order.

    Lifecycle: the pool (and jobfile state) is released by ``close()`` or
    by using the runner as a context manager::

        with SweepRunner(workers=8) as runner:
            for batch in batches:
                results = runner.run(batch)   # one warm pool throughout

    ``warm=False`` starts (and tears down) an ephemeral pool per
    ``run()`` call — the per-batch cold-pool model this refactor
    replaces, kept as the benchmark baseline. ``backend="jobfile"``
    dispatches through a shared directory instead of a local pool — see
    :class:`JobFileBackend`; the submitting runner drains the queue
    itself, so external ``sweep-worker`` processes accelerate but are
    never required for completion.

    ``pool_scaling`` picks how the pool is brought up. ``"eager"`` (the
    historical model) spawns and probes all ``workers`` processes up
    front — right for saturating batch sweeps on many-core hosts.
    ``"elastic"`` caps the pool at the host's CPU count and lets the
    executor spawn processes lazily as submissions arrive, so a trickle
    of speculative single-spec submissions on a small host never pays
    for workers the hardware cannot run anyway.
    """

    def __init__(self, workers: int = 0,
                 cache_dir: Optional[Union[str, pathlib.Path]] = None, *,
                 warm: bool = True,
                 backend: str = "process",
                 job_dir: Optional[Union[str, pathlib.Path]] = None,
                 chunk_size: Optional[int] = None,
                 mp_context: Optional[str] = DEFAULT_MP_CONTEXT,
                 claim_timeout: float = DEFAULT_CLAIM_TIMEOUT,
                 poll_seconds: float = 0.05,
                 pool_scaling: str = "eager") -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if backend not in ("process", "jobfile"):
            raise ValueError(f"unknown backend {backend!r}; "
                             f"choose from process, jobfile")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if pool_scaling not in ("eager", "elastic"):
            raise ValueError(f"unknown pool_scaling {pool_scaling!r}; "
                             f"choose from eager, elastic")
        self.workers = workers
        self.warm = warm
        self.backend = backend
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.claim_timeout = claim_timeout
        self.poll_seconds = poll_seconds
        self.pool_scaling = pool_scaling
        self._jobfile: Optional[JobFileBackend] = None
        if backend == "jobfile":
            if job_dir is None:
                raise ValueError("backend='jobfile' requires job_dir")
            self._jobfile = JobFileBackend(job_dir)
            if cache_dir is None:
                # Results flow back through the shared cache; without one
                # the runner could never observe remote completions.
                cache_dir = self._jobfile.cache_dir
        elif job_dir is not None:
            raise ValueError("job_dir is only meaningful with "
                             "backend='jobfile'")
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.stats = RunnerStats()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_size = 0
        self._pool_mark: Optional[float] = None
        self._inflight: dict[str, SpecFuture] = {}
        self._async_chunks: list[_AsyncChunk] = []

    # -- lifecycle

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool. The runner stays usable — the next
        ``run()`` starts a fresh pool — so ``close()`` doubles as an
        explicit way to release workers between distant batches."""
        self._close_pool()

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._mark_pool()
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_mark = None

    def _mark_pool(self) -> None:
        """Advance the ``pool size x open time`` integral to now."""
        if self._pool is not None and self._pool_mark is not None:
            now = time.perf_counter()
            self.stats.pool_worker_seconds += (
                self._pool_size * (now - self._pool_mark))
            self._pool_mark = now

    # -- execution

    def run(self, specs: Sequence[RunSpec]) -> list[JobResult]:
        """Submit every spec, wait in spec order. Identical to the
        historical synchronous path — same cache probes, dedup, chunking,
        and ordering — just expressed over the futures API."""
        started = time.perf_counter()
        handles = self.submit_many(specs)
        try:
            results = [self.wait(handle) for handle in handles]
        finally:
            if (not self.warm and self.backend == "process"
                    and self.workers > 0 and not self._async_chunks):
                self._close_pool()
        self.stats.batches += 1
        self.stats.wall_seconds += time.perf_counter() - started
        return results

    # -- futures API

    def submit(self, spec: RunSpec) -> SpecFuture:
        """Submit one spec for asynchronous execution; returns a handle
        immediately (already resolved on a cache hit)."""
        return self.submit_many([spec])[0]

    def submit_many(self, specs: Sequence[RunSpec]) -> list[SpecFuture]:
        """Submit specs for asynchronous execution, one handle per spec.

        Each spec is hashed exactly once, probed against the on-disk
        cache (resolved handle on a hit), deduplicated against both this
        call and everything still in flight, and the remainder dispatched
        to the backend: chunked onto the worker pool, enqueued as jobfile
        chunks, or — with ``workers=0`` — executed inline before
        returning (the serial path has nowhere to hide latency).
        """
        specs = list(specs)
        handles: list[SpecFuture] = []
        fresh: list[SpecFuture] = []
        local: dict[str, SpecFuture] = {}
        for spec in specs:
            key = spec.content_hash()
            if self.cache is not None:
                hit = self.cache.get(spec, key=key)
                if hit is not None:
                    handle = SpecFuture(spec, key, self)
                    handle._resolve(hit)
                    handles.append(handle)
                    self.stats.cache_hits += 1
                    continue
            existing = local.get(key)
            if existing is None:
                existing = self._inflight.get(key)
            if existing is not None:
                handles.append(existing)
                self.stats.deduplicated += 1
                continue
            handle = SpecFuture(spec, key, self)
            local[key] = handle
            handles.append(handle)
            fresh.append(handle)
        self._dispatch(fresh)
        return handles

    def wait(self, handle: SpecFuture) -> JobResult:
        """Block until ``handle`` resolves; returns its
        :class:`~repro.engines.base.JobResult` (or re-raises the
        execution error)."""
        if handle._done:
            return handle._outcome()
        if handle._chunk is not None:
            self._finalize_chunk(handle._chunk)
            return handle._outcome()
        if handle._jobfile:
            self._wait_jobfile(handle)
            return handle._outcome()
        raise RuntimeError("cannot wait on an unsubmitted handle")

    def poll(self) -> list[SpecFuture]:
        """Finalize everything that completed without blocking; returns
        the handles that resolved during this call (out of order)."""
        resolved: list[SpecFuture] = []
        for chunk in list(self._async_chunks):
            if chunk.future.done():
                resolved.extend(chunk.items)
                self._finalize_chunk(chunk)
        if self.cache is not None:
            jobfile_handles = [h for h in self._inflight.values()
                               if h._jobfile]
            for handle in jobfile_handles:
                hit = self.cache.get(handle.spec, key=handle.key)
                if hit is not None:
                    self._commit(handle, hit, put=False)
                    resolved.append(handle)
        return resolved

    def cancel(self, handle: SpecFuture) -> bool:
        """Try to call off a submitted handle before it starts. Only
        single-spec pool chunks whose future has not been picked up by a
        worker can be cancelled; everything else returns False and runs
        to completion (the result still lands in the cache)."""
        chunk = handle._chunk
        if handle._done or chunk is None or len(chunk.items) > 1:
            return False
        if not chunk.future.cancel():
            return False
        self._async_chunks.remove(chunk)
        self._inflight.pop(handle.key, None)
        handle._fail(CancelledError(f"speculative spec {handle.key[:12]} "
                                    f"cancelled before execution"))
        return True

    # -- dispatch internals

    def _dispatch(self, handles: list[SpecFuture]) -> None:
        if not handles:
            return
        if self.backend == "jobfile":
            assert self._jobfile is not None
            chunk_size = self.chunk_size if self.chunk_size is not None else 4
            chunks = _chunked(handles,
                              math.ceil(len(handles) / chunk_size))
            for chunk in chunks:
                self._jobfile.enqueue_chunk([h.spec for h in chunk])
            self.stats.chunks += len(chunks)
            for handle in handles:
                handle._jobfile = True
                self._inflight[handle.key] = handle
            return
        if self.workers == 0:
            for handle in handles:
                started = time.perf_counter()
                result = execute_spec(handle.spec)
                self.stats.exec_seconds += time.perf_counter() - started
                self._commit(handle, result)
            return
        size = self._pool_target(len(handles))
        pool = self._ensure_pool(size)
        chunks = _chunked(handles,
                          self._chunk_count(len(handles), self._pool_size))
        for chunk in chunks:
            try:
                future = pool.submit(_execute_chunk,
                                     [h.spec for h in chunk])
            except BaseException:
                self._close_pool()
                raise
            async_chunk = _AsyncChunk(future, chunk)
            self._async_chunks.append(async_chunk)
            for handle in chunk:
                handle._chunk = async_chunk
                self._inflight[handle.key] = handle
        self.stats.chunks += len(chunks)

    def _commit(self, handle: SpecFuture, result: JobResult,
                put: bool = True) -> None:
        handle._resolve(result)
        self._inflight.pop(handle.key, None)
        self.stats.simulated += 1
        if put and self.cache is not None:
            self.cache.put(handle.spec, result, key=handle.key)

    def _finalize_chunk(self, chunk: _AsyncChunk) -> None:
        if chunk not in self._async_chunks:
            return                       # already finalized (or cancelled)
        self._async_chunks.remove(chunk)
        try:
            results, busy_seconds = chunk.future.result()
        except BaseException as error:
            # A broken pool (worker killed, pickling failure) is not
            # recoverable in place; drop it so the next dispatch rebuilds.
            # The error surfaces through every handle of the chunk.
            for handle in chunk.items:
                self._inflight.pop(handle.key, None)
                handle._fail(error)
            self._close_pool()
            return
        self._mark_pool()
        self.stats.busy_worker_seconds += busy_seconds
        self.stats.exec_seconds += busy_seconds
        for handle, result in zip(chunk.items, results):
            self._commit(handle, result)
        # Cold runners tear the pool down whenever the in-flight set
        # drains — also for callers driving submit()/wait() directly, so
        # "cold" keeps meaning per-batch pools under the futures API.
        if not self.warm and not self._async_chunks:
            self._close_pool()

    def _wait_jobfile(self, handle: SpecFuture) -> None:
        assert self._jobfile is not None and self.cache is not None
        backend = self._jobfile
        started = time.perf_counter()
        while not handle._done:
            # Drain the queue ourselves: progress never depends on
            # external workers being attached.
            claimed = backend.claim()
            if claimed is not None:
                for spec in backend.load_chunk(claimed):
                    key = spec.content_hash()
                    if self.cache.get(spec, key=key) is None:
                        self.cache.put(spec, execute_spec(spec), key=key)
                    backend.heartbeat(claimed)
                backend.finish(claimed)
            # Harvest every in-flight jobfile handle the cache can now
            # satisfy (local execution above, or remote sweep-workers).
            for pending in [h for h in self._inflight.values()
                            if h._jobfile]:
                hit = self.cache.get(pending.spec, key=pending.key)
                if hit is not None:
                    self._commit(pending, hit, put=False)
            if handle._done:
                break
            if claimed is not None:
                continue
            if backend.reclaim_stale(self.claim_timeout):
                continue
            time.sleep(self.poll_seconds)
        self.stats.exec_seconds += time.perf_counter() - started

    # -- pool internals

    def _pool_target(self, pending_count: int) -> int:
        if self.pool_scaling == "elastic":
            return max(1, min(self.workers, os.cpu_count() or 1))
        return (self.workers if self.warm
                else min(self.workers, pending_count))

    def _ensure_pool(self, size: int) -> ProcessPoolExecutor:
        if self._pool is None:
            started = time.perf_counter()
            context = (multiprocessing.get_context(self.mp_context)
                       if self.mp_context is not None else None)
            self._pool = ProcessPoolExecutor(max_workers=size,
                                             mp_context=context,
                                             initializer=_init_worker)
            if self.pool_scaling == "eager":
                # Occupy every slot briefly so the executor spawns its
                # full complement now; startup cost lands here, not in
                # chunk 1. Elastic pools skip this on purpose: the
                # executor spawns workers lazily as submissions arrive.
                probes = [self._pool.submit(_pool_probe, 0.05)
                          for _ in range(size)]
                for probe in probes:
                    probe.result()
            self._pool_size = size
            self._pool_mark = time.perf_counter()
            self.stats.pool_startup_seconds += time.perf_counter() - started
            self.stats.pools_started += 1
        return self._pool

    def _chunk_count(self, spec_count: int, pool_size: int) -> int:
        if self.chunk_size is not None:
            return math.ceil(spec_count / self.chunk_size)
        # ~4 chunks per worker balances load without per-spec round-trips.
        return min(spec_count, 4 * pool_size)


def run_specs(specs: Sequence[RunSpec], workers: int = 0,
              cache: Optional[Union[str, pathlib.Path]] = None,
              runner: Optional[SweepRunner] = None) -> list[JobResult]:
    """Convenience wrapper: run specs through ``runner`` or a fresh
    :class:`SweepRunner` built from ``workers``/``cache`` (closed before
    returning — callers wanting a warm pool across calls pass ``runner``).
    """
    if runner is not None:
        return runner.run(specs)
    with SweepRunner(workers=workers, cache_dir=cache) as local:
        return local.run(specs)
