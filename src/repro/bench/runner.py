"""Parallel, cached experiment runner with a warm worker pool.

The paper's evaluation protocol (§5.1.3) runs every configuration five
times and sweeps engines x eviction rates x cluster sizes — dozens to
hundreds of independent simulations. This module turns those sweeps into
data: a :class:`RunSpec` is a picklable, declaratively-specified simulation
(workload + engine + cluster + seed) with a stable content hash, and a
:class:`SweepRunner` fans lists of specs out over a persistent
``ProcessPoolExecutor``, returns results in deterministic spec order, and
memoizes completed :class:`~repro.engines.base.JobResult` rows in an
on-disk JSON cache keyed by ``(spec hash, code fingerprint)`` so re-running
a sweep only simulates what changed.

Design constraints:

* **Declarative specs.** A spec references engines by registry name and
  carries options as plain ``(key, value)`` pairs; clusters are named
  eviction rates plus counts (or declarative §6 transient pools). This
  keeps specs picklable for worker processes, JSON-serializable for the
  cache key and the jobfile backend, and independent of in-process object
  identity.
* **Determinism.** ``workers=0`` (the default) runs every simulation
  in-process in spec order — bit-identical to the historical serial
  sweeps. ``workers=N`` runs the same simulations in worker processes;
  each simulation seeds its own ``Generator``, so results are
  bit-identical to the serial path regardless of scheduling, chunking,
  pool lifetime, or backend.
* **Warm pools.** One runner owns its pool across ``run()`` calls
  (``close()`` / context-manager lifecycle). Workers initialize once
  (imports, code fingerprint) and keep a per-process :class:`_BuildCache`
  so programs/engines/clusters are built once per structural key, not
  once per spec — the multi-tenant dispatch loop sends hundreds of
  near-identical jobs where only seed/wave fields vary. Dispatch is
  chunked: one pickle round-trip per chunk, not per spec.
* **Honest caching.** Cache entries are invalidated by a fingerprint of
  every ``.py`` file under ``src/repro``; any code change re-simulates.
  An in-memory LRU fronts the per-spec files so repeated probes within
  one process skip disk I/O.
* **Distributed backend.** ``SweepRunner(backend="jobfile",
  job_dir=...)`` fans chunk files out over a shared directory;
  ``python -m repro sweep-worker <dir>`` processes run anywhere the
  directory is mounted. Chunks are claimed by atomic rename, results
  flow back through the content-hash :class:`ResultCache` (idempotent
  puts give exactly-once result commit even when a crashed worker's
  chunk is reclaimed and partially re-executed), and the submitting
  runner drains the queue itself so a sweep finishes even with zero
  external workers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import multiprocessing
import os
import pathlib
import tempfile
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

from repro.engines.base import ClusterConfig, EngineBase, JobResult

#: Option values allowed in a spec: must survive a JSON round-trip intact.
_SCALAR_TYPES = (bool, int, float, str, type(None))

#: Start method for worker pools. ``spawn`` (not the POSIX ``fork``
#: default) so pool workers are interpreter-fresh — the same execution
#: model as distributed ``sweep-worker`` processes, with no inherited
#: module state, tracer registrations, or fingerprint memos. Spawn
#: startup is expensive (~0.5 s/worker), which is exactly why the pool
#: is warm: the cost is paid once per runner, not once per batch.
DEFAULT_MP_CONTEXT = "spawn"

#: Seconds after which a claimed-but-untouched jobfile chunk is assumed
#: orphaned by a crashed worker and moved back to the queue. Workers
#: touch their claim file after every completed spec, so this only needs
#: to exceed the longest single simulation.
DEFAULT_CLAIM_TIMEOUT = 120.0


def _freeze_options(options: Optional[dict]) -> tuple:
    """Normalize an options mapping to sorted, hashable ``(key, value)``
    pairs, rejecting values that would not survive the JSON cache."""
    if not options:
        return ()
    for key, value in options.items():
        if not isinstance(key, str):
            raise TypeError(f"option names must be strings, got {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"option {key!r} must be a JSON scalar, got {value!r}")
    return tuple(sorted(options.items()))


@dataclass(frozen=True)
class PoolSpec:
    """Declarative form of a §6 :class:`~repro.cluster.manager.TransientPool`
    with memoryless lifetimes (the form the ablations use)."""

    name: str
    count: int
    mean_lifetime_seconds: float


@dataclass(frozen=True)
class RunSpec:
    """One simulation: workload, engine, cluster, seed, and cutoff.

    Every field is declarative (strings, numbers, tuples) so the spec is
    picklable, hashable, and has a stable JSON content hash. Engines are
    named (``pado``, ``spark``, ``spark-checkpoint``); ``engine_options``
    carries constructor/runtime knobs (for Pado these are
    ``PadoRuntimeConfig`` fields, with ``scheduling_policy`` given by
    policy name, e.g. ``"lifetime-aware"``).
    """

    workload: str
    engine: str
    scale: Optional[float] = None
    seed: int = 11
    time_limit_minutes: float = 150.0
    num_reserved: int = 5
    num_transient: int = 40
    eviction: str = "none"
    engine_options: tuple = ()
    transient_pools: Optional[tuple] = None
    #: Multi-tenant runs (:mod:`repro.cluster.tenancy`) pin the job's
    #: eviction schedule to the cluster-wide wave times: a tuple of
    #: ``(offset_seconds, severity)`` pairs relative to the job's start,
    #: simulated via :class:`~repro.trace.models.WaveLifetimeModel`.
    #: Mutually exclusive with a named ``eviction`` rate and with pools.
    eviction_waves: Optional[tuple] = None

    @classmethod
    def make(cls, workload: str, engine: str, *,
             engine_options: Optional[dict] = None,
             transient_pools: Optional[Sequence[PoolSpec]] = None,
             **fields: Any) -> "RunSpec":
        """Build a spec from a plain options dict and pool list."""
        pools = tuple(transient_pools) if transient_pools else None
        return cls(workload=workload, engine=engine,
                   engine_options=_freeze_options(engine_options),
                   transient_pools=pools, **fields)

    def content_hash(self) -> str:
        """Stable hex digest of the spec's canonical JSON form."""
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def options(self) -> dict:
        return dict(self.engine_options)

    def structural_key(self) -> tuple:
        """Everything that shapes the *built objects* (program, engine,
        cluster) but not the run itself: excludes ``seed`` and
        ``time_limit_minutes``, which only parameterize ``engine.run``.
        The per-process :class:`_BuildCache` memoizes on slices of this.
        """
        return (self.workload, self.engine, self.scale, self.num_reserved,
                self.num_transient, self.eviction, self.engine_options,
                self.transient_pools, self.eviction_waves)


def spec_to_dict(spec: RunSpec) -> dict:
    """JSON-safe dict form of a spec (jobfile chunks, cache metadata)."""
    return dataclasses.asdict(spec)


def spec_from_dict(data: dict) -> RunSpec:
    """Inverse of :func:`spec_to_dict`. Restores the tuple structure JSON
    flattened to lists, so ``content_hash()`` round-trips exactly."""
    fields = {f.name: data[f.name] for f in dataclasses.fields(RunSpec)
              if f.name in data}
    fields["engine_options"] = tuple(
        (key, value) for key, value in fields.get("engine_options") or ())
    pools = fields.get("transient_pools")
    if pools is not None:
        fields["transient_pools"] = tuple(
            pool if isinstance(pool, PoolSpec) else PoolSpec(**pool)
            for pool in pools)
    waves = fields.get("eviction_waves")
    if waves is not None:
        fields["eviction_waves"] = tuple(
            (offset, severity) for offset, severity in waves)
    return RunSpec(**fields)


# ----------------------------------------------------------------------
# spec -> runnable objects

def engine_spec(engine: Union[str, EngineBase]) -> tuple[str, tuple]:
    """``(name, engine_options)`` for an engine name or instance.

    Instances of the three registered engines are introspected so existing
    call sites (``engines=[PadoEngine()]``) keep working; custom engine
    classes are not spec-able and raise.
    """
    if isinstance(engine, str):
        return engine, ()
    from repro.core.runtime.engine import PadoEngine
    from repro.core.runtime.master import PadoRuntimeConfig
    from repro.core.runtime.scheduler import LifetimeAwarePolicy
    from repro.engines.spark import SparkEngine
    from repro.engines.spark_checkpoint import SparkCheckpointEngine
    if isinstance(engine, PadoEngine):
        defaults = PadoRuntimeConfig()
        options: dict[str, Any] = {}
        for f in dataclasses.fields(PadoRuntimeConfig):
            value = getattr(engine.config, f.name)
            if value == getattr(defaults, f.name):
                continue
            if f.name == "scheduling_policy":
                if isinstance(value, LifetimeAwarePolicy):
                    value = "lifetime-aware"
                else:
                    raise TypeError(
                        f"cannot spec scheduling policy {value!r}; "
                        f"name it in engine_options instead")
            options[f.name] = value
        return "pado", _freeze_options(options)
    if isinstance(engine, SparkCheckpointEngine):
        options = {}
        if engine.abort_on_fetch_failure is not True:
            options["abort_on_fetch_failure"] = engine.abort_on_fetch_failure
        if engine.store_bandwidth_factor != 0.6:
            options["store_bandwidth_factor"] = engine.store_bandwidth_factor
        return "spark-checkpoint", _freeze_options(options)
    if isinstance(engine, SparkEngine):
        options = {}
        if engine.abort_on_fetch_failure is not True:
            options["abort_on_fetch_failure"] = engine.abort_on_fetch_failure
        return "spark", _freeze_options(options)
    raise TypeError(f"cannot build a RunSpec for engine {engine!r}")


def build_engine(spec: RunSpec) -> EngineBase:
    """Instantiate the engine a spec names."""
    options = spec.options()
    if spec.engine == "pado":
        from repro.core.runtime.engine import PadoEngine
        from repro.core.runtime.master import PadoRuntimeConfig
        policy_name = options.pop("scheduling_policy", None)
        if policy_name is not None:
            if policy_name != "lifetime-aware":
                raise ValueError(
                    f"unknown scheduling policy {policy_name!r}")
            from repro.core.runtime.scheduler import LifetimeAwarePolicy
            options["scheduling_policy"] = LifetimeAwarePolicy()
        return PadoEngine(PadoRuntimeConfig(**options))
    if spec.engine == "spark":
        from repro.engines.spark import SparkEngine
        return SparkEngine(**options)
    if spec.engine == "spark-checkpoint":
        from repro.engines.spark_checkpoint import SparkCheckpointEngine
        return SparkCheckpointEngine(**options)
    raise ValueError(f"unknown engine {spec.engine!r}; "
                     f"choose from pado, spark, spark-checkpoint")


def build_cluster(spec: RunSpec) -> ClusterConfig:
    """Instantiate the simulated cluster a spec describes."""
    from repro.trace.models import (EvictionRate, ExponentialLifetimeModel,
                                    WaveLifetimeModel)
    pools = None
    if spec.transient_pools:
        from repro.cluster.manager import TransientPool
        pools = tuple(
            TransientPool(p.name, p.count,
                          ExponentialLifetimeModel(p.mean_lifetime_seconds),
                          p.mean_lifetime_seconds)
            for p in spec.transient_pools)
    eviction: Any = EvictionRate(spec.eviction)
    if spec.eviction_waves is not None:
        if spec.eviction != "none":
            raise ValueError(
                "eviction_waves replaces the lifetime model; "
                "set eviction='none' alongside it")
        if pools is not None:
            raise ValueError("eviction_waves and transient_pools "
                             "cannot be combined")
        eviction = WaveLifetimeModel(spec.eviction_waves)
    return ClusterConfig(num_reserved=spec.num_reserved,
                         num_transient=spec.num_transient,
                         eviction=eviction,
                         transient_pools=pools)


# ----------------------------------------------------------------------
# per-process build cache

class _BuildCache:
    """Memoizes ``build_engine``/``build_cluster``/workload construction
    by the spec's structural key — one instance per process (workers and
    the in-process serial path alike).

    What is safe to reuse across runs, verified bit-identical by
    ``tests/bench/test_sweep_pool.py``:

    * **Programs** — the DAG is read-only to the engines.
    * **Clusters** — ``ClusterConfig`` is frozen; lifetime models are
      stateless (``sample(rng)`` draws from the caller's generator).
    * **Engines without a ``scheduling_policy`` option** — plain config
      holders whose ``run()`` builds fresh per-run state. A configured
      policy *instance* (e.g. ``LifetimeAwarePolicy``) carries a
      round-robin cursor across runs, so those specs rebuild the engine
      every time.

    Entries are evicted FIFO past ``capacity`` per table so tenancy
    sweeps with thousands of distinct wave tuples stay bounded.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._programs: OrderedDict[tuple, Any] = OrderedDict()
        self._engines: OrderedDict[tuple, EngineBase] = OrderedDict()
        self._clusters: OrderedDict[tuple, ClusterConfig] = OrderedDict()

    def _lookup(self, table: OrderedDict, key: tuple, build) -> Any:
        try:
            value = table[key]
            self.hits += 1
            return value
        except KeyError:
            self.misses += 1
        value = build()
        table[key] = value
        while len(table) > self.capacity:
            table.popitem(last=False)
        return value

    def program_for(self, spec: RunSpec) -> Any:
        from repro.bench.experiments import make_workload
        return self._lookup(self._programs, (spec.workload, spec.scale),
                            lambda: make_workload(spec.workload, spec.scale))

    def engine_for(self, spec: RunSpec) -> EngineBase:
        if any(key == "scheduling_policy" for key, _ in spec.engine_options):
            return build_engine(spec)
        return self._lookup(self._engines, (spec.engine, spec.engine_options),
                            lambda: build_engine(spec))

    def cluster_for(self, spec: RunSpec) -> ClusterConfig:
        key = (spec.num_reserved, spec.num_transient, spec.eviction,
               spec.transient_pools, spec.eviction_waves)
        return self._lookup(self._clusters, key, lambda: build_cluster(spec))

    def clear(self) -> None:
        self._programs.clear()
        self._engines.clear()
        self._clusters.clear()


#: Process-wide build cache shared by every spec executed in this process.
_BUILD_CACHE = _BuildCache()


def build_cache() -> _BuildCache:
    """This process's build cache (tests inspect/clear it)."""
    return _BUILD_CACHE


def execute_spec(spec: RunSpec) -> JobResult:
    """Run one spec to completion (this is what worker processes execute).

    Program/engine/cluster construction is memoized per process through
    :func:`build_cache`; the simulation itself always runs fresh.
    """
    program = _BUILD_CACHE.program_for(spec)
    engine = _BUILD_CACHE.engine_for(spec)
    return engine.run(program, _BUILD_CACHE.cluster_for(spec), seed=spec.seed,
                      time_limit=spec.time_limit_minutes * 60.0)


# ----------------------------------------------------------------------
# pool worker entry points (module-level so they pickle under spawn)

def _init_worker() -> None:
    """Run once per pool worker: pay the heavy imports and the source-tree
    fingerprint up front so the first chunk measures simulation, not
    setup. Spawned workers start interpreter-fresh, so nothing leaks in
    from the parent."""
    import repro.bench.experiments  # noqa: F401
    import repro.cluster.tenancy  # noqa: F401
    import repro.predict  # noqa: F401
    code_fingerprint()


def _pool_probe(delay_seconds: float) -> int:
    """Warm-up task: occupying every worker briefly forces the executor
    to actually spawn its full complement, so pool startup is paid (and
    measured) inside ``_ensure_pool``, not inside the first real chunk."""
    time.sleep(delay_seconds)
    return os.getpid()


def _execute_chunk(specs: list[RunSpec]) -> list[JobResult]:
    """Worker-side entry: one pickle round-trip executes a whole chunk."""
    return [execute_spec(spec) for spec in specs]


def _chunked(items: list, chunk_count: int) -> list[list]:
    """Split into ``chunk_count`` contiguous slices, sizes within one."""
    count = max(1, min(chunk_count, len(items)))
    base, extra = divmod(len(items), count)
    chunks, start = [], 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


# ----------------------------------------------------------------------
# JobResult <-> JSON

def result_to_dict(result: JobResult) -> dict:
    """Canonical dict form of a :class:`JobResult` (JSON-safe for the
    synthetic sweeps; raises ``TypeError`` later at ``json.dumps`` time if
    extras/outputs carry non-JSON payloads)."""
    return dataclasses.asdict(result)


def result_from_dict(data: dict) -> JobResult:
    """Inverse of :func:`result_to_dict` (restores int partition keys)."""
    outputs = data.get("outputs")
    if outputs is not None:
        outputs = {op: {int(index): records
                        for index, records in parts.items()}
                   for op, parts in outputs.items()}
    fields = {f.name: data[f.name] for f in dataclasses.fields(JobResult)
              if f.name in data}
    fields["outputs"] = outputs
    return JobResult(**fields)


def canonical_result_json(result: JobResult) -> str:
    """Byte-stable JSON encoding used for cache entries and equality
    checks across serial/parallel runs."""
    return json.dumps(result_to_dict(result), sort_keys=True)


# ----------------------------------------------------------------------
# code fingerprint + on-disk cache

_FINGERPRINT: Optional[str] = None


def _tree_fingerprint(root: pathlib.Path) -> str:
    """Digest over every ``.py`` file under ``root`` (path + content)."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_fingerprint(root: Optional[pathlib.Path] = None) -> str:
    """Digest over every ``.py`` file under ``src/repro``; part of the
    cache key so stale results never survive a code change.

    The tree is the whole package — engines, the cluster substrate, and
    the multi-tenant layer (``repro.cluster.tenancy``) alike — because a
    cached :class:`~repro.engines.base.JobResult` depends on all of them.
    ``root`` overrides the digested tree (uncached); tests use it to
    prove specific modules participate in the digest.
    """
    global _FINGERPRINT
    if root is not None:
        return _tree_fingerprint(pathlib.Path(root))
    if _FINGERPRINT is None:
        _FINGERPRINT = _tree_fingerprint(
            pathlib.Path(__file__).resolve().parents[1])
    return _FINGERPRINT


class ResultCache:
    """One JSON file per completed spec, under
    ``<dir>/<code fingerprint>/<spec hash>.json``, fronted by an
    in-memory LRU so repeated probes within one process skip disk I/O.

    ``get``/``put``/``path_for`` accept the precomputed content hash via
    ``key=`` so callers that already hashed the spec never hash twice.
    ``memory_hits``/``disk_hits``/``misses`` count where probes landed.
    """

    def __init__(self, directory: Union[str, pathlib.Path],
                 memory_entries: int = 4096) -> None:
        self.directory = pathlib.Path(directory)
        self.memory_entries = memory_entries
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self._memory: OrderedDict[str, JobResult] = OrderedDict()

    def path_for(self, spec: RunSpec, key: Optional[str] = None)\
            -> pathlib.Path:
        key = key if key is not None else spec.content_hash()
        return self.directory / code_fingerprint() / f"{key}.json"

    def get(self, spec: RunSpec, key: Optional[str] = None)\
            -> Optional[JobResult]:
        key = key if key is not None else spec.content_hash()
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return cached
        try:
            data = json.loads(self.path_for(spec, key=key).read_text())
            result = result_from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.disk_hits += 1
        self._remember(key, result)
        return result

    def put(self, spec: RunSpec, result: JobResult,
            key: Optional[str] = None) -> bool:
        """Persist a result; returns False (and caches nothing) when the
        result carries non-JSON payloads (real-data ``outputs``/extras).
        Writes are atomic (tempfile + rename), so concurrent writers —
        jobfile workers racing on a reclaimed chunk — land whole files
        and the duplicate put is an idempotent overwrite."""
        key = key if key is not None else spec.content_hash()
        try:
            payload = json.dumps(
                {"spec": spec_to_dict(spec),
                 "result": result_to_dict(result)},
                sort_keys=True)
        except TypeError:
            return False
        path = self.path_for(spec, key=key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self._remember(key, result)
        return True

    def _remember(self, key: str, result: JobResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)


# ----------------------------------------------------------------------
# jobfile backend: chunk files over a shared directory

class JobFileBackend:
    """Work queue as files: ``<root>/queue/*.json`` chunks are claimed by
    atomic rename into ``<root>/claimed/``, executed, and deleted; results
    land in the shared :class:`ResultCache` at ``<root>/cache``.

    Crash recovery: a worker that dies mid-chunk leaves its claim file
    behind. Workers touch the claim after every completed spec, so a
    claim whose mtime is older than the reclaim timeout is orphaned and
    moves back to the queue. Specs already finished before the crash are
    cache hits on re-execution — at-least-once execution, exactly-once
    result commit.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.queue_dir = self.root / "queue"
        self.claimed_dir = self.root / "claimed"
        self.cache_dir = self.root / "cache"
        for directory in (self.queue_dir, self.claimed_dir, self.cache_dir):
            directory.mkdir(parents=True, exist_ok=True)

    def enqueue_chunk(self, specs: Sequence[RunSpec]) -> pathlib.Path:
        """Atomically publish one chunk file to the queue."""
        payload = json.dumps(
            {"specs": [spec_to_dict(spec) for spec in specs]},
            sort_keys=True)
        target = self.queue_dir / f"chunk-{uuid.uuid4().hex}.json"
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, target)
        return target

    def claim(self) -> Optional[pathlib.Path]:
        """Move one queued chunk into ``claimed/``; None when the queue is
        empty. The rename is atomic, so exactly one claimant wins."""
        for path in sorted(self.queue_dir.glob("chunk-*.json")):
            target = self.claimed_dir / path.name
            try:
                os.rename(path, target)
            except OSError:
                continue
            return target
        return None

    def finish(self, claimed: pathlib.Path) -> None:
        try:
            claimed.unlink()
        except OSError:
            pass

    def heartbeat(self, claimed: pathlib.Path) -> None:
        """Freshen a claim's mtime so it is not reclaimed while live."""
        try:
            os.utime(claimed)
        except OSError:
            pass

    def reclaim_stale(self, older_than_seconds: float) -> int:
        """Move orphaned claims back to the queue; returns how many."""
        reclaimed = 0
        cutoff = time.time() - older_than_seconds
        for path in sorted(self.claimed_dir.glob("chunk-*.json")):
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                os.rename(path, self.queue_dir / path.name)
            except OSError:
                continue
            reclaimed += 1
        return reclaimed

    @staticmethod
    def load_chunk(path: pathlib.Path) -> list[RunSpec]:
        data = json.loads(path.read_text())
        return [spec_from_dict(entry) for entry in data["specs"]]


def sweep_worker_loop(job_dir: Union[str, pathlib.Path], *,
                      cache_dir: Optional[Union[str, pathlib.Path]] = None,
                      once: bool = False, poll_seconds: float = 0.5,
                      claim_timeout: float = DEFAULT_CLAIM_TIMEOUT,
                      max_chunks: Optional[int] = None) -> int:
    """Process jobfile chunks until the queue stays empty (``once``) or
    forever (the ``python -m repro sweep-worker`` service loop). Returns
    the number of chunks completed.

    Each spec is probed against the shared cache before executing —
    re-running a reclaimed chunk only simulates what the crashed worker
    had not finished.
    """
    backend = JobFileBackend(job_dir)
    cache = ResultCache(cache_dir if cache_dir is not None
                        else backend.cache_dir)
    completed = 0
    while True:
        claimed = backend.claim()
        if claimed is None:
            if backend.reclaim_stale(claim_timeout):
                continue
            if once:
                return completed
            time.sleep(poll_seconds)
            continue
        for spec in backend.load_chunk(claimed):
            key = spec.content_hash()
            if cache.get(spec, key=key) is None:
                cache.put(spec, execute_spec(spec), key=key)
            backend.heartbeat(claimed)
        backend.finish(claimed)
        completed += 1
        if max_chunks is not None and completed >= max_chunks:
            return completed


# ----------------------------------------------------------------------
# the runner

@dataclass
class RunnerStats:
    """What a :class:`SweepRunner` actually did, and how long it took.

    ``simulated`` counts fresh results this runner produced (locally or,
    for the jobfile backend, through attached workers). ``exec_seconds``
    is time inside simulation dispatch — pool startup is accounted
    separately so ``mean_spec_seconds`` reflects steady-state throughput.
    """

    simulated: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    batches: int = 0
    chunks: int = 0
    pools_started: int = 0
    wall_seconds: float = 0.0
    exec_seconds: float = 0.0
    pool_startup_seconds: float = 0.0

    @property
    def mean_spec_seconds(self) -> float:
        return self.exec_seconds / self.simulated if self.simulated else 0.0

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["mean_spec_seconds"] = self.mean_spec_seconds
        return data

    def __str__(self) -> str:
        text = (f"{self.simulated} simulated, {self.cache_hits} cached, "
                f"{self.deduplicated} deduplicated")
        text += (f"; {self.wall_seconds:.2f}s wall, "
                 f"{self.mean_spec_seconds * 1e3:.1f} ms/spec")
        if self.pools_started:
            text += (f", {self.pool_startup_seconds:.2f}s pool startup "
                     f"x{self.pools_started}")
        return text


class SweepRunner:
    """Execute lists of :class:`RunSpec` with optional process-parallelism
    and on-disk memoization.

    ``workers=0`` runs serially in-process — the default for
    determinism-sensitive tests. ``workers=N`` fans pending specs out in
    chunks over a persistent ``ProcessPoolExecutor`` that lives across
    ``run()`` calls; results always come back in spec order, bit-identical
    to serial. Identical specs within one call are simulated once (the
    simulation is deterministic, so duplicates share the result object).

    Lifecycle: the pool (and jobfile state) is released by ``close()`` or
    by using the runner as a context manager::

        with SweepRunner(workers=8) as runner:
            for batch in batches:
                results = runner.run(batch)   # one warm pool throughout

    ``warm=False`` starts (and tears down) an ephemeral pool per
    ``run()`` call — the per-batch cold-pool model this refactor
    replaces, kept as the benchmark baseline. ``backend="jobfile"``
    dispatches through a shared directory instead of a local pool — see
    :class:`JobFileBackend`; the submitting runner drains the queue
    itself, so external ``sweep-worker`` processes accelerate but are
    never required for completion.
    """

    def __init__(self, workers: int = 0,
                 cache_dir: Optional[Union[str, pathlib.Path]] = None, *,
                 warm: bool = True,
                 backend: str = "process",
                 job_dir: Optional[Union[str, pathlib.Path]] = None,
                 chunk_size: Optional[int] = None,
                 mp_context: Optional[str] = DEFAULT_MP_CONTEXT,
                 claim_timeout: float = DEFAULT_CLAIM_TIMEOUT,
                 poll_seconds: float = 0.05) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if backend not in ("process", "jobfile"):
            raise ValueError(f"unknown backend {backend!r}; "
                             f"choose from process, jobfile")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = workers
        self.warm = warm
        self.backend = backend
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.claim_timeout = claim_timeout
        self.poll_seconds = poll_seconds
        self._jobfile: Optional[JobFileBackend] = None
        if backend == "jobfile":
            if job_dir is None:
                raise ValueError("backend='jobfile' requires job_dir")
            self._jobfile = JobFileBackend(job_dir)
            if cache_dir is None:
                # Results flow back through the shared cache; without one
                # the runner could never observe remote completions.
                cache_dir = self._jobfile.cache_dir
        elif job_dir is not None:
            raise ValueError("job_dir is only meaningful with "
                             "backend='jobfile'")
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.stats = RunnerStats()
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool. The runner stays usable — the next
        ``run()`` starts a fresh pool — so ``close()`` doubles as an
        explicit way to release workers between distant batches."""
        self._close_pool()

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- execution

    def run(self, specs: Sequence[RunSpec]) -> list[JobResult]:
        started = time.perf_counter()
        specs = list(specs)
        results: list[Optional[JobResult]] = [None] * len(specs)

        # Cache probe, then dedupe the misses by content hash (hashed
        # exactly once per spec; the key travels with it from here on).
        pending: dict[str, list[int]] = {}
        pending_specs: list[RunSpec] = []
        pending_keys: list[str] = []
        for index, spec in enumerate(specs):
            key = spec.content_hash()
            if self.cache is not None:
                hit = self.cache.get(spec, key=key)
                if hit is not None:
                    results[index] = hit
                    self.stats.cache_hits += 1
                    continue
            if key in pending:
                pending[key].append(index)
                self.stats.deduplicated += 1
            else:
                pending[key] = [index]
                pending_specs.append(spec)
                pending_keys.append(key)

        fresh = self._execute(pending_specs, pending_keys)
        self.stats.simulated += len(pending_specs)

        for spec, key, result in zip(pending_specs, pending_keys, fresh):
            for index in pending[key]:
                results[index] = result
            if self.cache is not None:
                self.cache.put(spec, result, key=key)
        self.stats.batches += 1
        self.stats.wall_seconds += time.perf_counter() - started
        return results  # type: ignore[return-value]

    def _execute(self, specs: list[RunSpec],
                 keys: list[str]) -> list[JobResult]:
        if not specs:
            return []
        if self.backend == "jobfile":
            return self._execute_jobfile(specs, keys)
        use_pool = self.workers > 0
        started = time.perf_counter()
        if use_pool:
            results = self._execute_pool(specs)
        else:
            results = [execute_spec(spec) for spec in specs]
        self.stats.exec_seconds += time.perf_counter() - started
        return results

    def _ensure_pool(self, size: int) -> ProcessPoolExecutor:
        if self._pool is None:
            started = time.perf_counter()
            context = (multiprocessing.get_context(self.mp_context)
                       if self.mp_context is not None else None)
            self._pool = ProcessPoolExecutor(max_workers=size,
                                             mp_context=context,
                                             initializer=_init_worker)
            # Occupy every slot briefly so the executor spawns its full
            # complement now; startup cost lands here, not in chunk 1.
            probes = [self._pool.submit(_pool_probe, 0.05)
                      for _ in range(size)]
            for probe in probes:
                probe.result()
            self.stats.pool_startup_seconds += time.perf_counter() - started
            self.stats.pools_started += 1
        return self._pool

    def _chunk_count(self, spec_count: int, pool_size: int) -> int:
        if self.chunk_size is not None:
            return math.ceil(spec_count / self.chunk_size)
        # ~4 chunks per worker balances load without per-spec round-trips.
        return min(spec_count, 4 * pool_size)

    def _execute_pool(self, specs: list[RunSpec]) -> list[JobResult]:
        size = self.workers if self.warm else min(self.workers, len(specs))
        pool = self._ensure_pool(size)
        chunks = _chunked(specs, self._chunk_count(len(specs), size))
        try:
            futures = [pool.submit(_execute_chunk, chunk)
                       for chunk in chunks]
            results: list[JobResult] = []
            for future in futures:  # in submission order: streams, ordered
                results.extend(future.result())
        except BaseException:
            # A broken pool (worker killed, pickling failure) is not
            # recoverable in place; drop it so the next run() rebuilds.
            self._close_pool()
            raise
        self.stats.chunks += len(chunks)
        if not self.warm:
            self._close_pool()
        return results

    def _execute_jobfile(self, specs: list[RunSpec],
                         keys: list[str]) -> list[JobResult]:
        assert self._jobfile is not None and self.cache is not None
        backend = self._jobfile
        started = time.perf_counter()
        chunk_size = self.chunk_size if self.chunk_size is not None else 4
        chunks = _chunked(specs, math.ceil(len(specs) / chunk_size))
        for chunk in chunks:
            backend.enqueue_chunk(chunk)
        self.stats.chunks += len(chunks)

        missing: dict[str, RunSpec] = dict(zip(keys, specs))
        found: dict[str, JobResult] = {}
        while missing:
            # Drain the queue ourselves: progress never depends on
            # external workers being attached.
            claimed = backend.claim()
            if claimed is not None:
                for spec in backend.load_chunk(claimed):
                    key = spec.content_hash()
                    if self.cache.get(spec, key=key) is None:
                        self.cache.put(spec, execute_spec(spec), key=key)
                    backend.heartbeat(claimed)
                backend.finish(claimed)
                continue
            # Queue empty: harvest results, then wait on in-flight claims.
            for key in list(missing):
                hit = self.cache.get(missing[key], key=key)
                if hit is not None:
                    found[key] = hit
                    del missing[key]
            if not missing:
                break
            if backend.reclaim_stale(self.claim_timeout):
                continue
            time.sleep(self.poll_seconds)
        self.stats.exec_seconds += time.perf_counter() - started
        return [found[key] for key in keys]


def run_specs(specs: Sequence[RunSpec], workers: int = 0,
              cache: Optional[Union[str, pathlib.Path]] = None,
              runner: Optional[SweepRunner] = None) -> list[JobResult]:
    """Convenience wrapper: run specs through ``runner`` or a fresh
    :class:`SweepRunner` built from ``workers``/``cache`` (closed before
    returning — callers wanting a warm pool across calls pass ``runner``).
    """
    if runner is not None:
        return runner.run(specs)
    with SweepRunner(workers=workers, cache_dir=cache) as local:
        return local.run(specs)
