"""Parallel, cached experiment runner.

The paper's evaluation protocol (§5.1.3) runs every configuration five
times and sweeps engines x eviction rates x cluster sizes — dozens to
hundreds of independent simulations. This module turns those sweeps into
data: a :class:`RunSpec` is a picklable, declaratively-specified simulation
(workload + engine + cluster + seed) with a stable content hash, and a
:class:`SweepRunner` fans lists of specs out over a
``ProcessPoolExecutor``, returns results in deterministic spec order, and
memoizes completed :class:`~repro.engines.base.JobResult` rows in an
on-disk JSON cache keyed by ``(spec hash, code fingerprint)`` so re-running
a sweep only simulates what changed.

Design constraints:

* **Declarative specs.** A spec references engines by registry name and
  carries options as plain ``(key, value)`` pairs; clusters are named
  eviction rates plus counts (or declarative §6 transient pools). This
  keeps specs picklable for worker processes, JSON-serializable for the
  cache key, and independent of in-process object identity.
* **Determinism.** ``workers=0`` (the default) runs every simulation
  in-process in spec order — bit-identical to the historical serial
  sweeps. ``workers=N`` runs the same simulations in worker processes;
  each simulation seeds its own ``Generator``, so results are
  bit-identical to the serial path regardless of scheduling.
* **Honest caching.** Cache entries are invalidated by a fingerprint of
  every ``.py`` file under ``src/repro``; any code change re-simulates.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

from repro.engines.base import ClusterConfig, EngineBase, JobResult

#: Option values allowed in a spec: must survive a JSON round-trip intact.
_SCALAR_TYPES = (bool, int, float, str, type(None))


def _freeze_options(options: Optional[dict]) -> tuple:
    """Normalize an options mapping to sorted, hashable ``(key, value)``
    pairs, rejecting values that would not survive the JSON cache."""
    if not options:
        return ()
    for key, value in options.items():
        if not isinstance(key, str):
            raise TypeError(f"option names must be strings, got {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"option {key!r} must be a JSON scalar, got {value!r}")
    return tuple(sorted(options.items()))


@dataclass(frozen=True)
class PoolSpec:
    """Declarative form of a §6 :class:`~repro.cluster.manager.TransientPool`
    with memoryless lifetimes (the form the ablations use)."""

    name: str
    count: int
    mean_lifetime_seconds: float


@dataclass(frozen=True)
class RunSpec:
    """One simulation: workload, engine, cluster, seed, and cutoff.

    Every field is declarative (strings, numbers, tuples) so the spec is
    picklable, hashable, and has a stable JSON content hash. Engines are
    named (``pado``, ``spark``, ``spark-checkpoint``); ``engine_options``
    carries constructor/runtime knobs (for Pado these are
    ``PadoRuntimeConfig`` fields, with ``scheduling_policy`` given by
    policy name, e.g. ``"lifetime-aware"``).
    """

    workload: str
    engine: str
    scale: Optional[float] = None
    seed: int = 11
    time_limit_minutes: float = 150.0
    num_reserved: int = 5
    num_transient: int = 40
    eviction: str = "none"
    engine_options: tuple = ()
    transient_pools: Optional[tuple] = None
    #: Multi-tenant runs (:mod:`repro.cluster.tenancy`) pin the job's
    #: eviction schedule to the cluster-wide wave times: a tuple of
    #: ``(offset_seconds, severity)`` pairs relative to the job's start,
    #: simulated via :class:`~repro.trace.models.WaveLifetimeModel`.
    #: Mutually exclusive with a named ``eviction`` rate and with pools.
    eviction_waves: Optional[tuple] = None

    @classmethod
    def make(cls, workload: str, engine: str, *,
             engine_options: Optional[dict] = None,
             transient_pools: Optional[Sequence[PoolSpec]] = None,
             **fields: Any) -> "RunSpec":
        """Build a spec from a plain options dict and pool list."""
        pools = tuple(transient_pools) if transient_pools else None
        return cls(workload=workload, engine=engine,
                   engine_options=_freeze_options(engine_options),
                   transient_pools=pools, **fields)

    def content_hash(self) -> str:
        """Stable hex digest of the spec's canonical JSON form."""
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def options(self) -> dict:
        return dict(self.engine_options)


# ----------------------------------------------------------------------
# spec -> runnable objects

def engine_spec(engine: Union[str, EngineBase]) -> tuple[str, tuple]:
    """``(name, engine_options)`` for an engine name or instance.

    Instances of the three registered engines are introspected so existing
    call sites (``engines=[PadoEngine()]``) keep working; custom engine
    classes are not spec-able and raise.
    """
    if isinstance(engine, str):
        return engine, ()
    from repro.core.runtime.engine import PadoEngine
    from repro.core.runtime.master import PadoRuntimeConfig
    from repro.core.runtime.scheduler import LifetimeAwarePolicy
    from repro.engines.spark import SparkEngine
    from repro.engines.spark_checkpoint import SparkCheckpointEngine
    if isinstance(engine, PadoEngine):
        defaults = PadoRuntimeConfig()
        options: dict[str, Any] = {}
        for f in dataclasses.fields(PadoRuntimeConfig):
            value = getattr(engine.config, f.name)
            if value == getattr(defaults, f.name):
                continue
            if f.name == "scheduling_policy":
                if isinstance(value, LifetimeAwarePolicy):
                    value = "lifetime-aware"
                else:
                    raise TypeError(
                        f"cannot spec scheduling policy {value!r}; "
                        f"name it in engine_options instead")
            options[f.name] = value
        return "pado", _freeze_options(options)
    if isinstance(engine, SparkCheckpointEngine):
        options = {}
        if engine.abort_on_fetch_failure is not True:
            options["abort_on_fetch_failure"] = engine.abort_on_fetch_failure
        if engine.store_bandwidth_factor != 0.6:
            options["store_bandwidth_factor"] = engine.store_bandwidth_factor
        return "spark-checkpoint", _freeze_options(options)
    if isinstance(engine, SparkEngine):
        options = {}
        if engine.abort_on_fetch_failure is not True:
            options["abort_on_fetch_failure"] = engine.abort_on_fetch_failure
        return "spark", _freeze_options(options)
    raise TypeError(f"cannot build a RunSpec for engine {engine!r}")


def build_engine(spec: RunSpec) -> EngineBase:
    """Instantiate the engine a spec names."""
    options = spec.options()
    if spec.engine == "pado":
        from repro.core.runtime.engine import PadoEngine
        from repro.core.runtime.master import PadoRuntimeConfig
        policy_name = options.pop("scheduling_policy", None)
        if policy_name is not None:
            if policy_name != "lifetime-aware":
                raise ValueError(
                    f"unknown scheduling policy {policy_name!r}")
            from repro.core.runtime.scheduler import LifetimeAwarePolicy
            options["scheduling_policy"] = LifetimeAwarePolicy()
        return PadoEngine(PadoRuntimeConfig(**options))
    if spec.engine == "spark":
        from repro.engines.spark import SparkEngine
        return SparkEngine(**options)
    if spec.engine == "spark-checkpoint":
        from repro.engines.spark_checkpoint import SparkCheckpointEngine
        return SparkCheckpointEngine(**options)
    raise ValueError(f"unknown engine {spec.engine!r}; "
                     f"choose from pado, spark, spark-checkpoint")


def build_cluster(spec: RunSpec) -> ClusterConfig:
    """Instantiate the simulated cluster a spec describes."""
    from repro.trace.models import (EvictionRate, ExponentialLifetimeModel,
                                    WaveLifetimeModel)
    pools = None
    if spec.transient_pools:
        from repro.cluster.manager import TransientPool
        pools = tuple(
            TransientPool(p.name, p.count,
                          ExponentialLifetimeModel(p.mean_lifetime_seconds),
                          p.mean_lifetime_seconds)
            for p in spec.transient_pools)
    eviction: Any = EvictionRate(spec.eviction)
    if spec.eviction_waves is not None:
        if spec.eviction != "none":
            raise ValueError(
                "eviction_waves replaces the lifetime model; "
                "set eviction='none' alongside it")
        if pools is not None:
            raise ValueError("eviction_waves and transient_pools "
                             "cannot be combined")
        eviction = WaveLifetimeModel(spec.eviction_waves)
    return ClusterConfig(num_reserved=spec.num_reserved,
                         num_transient=spec.num_transient,
                         eviction=eviction,
                         transient_pools=pools)


def execute_spec(spec: RunSpec) -> JobResult:
    """Run one spec to completion (this is what worker processes execute)."""
    from repro.bench.experiments import make_workload
    program = make_workload(spec.workload, spec.scale)
    engine = build_engine(spec)
    return engine.run(program, build_cluster(spec), seed=spec.seed,
                      time_limit=spec.time_limit_minutes * 60.0)


# ----------------------------------------------------------------------
# JobResult <-> JSON

def result_to_dict(result: JobResult) -> dict:
    """Canonical dict form of a :class:`JobResult` (JSON-safe for the
    synthetic sweeps; raises ``TypeError`` later at ``json.dumps`` time if
    extras/outputs carry non-JSON payloads)."""
    return dataclasses.asdict(result)


def result_from_dict(data: dict) -> JobResult:
    """Inverse of :func:`result_to_dict` (restores int partition keys)."""
    outputs = data.get("outputs")
    if outputs is not None:
        outputs = {op: {int(index): records
                        for index, records in parts.items()}
                   for op, parts in outputs.items()}
    fields = {f.name: data[f.name] for f in dataclasses.fields(JobResult)
              if f.name in data}
    fields["outputs"] = outputs
    return JobResult(**fields)


def canonical_result_json(result: JobResult) -> str:
    """Byte-stable JSON encoding used for cache entries and equality
    checks across serial/parallel runs."""
    return json.dumps(result_to_dict(result), sort_keys=True)


# ----------------------------------------------------------------------
# code fingerprint + on-disk cache

_FINGERPRINT: Optional[str] = None


def _tree_fingerprint(root: pathlib.Path) -> str:
    """Digest over every ``.py`` file under ``root`` (path + content)."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_fingerprint(root: Optional[pathlib.Path] = None) -> str:
    """Digest over every ``.py`` file under ``src/repro``; part of the
    cache key so stale results never survive a code change.

    The tree is the whole package — engines, the cluster substrate, and
    the multi-tenant layer (``repro.cluster.tenancy``) alike — because a
    cached :class:`~repro.engines.base.JobResult` depends on all of them.
    ``root`` overrides the digested tree (uncached); tests use it to
    prove specific modules participate in the digest.
    """
    global _FINGERPRINT
    if root is not None:
        return _tree_fingerprint(pathlib.Path(root))
    if _FINGERPRINT is None:
        _FINGERPRINT = _tree_fingerprint(
            pathlib.Path(__file__).resolve().parents[1])
    return _FINGERPRINT


class ResultCache:
    """One JSON file per completed spec, under
    ``<dir>/<code fingerprint>/<spec hash>.json``."""

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory)

    def path_for(self, spec: RunSpec) -> pathlib.Path:
        return (self.directory / code_fingerprint()
                / f"{spec.content_hash()}.json")

    def get(self, spec: RunSpec) -> Optional[JobResult]:
        path = self.path_for(spec)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return result_from_dict(data["result"])

    def put(self, spec: RunSpec, result: JobResult) -> bool:
        """Persist a result; returns False (and caches nothing) when the
        result carries non-JSON payloads (real-data ``outputs``/extras)."""
        try:
            payload = json.dumps(
                {"spec": dataclasses.asdict(spec),
                 "result": result_to_dict(result)},
                sort_keys=True)
        except TypeError:
            return False
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True


# ----------------------------------------------------------------------
# the runner

@dataclass
class RunnerStats:
    """What a :class:`SweepRunner` actually did."""

    simulated: int = 0
    cache_hits: int = 0
    deduplicated: int = 0

    def __str__(self) -> str:
        return (f"{self.simulated} simulated, {self.cache_hits} cached, "
                f"{self.deduplicated} deduplicated")


class SweepRunner:
    """Execute lists of :class:`RunSpec` with optional process-parallelism
    and on-disk memoization.

    ``workers=0`` (or 1) runs serially in-process — the default for
    determinism-sensitive tests. ``workers=N`` fans pending specs out over
    a ``ProcessPoolExecutor``; results always come back in spec order.
    Identical specs within one call are simulated once (the simulation is
    deterministic, so duplicates share the result object).
    """

    def __init__(self, workers: int = 0,
                 cache_dir: Optional[Union[str, pathlib.Path]] = None)\
            -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.stats = RunnerStats()

    def run(self, specs: Sequence[RunSpec]) -> list[JobResult]:
        specs = list(specs)
        results: list[Optional[JobResult]] = [None] * len(specs)

        # Cache probe, then dedupe the misses by content hash.
        pending: dict[str, list[int]] = {}
        pending_specs: list[RunSpec] = []
        for index, spec in enumerate(specs):
            if self.cache is not None:
                hit = self.cache.get(spec)
                if hit is not None:
                    results[index] = hit
                    self.stats.cache_hits += 1
                    continue
            key = spec.content_hash()
            if key in pending:
                pending[key].append(index)
                self.stats.deduplicated += 1
            else:
                pending[key] = [index]
                pending_specs.append(spec)

        fresh = self._execute(pending_specs)
        self.stats.simulated += len(pending_specs)

        for spec, result in zip(pending_specs, fresh):
            for index in pending[spec.content_hash()]:
                results[index] = result
            if self.cache is not None:
                self.cache.put(spec, result)
        return results  # type: ignore[return-value]

    def _execute(self, specs: list[RunSpec]) -> list[JobResult]:
        if self.workers > 1 and len(specs) > 1:
            max_workers = min(self.workers, len(specs))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = [pool.submit(execute_spec, spec) for spec in specs]
                return [future.result() for future in futures]
        return [execute_spec(spec) for spec in specs]


def run_specs(specs: Sequence[RunSpec], workers: int = 0,
              cache: Optional[Union[str, pathlib.Path]] = None,
              runner: Optional[SweepRunner] = None) -> list[JobResult]:
    """Convenience wrapper: run specs through ``runner`` or a fresh
    :class:`SweepRunner` built from ``workers``/``cache``."""
    if runner is None:
        runner = SweepRunner(workers=workers, cache_dir=cache)
    return runner.run(specs)
