"""Plain-text rendering of experiment results, paper-style.

Every experiment in :mod:`repro.bench.experiments` returns rows that these
helpers format as the tables/series the paper reports, alongside the
paper's own numbers where available.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Monospace table with column alignment."""
    cells = [[str(h) for h in headers]] + \
        [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def render_cdf_series(series: dict[str, tuple[Sequence[float],
                                              Sequence[float]]],
                      x_label: str = "minutes",
                      points: Sequence[float] = (1, 2, 5, 10, 20, 30, 60),
                      title: Optional[str] = None) -> str:
    """Render CDF curves as rows sampled at fixed x positions (Figure 1)."""
    headers = [x_label] + list(series)
    rows = []
    for x in points:
        row: list[Any] = [x]
        for label, (xs, ys) in series.items():
            value = _interp(x, xs, ys)
            row.append(f"{value * 100:5.1f}%")
        rows.append(row)
    return render_table(headers, rows, title=title)


def _interp(x: float, xs: Sequence[float], ys: Sequence[float]) -> float:
    if not xs:
        return 0.0
    if x <= xs[0]:
        return ys[0]
    for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
        if x0 <= x <= x1:
            if x1 == x0:
                return y1
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    return ys[-1]


def speedup(base: float, other: float) -> str:
    """'<base is> Nx <of other>' formatting used in the paper's claims."""
    if other <= 0:
        return "inf"
    return f"{base / other:.1f}x"
