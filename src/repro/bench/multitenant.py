"""Multi-tenant sweep: the cached SweepRunner as the cluster's executor.

This is the glue between the engine-agnostic cluster loop
(:mod:`repro.cluster.tenancy`) and the benchmark substrate: every job the
inter-job policy dispatches becomes one :class:`~repro.bench.runner.RunSpec`
whose ``eviction_waves`` carry the cluster-wide wave schedule re-based to
the job's start, and the batch runs through a
:class:`~repro.bench.runner.SweepRunner` — so dispatched jobs simulate in
parallel across worker processes and a warm on-disk cache replays a whole
sweep without a single inner simulation. One runner (and thus one warm
worker pool with its per-process build caches) serves every dispatch
batch of the outer loop; the pool is paid for once per sweep, not once
per batch. ``python -m repro mtsweep`` drives :func:`multitenant_sweep`
over load x policy x eviction-rate cells.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.runner import RunSpec, SweepRunner
from repro.bench.tables import render_table
from repro.cluster.tenancy import (ArrivalConfig, JobOutcome, JobRequest,
                                   MultiTenantCluster, TenancyConfig,
                                   TenancyResult)
from repro.cluster.tenancy.cluster import WaveOffsets
from repro.metrics.jct import jct_by_tenant, stats_to_dict
from repro.obs.events import JobTag
from repro.obs.tracer import active_collector

#: Default sweep axes of ``python -m repro mtsweep`` (cells = the cross
#: product; ``BENCH_multitenant.json`` commits the resulting table).
SWEEP_POLICIES = ("fifo", "fair", "quota")
SWEEP_LOADS = (0.5, 0.8, 1.1)
SWEEP_EVICTIONS = ("medium", "high")
SWEEP_RESERVES = ("fixed",)


def spec_for_job(request: JobRequest, waves: WaveOffsets,
                 time_limit_minutes: float) -> RunSpec:
    """The inner-engine :class:`RunSpec` for one dispatched job."""
    return RunSpec(workload=request.workload, engine=request.engine,
                   scale=request.scale, seed=request.seed,
                   time_limit_minutes=time_limit_minutes,
                   num_reserved=request.num_reserved,
                   num_transient=request.num_transient,
                   eviction="none",
                   eviction_waves=waves if waves else None)


def sweep_executor(config: TenancyConfig, runner: SweepRunner):
    """Build the cluster's batch executor on top of a sweep runner."""

    def execute(batch: Sequence[tuple[JobRequest, WaveOffsets]]) \
            -> list[JobOutcome]:
        specs = [spec_for_job(request, waves, config.time_limit_minutes)
                 for request, waves in batch]
        return [JobOutcome(jct_seconds=result.jct_seconds,
                           completed=result.completed,
                           evictions=result.evictions)
                for result in runner.run(specs)]

    return execute


def make_cell_config(policy: str, load: float, eviction: str,
                     num_jobs: int = 60, seed: int = 11,
                     reserve: str = "fixed") -> TenancyConfig:
    """One sweep cell: a policy under an offered load and wave regime."""
    return TenancyConfig(policy=policy, eviction=eviction,
                         num_jobs=num_jobs, seed=seed, reserve=reserve,
                         arrival=ArrivalConfig(load=load))


def run_multitenant_cell(config: TenancyConfig,
                         runner: Optional[SweepRunner] = None,
                         workers: int = 0,
                         cache=None) -> TenancyResult:
    """Run one multi-tenant cell end to end.

    When an obs collector is installed (:func:`repro.obs.collecting`),
    every job additionally gets a ``tenant/job_id``-labelled trace holding
    its :class:`~repro.obs.events.JobTag`, joining the cluster-level
    records to the observability layer.
    """
    if runner is None:
        with SweepRunner(workers=workers, cache_dir=cache) as local:
            return run_multitenant_cell(config, runner=local)
    cluster = MultiTenantCluster(config, sweep_executor(config, runner))
    result = cluster.run()
    _tag_job_traces(result)
    return result


def _tag_job_traces(result: TenancyResult) -> None:
    collector = active_collector()
    if collector is None:
        return
    for record in result.records:
        tracer = collector.new_tracer(f"{record.tenant}/{record.job_id}")
        tracer.emit(JobTag(
            time=record.start_time if record.start_time is not None else 0.0,
            job=record.job_id, tenant=record.tenant,
            engine=record.request.engine, workload=record.request.workload,
            queue_seconds=record.queue_seconds))


def jct_table(result: TenancyResult, title: Optional[str] = None) -> str:
    """Per-tenant JCT distribution table (minutes), plus the aggregate."""
    headers = ["tenant", "jobs", "done", "mean JCT", "p50", "p99",
               "queue", "run", "evictions", "waves hit"]
    rows = []
    for tenant, stats in jct_by_tenant(result.records).items():
        rows.append([tenant, stats.count, stats.completed,
                     stats.mean_jct / 60.0, stats.p50_jct / 60.0,
                     stats.p99_jct / 60.0, stats.mean_queue / 60.0,
                     stats.mean_run / 60.0, stats.evictions,
                     stats.waves_hit])
    return render_table(headers, rows, title=title)


def cell_summary(config: TenancyConfig, result: TenancyResult) -> dict:
    """JSON-ready summary of one cell (a ``BENCH_multitenant.json`` row)."""
    return {
        "policy": config.policy,
        "load": config.arrival.load,
        "eviction": config.eviction,
        "reserve": config.reserve,
        "num_jobs": config.num_jobs,
        "seed": config.seed,
        "makespan_minutes": round(result.makespan / 60.0, 3),
        "dispatch_batches": result.dispatch_batches,
        "pool_resizes": len(result.pool.resizes),
        "waves": len(result.waves),
        "waves_delivered": len(result.pool.waves),
        "containers_revoked": sum(r.containers_revoked
                                  for r in result.records),
        "tenants": {tenant: stats_to_dict(stats)
                    for tenant, stats
                    in jct_by_tenant(result.records).items()},
    }


def multitenant_sweep(policies: Sequence[str] = SWEEP_POLICIES,
                      loads: Sequence[float] = SWEEP_LOADS,
                      evictions: Sequence[str] = SWEEP_EVICTIONS,
                      reserves: Sequence[str] = SWEEP_RESERVES,
                      num_jobs: int = 60, seed: int = 11,
                      runner: Optional[SweepRunner] = None,
                      workers: int = 0, cache=None) -> list[dict]:
    """Sweep load x policy x eviction x reserve; one summary per cell.

    All cells share one runner — and with ``workers=N`` one *warm worker
    pool* across every dispatch batch of every cell — so identical inner
    jobs (same arrival schedule under different policies can dispatch a
    job at the same instant) simulate once per process and cache across
    runs. The ``reserves`` axis defaults to fixed-only; pass ``("fixed",
    "elastic")`` to measure the elasticity controller head to head.
    """
    if runner is None:
        with SweepRunner(workers=workers, cache_dir=cache) as local:
            return multitenant_sweep(policies, loads, evictions, reserves,
                                     num_jobs=num_jobs, seed=seed,
                                     runner=local)
    summaries = []
    for load in loads:
        for eviction in evictions:
            for policy in policies:
                for reserve in reserves:
                    config = make_cell_config(policy, load, eviction,
                                              num_jobs=num_jobs, seed=seed,
                                              reserve=reserve)
                    result = run_multitenant_cell(config, runner=runner)
                    summaries.append(cell_summary(config, result))
    return summaries
