"""Multi-tenant sweep: the cached SweepRunner as the cluster's executor.

This is the glue between the engine-agnostic cluster loop
(:mod:`repro.cluster.tenancy`) and the benchmark substrate: every job the
inter-job policy dispatches becomes one :class:`~repro.bench.runner.RunSpec`
whose ``eviction_waves`` carry the cluster-wide wave schedule re-based to
the job's start, and the batch runs through a
:class:`~repro.bench.runner.SweepRunner` — so dispatched jobs simulate in
parallel across worker processes and a warm on-disk cache replays a whole
sweep without a single inner simulation. One runner (and thus one warm
worker pool with its per-process build caches) serves every dispatch
batch of the outer loop; the pool is paid for once per sweep, not once
per batch. ``python -m repro mtsweep`` drives :func:`multitenant_sweep`
over load x policy x eviction-rate cells.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.bench.runner import RunSpec, SweepRunner
from repro.bench.tables import render_table
from repro.cluster.tenancy import (ArrivalConfig, JobOutcome, JobRequest,
                                   MultiTenantCluster,
                                   SpeculativeBatchExecutor, TenancyConfig,
                                   TenancyResult)
from repro.cluster.tenancy.cluster import WaveOffsets
from repro.metrics.jct import jct_by_tenant, stats_to_dict
from repro.obs.events import JobTag
from repro.obs.tracer import active_collector

#: Default sweep axes of ``python -m repro mtsweep`` (cells = the cross
#: product; ``BENCH_multitenant.json`` commits the resulting table).
SWEEP_POLICIES = ("fifo", "fair", "quota")
SWEEP_LOADS = (0.5, 0.8, 1.1)
SWEEP_EVICTIONS = ("medium", "high")
SWEEP_RESERVES = ("fixed",)


def spec_for_job(request: JobRequest, waves: WaveOffsets,
                 time_limit_minutes: float) -> RunSpec:
    """The inner-engine :class:`RunSpec` for one dispatched job."""
    return RunSpec(workload=request.workload, engine=request.engine,
                   scale=request.scale, seed=request.seed,
                   time_limit_minutes=time_limit_minutes,
                   num_reserved=request.num_reserved,
                   num_transient=request.num_transient,
                   eviction="none",
                   eviction_waves=waves if waves else None)


def sweep_executor(config: TenancyConfig, runner: SweepRunner):
    """Build the cluster's batch executor on top of a sweep runner.

    Dispatches through the runner's futures API (submit everything, wait
    in batch order) so results stream back as workers finish; cache
    probes, in-flight dedup against speculative submissions, and chunked
    transport all happen inside the runner.
    """

    def execute(batch: Sequence[tuple[JobRequest, WaveOffsets]]) \
            -> list[JobOutcome]:
        specs = [spec_for_job(request, waves, config.time_limit_minutes)
                 for request, waves in batch]
        handles = runner.submit_many(specs)
        return [_to_outcome(runner.wait(handle)) for handle in handles]

    return execute


def _to_outcome(result) -> JobOutcome:
    return JobOutcome(jct_seconds=result.jct_seconds,
                      completed=result.completed,
                      evictions=result.evictions)


def speculative_sweep_executor(config: TenancyConfig, runner: SweepRunner,
                               *, max_inflight: Optional[int] = None):
    """A :class:`SpeculativeBatchExecutor` over the runner's futures API.

    Pass the returned object to :class:`MultiTenantCluster` as *both*
    ``execute_batch`` and ``speculator``: between dispatch instants it
    pre-submits predicted jobs' specs onto the runner's worker pool, and
    real dispatches consume exact-key matches (or fall back to the plain
    executor above). Misspeculated specs that already ran still land in
    the runner's on-disk cache; ones that never started are cancelled.
    Call :func:`mirror_speculation_stats` after the run to fold the
    executor's counters into ``runner.stats``.
    """
    if max_inflight is None:
        # Keep roughly two rounds of work per worker in flight; even the
        # serial runner profits from a small window (pure cache warmth).
        max_inflight = max(4, 2 * max(1, runner.workers))

    def submit(request: JobRequest, waves: WaveOffsets):
        return runner.submit(
            spec_for_job(request, waves, config.time_limit_minutes))

    return SpeculativeBatchExecutor(
        sweep_executor(config, runner),
        submit=submit,
        resolve=lambda handle: _to_outcome(runner.wait(handle)),
        cancel=runner.cancel,
        max_inflight=max_inflight)


def mirror_speculation_stats(runner: SweepRunner,
                             executor: SpeculativeBatchExecutor) -> None:
    """Fold one speculative executor's counters into the runner's stats
    (which every ``--out`` JSON serializes)."""
    runner.stats.speculation_submitted += executor.stats.submitted
    runner.stats.speculation_hits += executor.stats.hits
    runner.stats.speculation_wasted += executor.stats.wasted


def make_cell_config(policy: str, load: float, eviction: str,
                     num_jobs: int = 60, seed: int = 11,
                     reserve: str = "fixed") -> TenancyConfig:
    """One sweep cell: a policy under an offered load and wave regime."""
    return TenancyConfig(policy=policy, eviction=eviction,
                         num_jobs=num_jobs, seed=seed, reserve=reserve,
                         arrival=ArrivalConfig(load=load))


def run_multitenant_cell(config: TenancyConfig,
                         runner: Optional[SweepRunner] = None,
                         workers: int = 0,
                         cache=None,
                         speculate: bool = False) -> TenancyResult:
    """Run one multi-tenant cell end to end.

    ``speculate=True`` wraps the executor in a
    :class:`~repro.cluster.tenancy.SpeculativeBatchExecutor` so predicted
    dispatches pre-execute on idle workers between outer-loop instants;
    records are bit-identical either way (consumption requires an exact
    spec match), only wall clock and the speculation counters in
    ``runner.stats`` change.

    When an obs collector is installed (:func:`repro.obs.collecting`),
    every job additionally gets a ``tenant/job_id``-labelled trace holding
    its :class:`~repro.obs.events.JobTag`, joining the cluster-level
    records to the observability layer.
    """
    if runner is None:
        with SweepRunner(workers=workers, cache_dir=cache) as local:
            return run_multitenant_cell(config, runner=local,
                                        speculate=speculate)
    if speculate:
        executor = speculative_sweep_executor(config, runner)
        cluster = MultiTenantCluster(config, executor, speculator=executor)
    else:
        cluster = MultiTenantCluster(config, sweep_executor(config, runner))
    started = time.perf_counter()
    result = cluster.run()
    # The futures API never passes through runner.run(), so the cell
    # accounts its own wall clock and dispatch batches.
    runner.stats.wall_seconds += time.perf_counter() - started
    runner.stats.batches += result.dispatch_batches
    if speculate:
        mirror_speculation_stats(runner, executor)
    _tag_job_traces(result)
    return result


def _tag_job_traces(result: TenancyResult) -> None:
    collector = active_collector()
    if collector is None:
        return
    for record in result.records:
        tracer = collector.new_tracer(f"{record.tenant}/{record.job_id}")
        tracer.emit(JobTag(
            time=record.start_time if record.start_time is not None else 0.0,
            job=record.job_id, tenant=record.tenant,
            engine=record.request.engine, workload=record.request.workload,
            queue_seconds=record.queue_seconds))


def jct_table(result: TenancyResult, title: Optional[str] = None) -> str:
    """Per-tenant JCT distribution table (minutes), plus the aggregate."""
    headers = ["tenant", "jobs", "done", "mean JCT", "p50", "p99",
               "queue", "run", "evictions", "waves hit"]
    rows = []
    for tenant, stats in jct_by_tenant(result.records).items():
        rows.append([tenant, stats.count, stats.completed,
                     stats.mean_jct / 60.0, stats.p50_jct / 60.0,
                     stats.p99_jct / 60.0, stats.mean_queue / 60.0,
                     stats.mean_run / 60.0, stats.evictions,
                     stats.waves_hit])
    return render_table(headers, rows, title=title)


def cell_summary(config: TenancyConfig, result: TenancyResult) -> dict:
    """JSON-ready summary of one cell (a ``BENCH_multitenant.json`` row)."""
    return {
        "policy": config.policy,
        "load": config.arrival.load,
        "eviction": config.eviction,
        "reserve": config.reserve,
        "num_jobs": config.num_jobs,
        "seed": config.seed,
        "makespan_minutes": round(result.makespan / 60.0, 3),
        "dispatch_batches": result.dispatch_batches,
        "pool_resizes": len(result.pool.resizes),
        "waves": len(result.waves),
        "waves_delivered": len(result.pool.waves),
        "containers_revoked": sum(r.containers_revoked
                                  for r in result.records),
        "tenants": {tenant: stats_to_dict(stats)
                    for tenant, stats
                    in jct_by_tenant(result.records).items()},
    }


def multitenant_sweep(policies: Sequence[str] = SWEEP_POLICIES,
                      loads: Sequence[float] = SWEEP_LOADS,
                      evictions: Sequence[str] = SWEEP_EVICTIONS,
                      reserves: Sequence[str] = SWEEP_RESERVES,
                      num_jobs: int = 60, seed: int = 11,
                      runner: Optional[SweepRunner] = None,
                      workers: int = 0, cache=None,
                      speculate: bool = False) -> list[dict]:
    """Sweep load x policy x eviction x reserve; one summary per cell.

    All cells share one runner — and with ``workers=N`` one *warm worker
    pool* across every dispatch batch of every cell — so identical inner
    jobs (same arrival schedule under different policies can dispatch a
    job at the same instant) simulate once per process and cache across
    runs. The ``reserves`` axis defaults to fixed-only; pass ``("fixed",
    "elastic")`` to measure the elasticity controller head to head.
    ``speculate=True`` (CLI ``--speculate on``) pre-executes predicted
    dispatches between outer-loop instants — summaries are unchanged,
    and misspeculated inner jobs cached on disk benefit later cells.
    """
    if runner is None:
        with SweepRunner(workers=workers, cache_dir=cache) as local:
            return multitenant_sweep(policies, loads, evictions, reserves,
                                     num_jobs=num_jobs, seed=seed,
                                     runner=local, speculate=speculate)
    summaries = []
    for load in loads:
        for eviction in evictions:
            for policy in policies:
                for reserve in reserves:
                    config = make_cell_config(policy, load, eviction,
                                              num_jobs=num_jobs, seed=seed,
                                              reserve=reserve)
                    result = run_multitenant_cell(config, runner=runner,
                                                  speculate=speculate)
                    summaries.append(cell_summary(config, result))
    return summaries
