"""Logical DAG model: operators, typed edges, and data routing.

Dataflow programs are represented as logical DAGs in which each vertex is an
operator and each edge carries one of the paper's four dependency types
(§2.2): one-to-one, one-to-many, many-to-one, and many-to-many. The Pado
compiler consumes exactly this representation (Algorithms 1 and 2), and the
engines expand it into physical tasks.

Routing semantics (shared by the local reference runner and all engines):

* one-to-one    — parent task *i* feeds child task *i* only;
* one-to-many   — every parent task's output is broadcast to all child tasks;
* many-to-one   — parent task *i* feeds child task ``i % child_parallelism``
  (the tree-aggregation pattern);
* many-to-many  — each parent task hash-partitions its keyed output across
  all child tasks (a shuffle).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import DagError


class DependencyType(enum.Enum):
    """The four data-flow dependency types of §2.2."""

    ONE_TO_ONE = "one-to-one"
    ONE_TO_MANY = "one-to-many"
    MANY_TO_ONE = "many-to-one"
    MANY_TO_MANY = "many-to-many"

    @property
    def is_wide(self) -> bool:
        """True for the dependencies whose eviction forces recomputation of
        *multiple* parent tasks (many-to-many and many-to-one, §3.1.1)."""
        return self in (DependencyType.MANY_TO_ONE,
                        DependencyType.MANY_TO_MANY)

    @property
    def is_shuffle(self) -> bool:
        """True for the dependency Spark treats as a stage boundary."""
        return self.is_wide


class Placement(enum.Enum):
    """Where the compiler decided an operator's tasks run (§3.1.1)."""

    UNPLACED = "unplaced"
    TRANSIENT = "transient"
    RESERVED = "reserved"


class SourceKind(enum.Enum):
    """How a source operator obtains its data (Algorithm 1, lines 12-16)."""

    READ = "read"          # reads bulk data from a storage -> transient
    CREATED = "created"    # creates lightweight data in memory -> reserved


@dataclass(frozen=True)
class OpCost:
    """Cost hints for synthetic (paper-scale) execution.

    ``output_ratio`` scales input bytes to output bytes; alternatively
    ``fixed_output_bytes`` pins each task's output size (e.g. a gradient
    vector is 323 MB regardless of input size, §5.2.2). ``compute_factor``
    scales the node's base CPU throughput for compute-heavy operators, and
    ``fixed_compute_seconds`` adds a constant per-task latency.
    """

    output_ratio: float = 1.0
    fixed_output_bytes: Optional[int] = None
    compute_factor: float = 1.0
    fixed_compute_seconds: float = 0.0

    def output_bytes(self, input_bytes: float) -> int:
        if self.fixed_output_bytes is not None:
            return self.fixed_output_bytes
        return int(input_bytes * self.output_ratio)


class Operator:
    """A vertex of the logical DAG.

    ``fn`` implements real-data execution: it maps ``{parent_name: records}``
    to this task's output records. Synthetic programs leave ``fn`` None and
    drive everything from ``cost``. ``combiner`` (a
    :class:`~repro.dataflow.functions.CombineFn`) enables the runtime's
    partial-aggregation optimization; ``cacheable`` opts the operator's input
    into the task-input cache (both §3.2.7).
    """

    def __init__(self, name: str, parallelism: int,
                 fn: Optional[Callable[[dict[str, list]], list]] = None,
                 source_kind: Optional[SourceKind] = None,
                 input_ref: Optional[str] = None,
                 partition_bytes: Optional[Sequence[int]] = None,
                 cost: OpCost = OpCost(),
                 combiner: Optional[Any] = None,
                 cacheable: bool = False,
                 record_bytes: int = 100) -> None:
        if parallelism <= 0:
            raise DagError(f"operator {name!r} needs positive parallelism")
        if partition_bytes is not None and len(partition_bytes) != parallelism:
            raise DagError(
                f"operator {name!r}: partition_bytes must have one entry per "
                f"task ({len(partition_bytes)} != {parallelism})")
        self.name = name
        self.parallelism = parallelism
        self.fn = fn
        self.source_kind = source_kind
        self.input_ref = input_ref
        self.partition_bytes = (None if partition_bytes is None
                                else list(partition_bytes))
        self.cost = cost
        self.combiner = combiner
        self.cacheable = cacheable
        self.record_bytes = record_bytes
        self.placement = Placement.UNPLACED

    @property
    def is_source(self) -> bool:
        return self.source_kind is not None

    def __repr__(self) -> str:
        return (f"<Operator {self.name} x{self.parallelism} "
                f"{self.placement.value}>")


@dataclass(frozen=True)
class Edge:
    """A typed dependency between two operators.

    ``key_fn`` overrides how many-to-many shuffles extract the partitioning
    key from a record (default: the first element of a ``(key, value)``
    tuple) — e.g. ALS shuffles the same rating triples once by user and once
    by item.
    """

    src: Operator
    dst: Operator
    dep_type: DependencyType
    key_fn: Optional[Callable[[Any], Any]] = field(default=None,
                                                   compare=False)

    def __repr__(self) -> str:
        return f"<Edge {self.src.name} -[{self.dep_type.value}]-> {self.dst.name}>"


class LogicalDAG:
    """A logical DAG of operators with typed edges."""

    def __init__(self) -> None:
        self._operators: list[Operator] = []
        self._by_name: dict[str, Operator] = {}
        self._in_edges: dict[str, list[Edge]] = {}
        self._out_edges: dict[str, list[Edge]] = {}

    # ------------------------------------------------------------------
    # construction

    def add_operator(self, op: Operator) -> Operator:
        if op.name in self._by_name:
            raise DagError(f"duplicate operator name {op.name!r}")
        self._operators.append(op)
        self._by_name[op.name] = op
        self._in_edges[op.name] = []
        self._out_edges[op.name] = []
        return op

    def connect(self, src: Operator, dst: Operator,
                dep_type: DependencyType,
                key_fn: Optional[Callable[[Any], Any]] = None) -> Edge:
        for op in (src, dst):
            if self._by_name.get(op.name) is not op:
                raise DagError(f"operator {op.name!r} not in this DAG")
        if any(e.dst is dst for e in self._out_edges[src.name]):
            raise DagError(
                f"duplicate edge {src.name!r} -> {dst.name!r}")
        if dep_type is DependencyType.ONE_TO_ONE and \
                src.parallelism != dst.parallelism:
            raise DagError(
                f"one-to-one edge {src.name!r} -> {dst.name!r} requires equal "
                f"parallelism ({src.parallelism} != {dst.parallelism})")
        edge = Edge(src=src, dst=dst, dep_type=dep_type, key_fn=key_fn)
        self._out_edges[src.name].append(edge)
        self._in_edges[dst.name].append(edge)
        return edge

    # ------------------------------------------------------------------
    # inspection

    @property
    def operators(self) -> list[Operator]:
        return list(self._operators)

    def operator(self, name: str) -> Operator:
        try:
            return self._by_name[name]
        except KeyError:
            raise DagError(f"no operator named {name!r}") from None

    def in_edges(self, op: Operator) -> list[Edge]:
        return list(self._in_edges[op.name])

    def out_edges(self, op: Operator) -> list[Edge]:
        return list(self._out_edges[op.name])

    def parents(self, op: Operator) -> list[Operator]:
        return [e.src for e in self._in_edges[op.name]]

    def children(self, op: Operator) -> list[Operator]:
        return [e.dst for e in self._out_edges[op.name]]

    def sources(self) -> list[Operator]:
        return [op for op in self._operators if not self._in_edges[op.name]]

    def sinks(self) -> list[Operator]:
        return [op for op in self._operators if not self._out_edges[op.name]]

    def topological_sort(self) -> list[Operator]:
        """Deterministic topological order (stable w.r.t. insertion order)."""
        indegree = {op.name: len(self._in_edges[op.name])
                    for op in self._operators}
        ready = [op for op in self._operators if indegree[op.name] == 0]
        order: list[Operator] = []
        while ready:
            op = ready.pop(0)
            order.append(op)
            for edge in self._out_edges[op.name]:
                indegree[edge.dst.name] -= 1
                if indegree[edge.dst.name] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self._operators):
            raise DagError("logical DAG contains a cycle")
        return order

    def validate(self) -> None:
        """Check structural invariants; raises :class:`DagError` if broken."""
        self.topological_sort()  # raises on cycles
        for op in self._operators:
            if op.is_source and self._in_edges[op.name]:
                raise DagError(f"source operator {op.name!r} has in-edges")
            if not op.is_source and not self._in_edges[op.name]:
                raise DagError(
                    f"operator {op.name!r} has no in-edges but is not marked "
                    f"as a source")
            if op.source_kind is SourceKind.READ and op.input_ref is None \
                    and op.fn is None:
                raise DagError(
                    f"read source {op.name!r} needs an input_ref or fn")

    def __len__(self) -> int:
        return len(self._operators)


# ----------------------------------------------------------------------
# routing


def route_output(edge: Edge, src_task_index: int,
                 records: Sequence[Any]) -> dict[int, list[Any]]:
    """Split one parent task's output records across child task indices
    according to the edge's dependency type (real-data mode)."""
    n = edge.dst.parallelism
    dep = edge.dep_type
    if dep is DependencyType.ONE_TO_ONE:
        return {src_task_index: list(records)}
    if dep is DependencyType.ONE_TO_MANY:
        return {j: list(records) for j in range(n)}
    if dep is DependencyType.MANY_TO_ONE:
        return {src_task_index % n: list(records)}
    # many-to-many: hash-partition keyed records.
    buckets: dict[int, list[Any]] = {j: [] for j in range(n)}
    for record in records:
        key = _record_key(edge, record)
        buckets[hash(key) % n].append(record)
    return {j: recs for j, recs in buckets.items() if recs}


def route_sizes(edge: Edge, src_task_index: int,
                output_bytes: float) -> dict[int, float]:
    """Split one parent task's output *bytes* across child task indices
    (synthetic mode). Mirrors :func:`route_output`."""
    n = edge.dst.parallelism
    dep = edge.dep_type
    if dep is DependencyType.ONE_TO_ONE:
        return {src_task_index: output_bytes}
    if dep is DependencyType.ONE_TO_MANY:
        return {j: output_bytes for j in range(n)}
    if dep is DependencyType.MANY_TO_ONE:
        return {src_task_index % n: output_bytes}
    share = output_bytes / n
    return {j: share for j in range(n)}


def destination_indices(edge: Edge, src_task_index: int) -> list[int]:
    """Child task indices that receive data from this parent task."""
    n = edge.dst.parallelism
    dep = edge.dep_type
    if dep is DependencyType.ONE_TO_ONE:
        return [src_task_index]
    if dep is DependencyType.MANY_TO_ONE:
        return [src_task_index % n]
    return list(range(n))


def source_indices(edge: Edge, dst_task_index: int) -> list[int]:
    """Parent task indices whose output a child task depends on."""
    m = edge.src.parallelism
    dep = edge.dep_type
    if dep is DependencyType.ONE_TO_ONE:
        return [dst_task_index]
    if dep is DependencyType.MANY_TO_ONE:
        return [i for i in range(m)
                if i % edge.dst.parallelism == dst_task_index]
    return list(range(m))


def transfer_fraction(edge: Edge) -> float:
    """Fraction of one parent output a single consumer task must move:
    many-to-many consumers only pull their hash partition."""
    if edge.dep_type is DependencyType.MANY_TO_MANY:
        return 1.0 / edge.dst.parallelism
    return 1.0


def transfer_share(edge: Edge, output_size: float) -> float:
    """Bytes actually moved when one consumer task pulls one parent output
    of ``output_size`` bytes. Must agree with :func:`route_sizes` — both
    the Pado and Spark masters size their dispatches with it."""
    return output_size * transfer_fraction(edge)


def _record_key(edge: Edge, record: Any) -> Any:
    if edge.key_fn is not None:
        return edge.key_fn(record)
    if isinstance(record, tuple) and len(record) == 2:
        return record[0]
    raise DagError(
        f"many-to-many edge {edge.src.name!r} -> {edge.dst.name!r} requires "
        f"(key, value) records, got {type(record).__name__}")
