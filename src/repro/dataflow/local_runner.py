"""Reference in-process evaluator for real-data programs.

Evaluates a logical DAG directly — no simulation, no failures — using the
same routing semantics as the distributed engines. Engines are correct if,
for any eviction schedule, their job output equals this runner's output
(exactly-once processing, §3.2.5); the integration and property-based tests
assert exactly that.
"""

from __future__ import annotations

from typing import Any

from repro.dataflow.dag import LogicalDAG, Operator, route_output
from repro.errors import ExecutionError


class LocalResult:
    """Materialized outputs of every operator in the DAG."""

    def __init__(self, outputs: dict[str, list[list[Any]]]) -> None:
        self._outputs = outputs

    def partitions(self, op_name: str) -> list[list[Any]]:
        """Per-task output partitions of an operator."""
        try:
            return self._outputs[op_name]
        except KeyError:
            raise ExecutionError(f"no operator {op_name!r} in result") from None

    def collect(self, op_name: str) -> list[Any]:
        """All output records of an operator, concatenated across tasks."""
        return [record for part in self.partitions(op_name)
                for record in part]


class LocalRunner:
    """Run a real-data logical DAG to completion in-process."""

    def run(self, dag: LogicalDAG) -> LocalResult:
        dag.validate()
        outputs: dict[str, list[list[Any]]] = {}
        for op in dag.topological_sort():
            outputs[op.name] = self._run_operator(dag, op, outputs)
        return LocalResult(outputs)

    def _run_operator(self, dag: LogicalDAG, op: Operator,
                      outputs: dict[str, list[list[Any]]]) -> list[list[Any]]:
        if op.fn is None:
            raise ExecutionError(
                f"operator {op.name!r} has no function; the local runner "
                f"only executes real-data programs")
        # Route every parent task's output to this operator's task indices.
        task_inputs: list[dict[str, list[Any]]] = [
            {} for _ in range(op.parallelism)]
        for edge in dag.in_edges(op):
            parent_parts = outputs[edge.src.name]
            for src_idx, records in enumerate(parent_parts):
                for dst_idx, routed in route_output(edge, src_idx,
                                                    records).items():
                    bucket = task_inputs[dst_idx].setdefault(
                        edge.src.name, [])
                    bucket.extend(routed)
        results = []
        for index in range(op.parallelism):
            inputs = task_inputs[index]
            for parent in dag.parents(op):
                inputs.setdefault(parent.name, [])
            if op.is_source:
                inputs["__task_index__"] = [index]
            results.append(list(op.fn(inputs)))
        return results
