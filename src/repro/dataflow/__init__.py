"""Beam-like dataflow programming model (§2.2, §4).

Programs build a :class:`~repro.dataflow.dag.LogicalDAG` of operators joined
by typed edges (one-to-one, one-to-many, many-to-one, many-to-many) — the
representation the Pado compiler operates on. A local reference runner
evaluates real-data programs for ground truth.
"""

from repro.dataflow.dag import (DependencyType, Edge, LogicalDAG, OpCost,
                                Operator, Placement, SourceKind,
                                destination_indices, route_output,
                                route_sizes, source_indices)
from repro.dataflow.functions import (CombineFn, FilterFn, FlatMapFn,
                                      GlobalCombineFn, KeyedReduceFn, MapFn,
                                      MapWithSideFn, RawFn, SumCombiner,
                                      binary_combiner, single_parent_records)
from repro.dataflow.local_runner import LocalResult, LocalRunner
from repro.dataflow.transforms import PCollection, Pipeline

__all__ = [
    "CombineFn", "DependencyType", "Edge", "FilterFn", "FlatMapFn",
    "GlobalCombineFn", "KeyedReduceFn", "LocalResult", "LocalRunner",
    "LogicalDAG", "MapFn", "MapWithSideFn", "OpCost", "Operator",
    "PCollection", "Pipeline", "Placement", "RawFn", "SourceKind",
    "SumCombiner", "binary_combiner", "destination_indices", "route_output",
    "route_sizes", "single_parent_records", "source_indices",
]
