"""Beam-like pipeline construction API (§4 of the paper).

Programs are written against :class:`Pipeline` / :class:`PCollection` and
compile down to the :class:`~repro.dataflow.dag.LogicalDAG` the Pado compiler
consumes. Narrow transforms (``map``, ``flat_map``, ``filter``) create
one-to-one edges; ``with_side_input`` adds a one-to-many broadcast edge;
``reduce_by_key`` creates a many-to-many shuffle; ``aggregate`` creates a
many-to-one tree aggregation.

Example
-------
>>> p = Pipeline("wordcount")
>>> lines = p.read("read", partitions=[["a b", "b"], ["a"]])
>>> words = lines.flat_map("split", str.split)
>>> pairs = words.map("pair", lambda w: (w, 1))
>>> counts = pairs.reduce_by_key("count", SumCombiner(), parallelism=2)
>>> dag = p.to_dag()
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.dataflow.dag import (DependencyType, LogicalDAG, Operator,
                                SourceKind)
from repro.dataflow.functions import (CombineFn, FilterFn, FlatMapFn,
                                      GlobalCombineFn, KeyedReduceFn, MapFn,
                                      MapWithSideFn)
from repro.errors import DagError


class PCollection:
    """Handle to an operator's output within a pipeline under construction."""

    def __init__(self, pipeline: "Pipeline", op: Operator) -> None:
        self.pipeline = pipeline
        self.op = op

    @property
    def parallelism(self) -> int:
        return self.op.parallelism

    # ------------------------------------------------------------------
    # narrow (one-to-one) transforms

    def map(self, name: str, f: Callable[[Any], Any],
            **op_kwargs: Any) -> "PCollection":
        return self._narrow(name, MapFn(f), **op_kwargs)

    def flat_map(self, name: str, f: Callable[[Any], Iterable[Any]],
                 **op_kwargs: Any) -> "PCollection":
        return self._narrow(name, FlatMapFn(f), **op_kwargs)

    def filter(self, name: str, predicate: Callable[[Any], bool],
               **op_kwargs: Any) -> "PCollection":
        return self._narrow(name, FilterFn(predicate), **op_kwargs)

    def _narrow(self, name: str, fn: Callable[[dict[str, list]], list],
                **op_kwargs: Any) -> "PCollection":
        op = self.pipeline._add_op(name, parallelism=self.op.parallelism,
                                   fn=fn, **op_kwargs)
        self.pipeline.dag.connect(self.op, op, DependencyType.ONE_TO_ONE)
        return PCollection(self.pipeline, op)

    # ------------------------------------------------------------------
    # broadcast side inputs

    def map_with_side_input(self, name: str, f: Callable[[Any, Any], Any],
                            side: "PCollection",
                            **op_kwargs: Any) -> "PCollection":
        """Apply ``f(record, side_value)``; the side collection (typically a
        model created on reserved containers) is broadcast one-to-many."""
        fn = MapWithSideFn(f, side=side.op.name)
        op = self.pipeline._add_op(name, parallelism=self.op.parallelism,
                                   fn=fn, **op_kwargs)
        self.pipeline.dag.connect(self.op, op, DependencyType.ONE_TO_ONE)
        self.pipeline.dag.connect(side.op, op, DependencyType.ONE_TO_MANY)
        return PCollection(self.pipeline, op)

    # ------------------------------------------------------------------
    # wide transforms

    def reduce_by_key(self, name: str, combiner: CombineFn,
                      parallelism: Optional[int] = None,
                      **op_kwargs: Any) -> "PCollection":
        """Shuffle ``(key, value)`` records and reduce per key (many-to-many)."""
        parallelism = parallelism or self.op.parallelism
        op_kwargs.setdefault("combiner", combiner)
        op = self.pipeline._add_op(name, parallelism=parallelism,
                                   fn=KeyedReduceFn(combiner), **op_kwargs)
        self.pipeline.dag.connect(self.op, op, DependencyType.MANY_TO_MANY)
        return PCollection(self.pipeline, op)

    def group_apply(self, name: str, fn: Callable[[dict[str, list]], list],
                    parallelism: Optional[int] = None,
                    **op_kwargs: Any) -> "PCollection":
        """Shuffle keyed records to a custom consumer (many-to-many)."""
        parallelism = parallelism or self.op.parallelism
        op = self.pipeline._add_op(name, parallelism=parallelism, fn=fn,
                                   **op_kwargs)
        self.pipeline.dag.connect(self.op, op, DependencyType.MANY_TO_MANY)
        return PCollection(self.pipeline, op)

    def aggregate(self, name: str, combiner: CombineFn, parallelism: int = 1,
                  **op_kwargs: Any) -> "PCollection":
        """Combine all records into ``parallelism`` accumulators
        (many-to-one tree aggregation, e.g. MLR's gradient sum)."""
        op_kwargs.setdefault("combiner", combiner)
        op = self.pipeline._add_op(name, parallelism=parallelism,
                                   fn=GlobalCombineFn(combiner), **op_kwargs)
        self.pipeline.dag.connect(self.op, op, DependencyType.MANY_TO_ONE)
        return PCollection(self.pipeline, op)

    def apply(self, name: str, fn: Callable[[dict[str, list]], list],
              dep_type: DependencyType, parallelism: Optional[int] = None,
              **op_kwargs: Any) -> "PCollection":
        """Generic single-parent transform with an explicit dependency type."""
        if parallelism is None:
            parallelism = self.op.parallelism
        op = self.pipeline._add_op(name, parallelism=parallelism, fn=fn,
                                   **op_kwargs)
        self.pipeline.dag.connect(self.op, op, dep_type)
        return PCollection(self.pipeline, op)


class Pipeline:
    """Builder for a logical DAG."""

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self.dag = LogicalDAG()

    # ------------------------------------------------------------------
    # sources

    def read(self, name: str, partitions: Optional[Sequence[list]] = None,
             input_ref: Optional[str] = None,
             parallelism: Optional[int] = None,
             partition_bytes: Optional[Sequence[int]] = None,
             **op_kwargs: Any) -> PCollection:
        """Source reading bulk data from storage — placed on transient
        containers by Algorithm 1 (ISREAD).

        Real-data programs pass ``partitions`` (a list of record lists);
        synthetic programs pass an ``input_ref`` naming the dataset plus
        per-partition sizes in ``partition_bytes``.
        """
        if partitions is not None:
            parallelism = len(partitions)
            payload = [list(part) for part in partitions]
            fn = _ReadPartitionFn(payload)
        elif input_ref is not None:
            if partition_bytes is None:
                raise DagError("synthetic read needs partition_bytes")
            if parallelism is None:
                parallelism = len(partition_bytes)
            fn = None
        else:
            raise DagError("read needs either partitions or input_ref")
        if input_ref is None:
            input_ref = name
        op = self._add_op(name, parallelism=parallelism, fn=fn,
                          source_kind=SourceKind.READ, input_ref=input_ref,
                          partition_bytes=partition_bytes, **op_kwargs)
        return PCollection(self, op)

    def create(self, name: str, values: Optional[list] = None,
               parallelism: int = 1, **op_kwargs: Any) -> PCollection:
        """Source creating lightweight in-memory data — placed on reserved
        containers by Algorithm 1 (ISCREATED)."""
        fn = None
        if values is not None:
            if parallelism != 1:
                raise DagError("created sources hold one partition")
            fn = _ReadPartitionFn([list(values)])
        op = self._add_op(name, parallelism=parallelism, fn=fn,
                          source_kind=SourceKind.CREATED, **op_kwargs)
        return PCollection(self, op)

    # ------------------------------------------------------------------
    # multi-parent transforms

    def apply_multi(self, name: str, fn: Callable[[dict[str, list]], list],
                    inputs: Sequence[tuple[PCollection, DependencyType]],
                    parallelism: int, **op_kwargs: Any) -> PCollection:
        """Transform with several parents of possibly different edge types
        (needed for ALS, where factor computation joins aggregated data with
        broadcast factors)."""
        if not inputs:
            raise DagError("apply_multi needs at least one input")
        op = self._add_op(name, parallelism=parallelism, fn=fn, **op_kwargs)
        for pcoll, dep_type in inputs:
            self.dag.connect(pcoll.op, op, dep_type)
        return PCollection(self, op)

    # ------------------------------------------------------------------
    # finalization

    def to_dag(self) -> LogicalDAG:
        """Validate and return the logical DAG."""
        self.dag.validate()
        return self.dag

    def _add_op(self, name: str, **kwargs: Any) -> Operator:
        return self.dag.add_operator(Operator(name=name, **kwargs))


class _ReadPartitionFn:
    """Source function yielding one pre-materialized partition per task.

    The task index is injected by the executor via the reserved input key
    ``"__task_index__"``.
    """

    def __init__(self, partitions: list[list]) -> None:
        self.partitions = partitions

    def __call__(self, inputs: dict[str, list]) -> list:
        index_records = inputs.get("__task_index__")
        if not index_records:
            raise DagError("source function needs the task index input")
        return list(self.partitions[index_records[0]])
